"""Table I — dataset statistics of the four synthetic analogs.

Paper reference: Table I reports #users, #items, #actions, average sequence
length and density for ML-1M, ML-20M, Amazon Games and Amazon Beauty.  This
bench generates all four scaled-down analogs and prints the same columns.
"""

from __future__ import annotations

from repro.data import load_preset
from repro.experiments import DATASET_NAMES, format_table1

from _bench_utils import emit_bench_json, run_once


def _generate_all_statistics():
    datasets = {name: load_preset(name) for name in DATASET_NAMES}
    return [dataset.statistics() for dataset in datasets.values()]


def test_table1_dataset_statistics(benchmark):
    statistics = run_once(benchmark, _generate_all_statistics)
    print("\n=== Table I: dataset statistics (synthetic analogs) ===")
    print(format_table1(statistics))
    emit_bench_json("table1_dataset_stats", statistics)
    # Qualitative Table I shape: MovieLens analogs are denser with longer
    # sequences than the Amazon analogs.
    by_name = {stats.name: stats for stats in statistics}
    assert by_name["ml-1m-small"].avg_sequence_length > by_name["games-small"].avg_sequence_length
    assert by_name["ml-1m-small"].density > by_name["beauty-small"].density
    assert by_name["ml-20m-small"].num_actions == max(s.num_actions for s in statistics)
