"""Fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at the ``bench``
scale defined in ``_bench_utils.BENCH_SCALE``: small synthetic datasets, short
training budgets and capped evaluation user counts, so the whole suite
(``pytest benchmarks/ --benchmark-only``) finishes on a laptop CPU in minutes
while preserving the qualitative shape of each result.  The printed rows
mirror the paper's tables; EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import pytest

from repro.data import load_preset

from _bench_utils import BENCH_SCALE


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_datasets():
    """The two representative dataset analogs used by most benches.

    ``games-small`` stands in for the sparse Amazon datasets and
    ``ml-1m-small`` for the dense MovieLens datasets; the full four-dataset
    sweep is available through ``repro.experiments.run_table2(scale="full")``.
    """

    return {name: load_preset(name) for name in BENCH_SCALE.datasets}
