"""Per-event vs micro-batched streaming ingestion throughput (events/sec).

The paper's deployment story (Section III-C2, Table III) is that SCCF reacts
to every click in real time.  ``RealTimeServer.observe`` pays one UI forward,
one index row update and one neighbor query *per event*;
``RealTimeServer.observe_batch`` (fed by an ``EventBuffer``) coalesces a
micro-batch of events per user and pays one batched forward, one vectorized
index row replacement and one batched neighbor search for the whole flush.
This bench streams the same synthetic event workload through both routes and
reports events/sec at several flush sizes.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py
    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --num-events 8192 --flush-sizes 64 256 1024
    PYTHONPATH=src python benchmarks/bench_streaming_ingest.py --smoke   # tiny CI configuration

The acceptance bar for the streaming ingestion PR: micro-batched ingestion
>= 3x the per-event events/sec at flush size 256 on the default workload.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.core import SCCF, EventBuffer, RealTimeServer, SCCFConfig
from repro.data import load_preset
from repro.models import FISM

from _bench_utils import emit_bench_json


def build_sccf(num_users: int, num_items: int, dim: int, num_neighbors: int, seed: int = 13):
    """A fitted SCCF on a synthetic dataset sized for the ingestion workload."""

    dataset = load_preset(
        "tiny",
        seed=seed,
        num_users=num_users,
        num_items=num_items,
        avg_interactions=20.0,
        name="bench-streaming",
    )
    model = FISM(embedding_dim=dim, num_epochs=0, seed=seed).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=num_neighbors, candidate_list_size=100, merger_epochs=1, seed=seed),
    )
    sccf.fit(dataset, fit_ui_model=False)
    return sccf, dataset


def make_events(num_events: int, num_users: int, num_items: int, seed: int = 29):
    """A synthetic click stream: zipf-ish hot users over a uniform catalog."""

    rng = np.random.default_rng(seed)
    users = rng.integers(0, num_users, size=num_events)
    items = rng.integers(0, num_items, size=num_events)
    return list(zip(users.tolist(), items.tolist()))


def bench_ingestion(sccf, dataset, events, flush_sizes: List[int]) -> List[Dict]:
    rows: List[Dict] = []

    server = RealTimeServer(sccf, dataset)
    start = time.perf_counter()
    for user, item in events:
        server.observe(user, item)
    per_event_eps = len(events) / (time.perf_counter() - start)
    rows.append({"path": "per-event observe", "events_per_sec": per_event_eps, "speedup": 1.0})

    for flush_size in flush_sizes:
        server = RealTimeServer(sccf, dataset)
        start = time.perf_counter()
        with EventBuffer(server, flush_size=flush_size) as buffer:
            for user, item in events:
                buffer.push(user, item)
        elapsed = time.perf_counter() - start
        eps = len(events) / elapsed
        rows.append(
            {
                "path": f"micro-batch flush={flush_size}",
                "events_per_sec": eps,
                "speedup": eps / per_event_eps,
            }
        )
    return rows


def format_rows(rows: List[Dict]) -> str:
    header = f"{'ingestion path':<32} {'events/sec':>12} {'vs per-event':>14}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['path']:<32} {row['events_per_sec']:>12.0f} {row['speedup']:>13.1f}x"
        )
    return "\n".join(lines)


def main() -> List[Dict]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=2000)
    parser.add_argument("--num-items", type=int, default=1000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--num-neighbors", type=int, default=100)
    parser.add_argument("--num-events", type=int, default=2048)
    parser.add_argument(
        "--flush-sizes", type=int, nargs="+", default=[16, 64, 256],
        help="EventBuffer flush sizes to sweep (256 carries the acceptance bar)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_users, args.num_items, args.dim = 150, 120, 16
        args.num_neighbors, args.num_events, args.flush_sizes = 20, 96, [8, 32]

    sccf, dataset = build_sccf(args.num_users, args.num_items, args.dim, args.num_neighbors)
    events = make_events(args.num_events, dataset.num_users, dataset.num_items)
    rows = bench_ingestion(sccf, dataset, events, args.flush_sizes)
    print(
        f"streaming ingestion: {args.num_events} events, {args.num_users} users, "
        f"{args.num_items} items, d={args.dim}, beta={args.num_neighbors}"
    )
    print(format_rows(rows))
    emit_bench_json("streaming_ingest", rows)
    return rows


if __name__ == "__main__":
    main()
