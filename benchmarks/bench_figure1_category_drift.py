"""Figure 1 — distribution of "days since a clicked category was first clicked".

Paper reference: Figure 1 motivates real-time recommendation with a Taobao
traffic analysis — for the categories a user clicks today, around 50% were not
clicked at all during the previous two weeks, and the remainder concentrate on
the most recent days.  The bench reproduces the analysis on the drifting
clickstream simulator and prints the same per-day proportions as a bar chart.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_figure1, run_figure1

from _bench_utils import emit_bench_json, run_once


def test_figure1_interest_drift_distribution(benchmark):
    result = run_once(benchmark, run_figure1, num_users=300, num_days=15, window_days=14, seed=0)
    print("\n=== Figure 1: days since today's categories were first clicked ===")
    print(format_figure1(result))
    emit_bench_json("figure1_category_drift", result)

    # Shape 1: a large share (paper: ~50%) of today's categories are new.
    assert 0.25 <= result.new_category_fraction <= 0.75
    # Shape 2: the "new today" bar (x = 0) towers over every individual
    # previously-seen day, as in the paper's Figure 1.
    assert result.new_category_fraction > result.proportions[1:].max()
    # Proportions form a distribution.
    assert np.isclose(result.proportions.sum(), 1.0)
