"""Ablation — sensitivity to the recency window used for real-time inference.

Extension beyond the paper: the deployment infers user embeddings from "the
recent 15 items" and lets each user contribute her latest 15 items to her
neighbors' candidates.  This bench varies that window to show the trade-off
between reacting to drift (small windows) and having enough evidence (large
windows).
"""

from __future__ import annotations

from repro.experiments import run_recency_ablation

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_ablation_recency_window(benchmark, bench_datasets):
    dataset_name = "ml-1m-small"
    rows = run_once(
        benchmark,
        run_recency_ablation,
        BENCH_SCALE.with_overrides(fism_epochs=3, merger_epochs=20),
        dataset_name=dataset_name,
        dataset=bench_datasets[dataset_name],
        windows=(5, 15, 50),
        cutoffs=(20, 50),
    )
    print("\n=== Ablation: recency window for inference and neighbor votes ===")
    print(f"{'window':<14}{'HR@20':>10}{'NDCG@20':>10}{'HR@50':>10}{'NDCG@50':>10}")
    for row in rows:
        metrics = row.metrics
        print(
            f"{row.variant:<14}{metrics['HR@20']:>10.4f}{metrics['NDCG@20']:>10.4f}"
            f"{metrics['HR@50']:>10.4f}{metrics['NDCG@50']:>10.4f}"
        )

    emit_bench_json("ablation_recency", rows)
    # All windows produce valid, non-degenerate rankings.
    for row in rows:
        assert 0.0 <= row.metrics["HR@50"] <= 1.0
        assert row.metrics["NDCG@50"] <= row.metrics["HR@50"] + 1e-9
