"""Async front-end under open-loop load: coalesced vs sequential serving.

The question this bench answers: when concurrent live traffic arrives one
request at a time, how much throughput does ``repro.serving.AsyncFrontend``
recover by coalescing requests into ``recommend_batch``/``observe_batch``
windows, and what do the *honest* latency percentiles look like?

Honest means **open-loop**: arrivals follow a Poisson process (with burst
episodes) whose rate does not slow down when the server falls behind, and
each request's latency is measured from its *scheduled arrival* to its
completion — queue wait, window wait, and event-loop lateness all included.
A closed-loop driver (issue, await, repeat) would never let a queue build,
which is exactly the regime that hides coalescing's value and the tail
latency cost of falling behind.

Shape of the run:

* visitors drawn from Zipf(alpha) with geometric sessions (hot users repeat
  — both the serving cache and window-level dedup get their natural hit
  pattern);
* a fraction of requests are observes (clicks) that invalidate state;
* arrivals are Poisson at ``--offered-ratio`` x the *measured* sequential
  capacity, with ``--bursts`` episodes at ``--burst-factor`` x that rate —
  the bursts are what push in-flight concurrency into the hundreds;
* one asyncio task per request fires at its scheduled instant (fully open
  loop), so in-flight concurrency is set by the workload, not a client cap.

The sequential baseline replays the identical request sequence through the
same server configuration as a batch-of-one loop.  The acceptance bar for
the front-end PR: coalesced throughput >= 2x the sequential loop with at
least 64 requests in flight at peak.  Results are written to
``BENCH_async_frontend.json``.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_async_frontend.py
    PYTHONPATH=src python benchmarks/bench_async_frontend.py --offered-ratio 4 --bursts 6
    PYTHONPATH=src python benchmarks/bench_async_frontend.py --smoke   # tiny CI configuration
"""

from __future__ import annotations

import argparse
import asyncio
import copy
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core import RealTimeServer, ServingCache
from repro.serving import AsyncFrontend

from _bench_utils import emit_bench_json
from bench_cache_serving import build_sccf, make_workload


def _percentiles(latencies_ms: List[float]) -> Dict[str, float]:
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p99_ms": float(np.percentile(values, 99)),
        "mean_ms": float(np.mean(values)),
    }


def run_sequential(server: RealTimeServer, ops: List[Tuple]) -> Dict:
    """The batch-of-one loop every caller used before the front-end existed."""

    latencies_ms: List[float] = []
    start = time.perf_counter()
    for op in ops:
        request_start = time.perf_counter()
        if op[0] == "observe":
            server.observe(op[1], op[2])
        else:
            server.recommend(op[1], k=op[2])
        latencies_ms.append((time.perf_counter() - request_start) * 1000.0)
    wall_s = time.perf_counter() - start
    return {
        "requests": len(ops),
        "wall_s": wall_s,
        "qps": len(ops) / wall_s,
        **_percentiles(latencies_ms),
    }


def make_arrivals(
    num_requests: int,
    offered_qps: float,
    bursts: int,
    burst_factor: float,
    burst_span: float,
    seed: int,
) -> List[float]:
    """Poisson arrival offsets (seconds) with evenly spaced burst episodes.

    ``bursts`` episodes each covering ``burst_span`` of the request stream
    run at ``burst_factor`` x the base rate — flash crowds, not a steady
    drizzle.  Offsets are cumulative exponential gaps, so the process is
    memoryless within each regime.
    """

    rng = np.random.default_rng(seed)
    in_burst = np.zeros(num_requests, dtype=bool)
    if bursts > 0:
        per_burst = max(1, int(num_requests * burst_span))
        for b in range(bursts):
            anchor = int((b + 0.5) / bursts * num_requests)
            in_burst[anchor : anchor + per_burst] = True
    gaps = np.where(
        in_burst,
        rng.exponential(1.0 / (offered_qps * burst_factor), size=num_requests),
        rng.exponential(1.0 / offered_qps, size=num_requests),
    )
    return np.cumsum(gaps).tolist()


async def drive_open_loop(
    frontend: AsyncFrontend, ops: List[Tuple], arrivals: List[float]
) -> Dict:
    """Fire one task per request at its scheduled instant; gather everything."""

    t0 = time.perf_counter()
    in_flight = 0
    max_in_flight = 0
    latencies_ms: List[float] = []

    async def one_request(op: Tuple, offset: float) -> None:
        nonlocal in_flight, max_in_flight
        delay = offset - (time.perf_counter() - t0)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = t0 + offset  # latency is measured from the *schedule*
        in_flight += 1
        max_in_flight = max(max_in_flight, in_flight)
        try:
            if op[0] == "observe":
                await frontend.observe(op[1], op[2])
            else:
                await frontend.recommend(op[1], k=op[2])
        finally:
            in_flight -= 1
        latencies_ms.append((time.perf_counter() - scheduled) * 1000.0)

    await asyncio.gather(
        *(one_request(op, offset) for op, offset in zip(ops, arrivals))
    )
    wall_s = time.perf_counter() - t0
    return {
        "requests": len(ops),
        "wall_s": wall_s,
        "qps": len(ops) / wall_s,
        "max_in_flight": max_in_flight,
        **_percentiles(latencies_ms),
    }


def run_frontend(
    server: RealTimeServer,
    ops: List[Tuple],
    arrivals: List[float],
    max_batch: int,
    max_wait_ms: float,
    max_queue: int,
) -> Dict:
    async def scenario() -> Dict:
        async with AsyncFrontend(
            server,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
        ) as frontend:
            run = await drive_open_loop(frontend, ops, arrivals)
            stats = frontend.stats
            run["windows"] = {
                "recommend": stats.recommend_windows,
                "observe": stats.observe_windows,
                "mean_recommend_width": stats.mean_recommend_window(),
                "mean_observe_width": stats.mean_observe_window(),
                "largest_recommend": stats.largest_recommend_window,
                "largest_observe": stats.largest_observe_window,
            }
            return run

    return asyncio.run(scenario())


def format_report(report: Dict) -> str:
    sequential, frontend = report["sequential"], report["frontend"]
    windows = frontend["windows"]
    header = f"{'path':<12} {'QPS':>10} {'p50 (ms)':>10} {'p99 (ms)':>10}"
    lines = [
        f"open-loop serving: {report['config']['num_requests']} requests "
        f"offered at {report['offered_qps']:.0f}/s "
        f"({report['config']['offered_ratio']:.1f}x sequential capacity), "
        f"{report['config']['bursts']} burst episodes",
        header,
        "-" * len(header),
        f"{'sequential':<12} {sequential['qps']:>10.0f} "
        f"{sequential['p50_ms']:>10.3f} {sequential['p99_ms']:>10.3f}",
        f"{'coalesced':<12} {frontend['qps']:>10.0f} "
        f"{frontend['p50_ms']:>10.3f} {frontend['p99_ms']:>10.3f}",
        "",
        f"throughput:       {report['speedup']:.2f}x sequential",
        f"peak in flight:   {frontend['max_in_flight']}",
        f"window widths:    recommend mean {windows['mean_recommend_width']:.1f} "
        f"(max {windows['largest_recommend']}), observe mean "
        f"{windows['mean_observe_width']:.1f} (max {windows['largest_observe']})",
        f"deadline misses:  {report['deadline_misses']}",
    ]
    return "\n".join(lines)


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=2000)
    parser.add_argument("--num-items", type=int, default=1000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--num-neighbors", type=int, default=50)
    parser.add_argument("--num-requests", type=int, default=4000)
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--alpha", type=float, default=1.1, help="Zipf exponent over visitors")
    parser.add_argument("--observe-prob", type=float, default=0.1)
    parser.add_argument("--mean-session", type=float, default=3.0)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--offered-ratio", type=float, default=3.0,
        help="offered arrival rate as a multiple of measured sequential QPS",
    )
    parser.add_argument("--bursts", type=int, default=4, help="burst episodes in the stream")
    parser.add_argument(
        "--burst-factor", type=float, default=3.0,
        help="arrival-rate multiplier inside a burst episode",
    )
    parser.add_argument(
        "--burst-span", type=float, default=0.08,
        help="fraction of the stream covered by each burst episode",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_users, args.num_items, args.dim = 200, 150, 16
        args.num_neighbors, args.num_requests, args.k = 20, 400, 20
        args.cache_capacity, args.max_batch = 256, 32

    sccf, dataset = build_sccf(args.num_users, args.num_items, args.dim, args.num_neighbors)
    sccf.attach_cache(ServingCache(args.cache_capacity))
    ops = make_workload(
        args.num_requests,
        dataset.num_users,
        dataset.num_items,
        args.alpha,
        args.observe_prob,
        args.mean_session,
        args.k,
    )

    # identical starting state for both paths: same fitted SCCF, same cache
    sequential_server = RealTimeServer(copy.deepcopy(sccf), dataset)
    frontend_server = RealTimeServer(copy.deepcopy(sccf), dataset)

    sequential = run_sequential(sequential_server, ops)
    offered_qps = sequential["qps"] * args.offered_ratio
    arrivals = make_arrivals(
        len(ops), offered_qps, args.bursts, args.burst_factor, args.burst_span, seed=43
    )
    frontend = run_frontend(
        frontend_server, ops, arrivals, args.max_batch, args.max_wait_ms,
        max_queue=len(ops),
    )
    health = frontend_server.health()

    report = {
        "config": {
            "num_users": args.num_users,
            "num_items": args.num_items,
            "dim": args.dim,
            "num_neighbors": args.num_neighbors,
            "num_requests": args.num_requests,
            "k": args.k,
            "alpha": args.alpha,
            "observe_prob": args.observe_prob,
            "mean_session": args.mean_session,
            "cache_capacity": args.cache_capacity,
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "offered_ratio": args.offered_ratio,
            "bursts": args.bursts,
            "burst_factor": args.burst_factor,
            "burst_span": args.burst_span,
            "smoke": args.smoke,
        },
        "offered_qps": offered_qps,
        "sequential": sequential,
        "frontend": frontend,
        "speedup": frontend["qps"] / sequential["qps"],
        "deadline_misses": frontend_server.deadline_misses,
        "health": {
            "recommend_p50_ms": health.recommend_p50_ms,
            "recommend_p99_ms": health.recommend_p99_ms,
            "observe_p50_ms": health.observe_p50_ms,
            "observe_p99_ms": health.observe_p99_ms,
        },
    }
    print(
        f"async front-end: {args.num_requests} requests, {args.num_users} users, "
        f"{args.num_items} items, d={args.dim}, max_batch={args.max_batch}, "
        f"max_wait={args.max_wait_ms}ms"
    )
    print(format_report(report))
    path = emit_bench_json("async_frontend", report)
    print(f"\nresults written to {path}")
    return report


if __name__ == "__main__":
    main()
