"""Serving availability during a retrain: in-place stall vs blue/green shadow.

The zero-downtime question is quantitative: when the IVF index has drifted
enough to need re-clustering, what do request latencies look like *during*
the retrain?  This bench replays one open-loop request stream three times
through identically built servers:

1. **steady** — no maintenance; the no-retrain latency floor;
2. **in-place** — ``maintain(shadow=False)`` fires inline at the stream's
   midpoint.  The retrain runs on the serving thread, so every request that
   arrives meanwhile queues behind it; the stall surfaces as the p99/max
   latency (latency is measured from each request's *scheduled arrival*,
   open-loop style, so queue wait counts);
3. **shadow** — ``begin_shadow_maintenance()`` fires at the same midpoint
   and the loop polls ``poll_shadow_maintenance()`` between requests.  The
   worker thread re-clusters a clone (kmeans is BLAS-bound and releases the
   GIL) while the old index keeps answering; the publish is one reference
   swap.

Every request in all three episodes is answered — the availability story is
the *latency* distribution, not an error count.  The two maintained servers
must end **bit-identical** (mutations that land mid-build are journaled and
replayed onto the shadow before the swap), which the bench asserts by
comparing served lists, and the acceptance bar for the zero-downtime PR is
``shadow.p99 << inplace.max`` (the stall disappears from the tail).

A fourth section times the crash-safe snapshot store: ``save_snapshot`` →
``load_snapshot`` into a fresh process-equivalent server, asserting the
restored replica serves bit-identically (the cold-start recovery path).

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_zero_downtime.py
    PYTHONPATH=src python benchmarks/bench_zero_downtime.py --offered-ratio 0.8
    PYTHONPATH=src python benchmarks/bench_zero_downtime.py --smoke   # tiny CI configuration

Emits ``BENCH_zero_downtime.json`` next to the run (redirect with
``$BENCH_RESULTS_DIR``).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann import IVFIndex
from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.data import load_preset
from repro.models import FISM

from _bench_utils import emit_bench_json
from bench_cache_serving import make_workload

#: IVF imbalance is always >= 1.0, so this threshold forces the retrain path
FORCE_RETRAIN = 0.5


def _percentiles(latencies_ms: List[float]) -> Dict[str, float]:
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p99_ms": float(np.percentile(values, 99)),
        "max_ms": float(np.max(values)),
        "mean_ms": float(np.mean(values)),
    }


def build_server(
    num_users: int, num_items: int, dim: int, num_cells: int, seed: int
) -> Tuple[RealTimeServer, object]:
    """A fitted IVF-backed server on a synthetic dataset (fresh per episode)."""

    dataset = load_preset(
        "tiny",
        seed=seed,
        num_users=num_users,
        num_items=num_items,
        avg_interactions=20.0,
        name="bench-zero-downtime",
    )
    model = FISM(embedding_dim=dim, num_epochs=0, seed=seed).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=20, candidate_list_size=60, merger_epochs=1, seed=seed),
        neighbor_index=IVFIndex(
            num_cells=num_cells, n_probe=2, rng=np.random.default_rng(seed)
        ),
    ).fit(dataset, fit_ui_model=False)
    return RealTimeServer(sccf, dataset), dataset


def calibrate_qps(server: RealTimeServer, ops: List[Tuple], sample: int) -> float:
    """Closed-loop capacity estimate used to pick the open-loop offered rate."""

    start = time.perf_counter()
    for op in ops[:sample]:
        if op[0] == "observe":
            server.observe(op[1], op[2])
        else:
            server.recommend(op[1], k=op[2])
    return sample / (time.perf_counter() - start)


def run_episode(
    server: RealTimeServer,
    ops: List[Tuple],
    arrivals: List[float],
    maintenance: str,
) -> Dict:
    """Replay the stream open-loop; optionally retrain at the midpoint.

    ``maintenance`` is ``"none"``, ``"inplace"`` or ``"shadow"``.  Latency is
    measured from each request's scheduled arrival instant, so time spent
    stalled behind an inline retrain is charged to the requests it delayed.
    """

    trigger = len(ops) // 2
    latencies_ms: List[float] = []
    report = None
    retrain_wall_s: Optional[float] = None
    for op in ops[:32]:  # read-only warmup: BLAS paths, lazy caches
        if op[0] == "recommend":
            server.recommend(op[1], k=op[2])
    start = time.perf_counter()
    for position, (op, arrival) in enumerate(zip(ops, arrivals)):
        if position == trigger:
            if maintenance == "inplace":
                retrain_start = time.perf_counter()
                report = server.maintain(FORCE_RETRAIN, shadow=False)
                retrain_wall_s = time.perf_counter() - retrain_start
            elif maintenance == "shadow":
                retrain_start = time.perf_counter()
                server.begin_shadow_maintenance(imbalance_threshold=FORCE_RETRAIN)
        if maintenance == "shadow" and report is None and position > trigger:
            report = server.poll_shadow_maintenance()
            if report is not None:
                retrain_wall_s = time.perf_counter() - retrain_start
        now = time.perf_counter() - start
        if now < arrival:
            time.sleep(arrival - now)
        if op[0] == "observe":
            server.observe(op[1], op[2])
        else:
            server.recommend(op[1], k=op[2])
        latencies_ms.append((time.perf_counter() - start - arrival) * 1000.0)
    if maintenance == "shadow" and report is None:
        report = server.poll_shadow_maintenance(wait=True)
        retrain_wall_s = time.perf_counter() - retrain_start
    wall_s = time.perf_counter() - start
    result = {
        "requests": len(ops),
        "answered": len(latencies_ms),
        "wall_s": wall_s,
        **_percentiles(latencies_ms),
    }
    if maintenance != "none":
        assert report is not None and report.retrained, "retrain did not run"
        result["retrain_wall_s"] = retrain_wall_s
        result["retrain_duration_ms"] = report.duration_ms
        result["journaled_mutations"] = report.journaled_mutations
        result["epoch_after"] = int(server.sccf.neighborhood.index.epoch)
    return result


def assert_parity(a: RealTimeServer, b: RealTimeServer, users: List[int], k: int) -> bool:
    for user in users:
        if a.recommend(user, k=k) != b.recommend(user, k=k):
            return False
    return True


def bench_snapshot(
    server: RealTimeServer,
    dataset: object,
    build_fresh_sccf,
    users: List[int],
    k: int,
) -> Dict:
    """Time save → load → serve; assert the replica is bit-identical."""

    with tempfile.TemporaryDirectory() as root:
        save_start = time.perf_counter()
        generation = server.save_snapshot(root)
        save_s = time.perf_counter() - save_start
        size_bytes = sum(
            entry.stat().st_size for entry in generation.rglob("*") if entry.is_file()
        )
        # the replica ships with a fitted SCCF shell (the base model is not
        # part of the snapshot); only read -> restore -> history rebuild is
        # the cold-start cost being measured
        shell = build_fresh_sccf()
        load_start = time.perf_counter()
        restored = RealTimeServer.load_snapshot(root, shell, dataset)
        load_s = time.perf_counter() - load_start
    return {
        "save_s": save_s,
        "load_s": load_s,
        "generation_bytes": size_bytes,
        "restored_serves_identically": assert_parity(server, restored, users, k),
    }


def format_report(steady: Dict, inplace: Dict, shadow: Dict, snapshot: Dict) -> str:
    lines = [
        "zero-downtime retrain: open-loop stream, retrain fired at the midpoint",
        f"  steady (no retrain):  p50 {steady['p50_ms']:.2f} ms   "
        f"p99 {steady['p99_ms']:.2f} ms   max {steady['max_ms']:.2f} ms",
        f"  in-place retrain:     p50 {inplace['p50_ms']:.2f} ms   "
        f"p99 {inplace['p99_ms']:.2f} ms   max {inplace['max_ms']:.2f} ms"
        f"   (stalled {inplace['retrain_wall_s'] * 1000.0:.0f} ms inline)",
        f"  shadow retrain:       p50 {shadow['p50_ms']:.2f} ms   "
        f"p99 {shadow['p99_ms']:.2f} ms   max {shadow['max_ms']:.2f} ms"
        f"   ({shadow['journaled_mutations']} mutations journaled + replayed)",
        f"  snapshot: save {snapshot['save_s'] * 1000.0:.0f} ms, "
        f"load {snapshot['load_s'] * 1000.0:.0f} ms, "
        f"{snapshot['generation_bytes'] / 1024.0:.0f} KiB, "
        f"replica bit-identical: {snapshot['restored_serves_identically']}",
    ]
    return "\n".join(lines)


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=20_000)
    parser.add_argument("--num-items", type=int, default=1200)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--num-cells", type=int, default=32)
    parser.add_argument("--num-requests", type=int, default=2000)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument(
        "--offered-ratio", type=float, default=0.5,
        help="open-loop arrival rate as a fraction of measured closed-loop capacity",
    )
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_users, args.num_items, args.num_requests = 400, 200, 300
        args.num_cells = 8

    def fresh():
        return build_server(
            args.num_users, args.num_items, args.dim, args.num_cells, args.seed
        )

    ops = make_workload(
        num_requests=args.num_requests,
        num_users=args.num_users,
        num_items=args.num_items,
        alpha=1.1,
        observe_prob=0.3,
        mean_session=3.0,
        k=args.k,
        seed=args.seed,
    )

    calibration_server, _ = fresh()
    capacity_qps = calibrate_qps(
        calibration_server, ops, sample=min(200, len(ops))
    )
    offered_qps = capacity_qps * args.offered_ratio
    rng = np.random.default_rng(args.seed)
    arrivals = np.cumsum(rng.exponential(1.0 / offered_qps, size=len(ops))).tolist()

    steady_server, _ = fresh()
    steady = run_episode(steady_server, ops, arrivals, maintenance="none")
    inplace_server, _ = fresh()
    inplace = run_episode(inplace_server, ops, arrivals, maintenance="inplace")
    shadow_server, dataset = fresh()
    shadow = run_episode(shadow_server, ops, arrivals, maintenance="shadow")

    # blue/green contract: the shadow-published server is bit-identical to
    # the in-place one — same retrain point in the stream, same mutations
    sample_users = sorted({op[1] for op in ops if op[0] == "recommend"})[:20]
    retrain_parity = assert_parity(inplace_server, shadow_server, sample_users, args.k)
    assert retrain_parity, "shadow publish diverged from the in-place retrain"

    def fresh_sccf():
        server, _ = fresh()
        return server.sccf

    snapshot = bench_snapshot(shadow_server, dataset, fresh_sccf, sample_users, args.k)
    assert snapshot["restored_serves_identically"], "snapshot replica diverged"

    print(format_report(steady, inplace, shadow, snapshot))
    report = {
        "cores": os.cpu_count(),
        "config": {
            "num_users": args.num_users,
            "num_items": args.num_items,
            "dim": args.dim,
            "num_cells": args.num_cells,
            "num_requests": args.num_requests,
            "k": args.k,
            "offered_ratio": args.offered_ratio,
            "offered_qps": offered_qps,
            "capacity_qps": capacity_qps,
            "seed": args.seed,
        },
        "steady": steady,
        "inplace": inplace,
        "shadow": shadow,
        "shadow_matches_inplace": retrain_parity,
        "snapshot": snapshot,
    }
    emit_bench_json("zero_downtime", report)
    return report


if __name__ == "__main__":
    main()
