"""Shared helpers for the benchmark suite (importable from every bench module)."""

from __future__ import annotations

from repro.experiments import QUICK

#: The scale used by every benchmark: small synthetic datasets, short training
#: budgets, capped evaluation users — minutes on a laptop CPU, same shape as
#: the paper's results.
BENCH_SCALE = QUICK.with_overrides(
    embedding_dim=32,
    fism_epochs=4,
    sasrec_epochs=3,
    bprmf_epochs=4,
    merger_epochs=40,
    num_neighbors=50,
    candidate_list_size=100,
    max_eval_users=150,
    dimension_grid=(16, 32),
    neighbor_grid=(25, 50, 100),
    datasets=("games-small", "ml-1m-small"),
)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The interesting output of each bench is the regenerated table plus its
    end-to-end wall-clock; repeating a multi-minute experiment for latency
    statistics would add nothing.
    """

    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
