"""Shared helpers for the benchmark suite (importable from every bench module)."""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any

import numpy as np

from repro.experiments import QUICK

#: The scale used by every benchmark: small synthetic datasets, short training
#: budgets, capped evaluation users — minutes on a laptop CPU, same shape as
#: the paper's results.
BENCH_SCALE = QUICK.with_overrides(
    embedding_dim=32,
    fism_epochs=4,
    sasrec_epochs=3,
    bprmf_epochs=4,
    merger_epochs=40,
    num_neighbors=50,
    candidate_list_size=100,
    max_eval_users=150,
    dimension_grid=(16, 32),
    neighbor_grid=(25, 50, 100),
    datasets=("games-small", "ml-1m-small"),
)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The interesting output of each bench is the regenerated table plus its
    end-to-end wall-clock; repeating a multi-minute experiment for latency
    statistics would add nothing.
    """

    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def _sanitize(value: Any) -> Any:
    """Recursively convert bench payloads (dataclasses, NumPy types) to JSON types."""

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _sanitize(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _sanitize(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(entry) for entry in value]
    if isinstance(value, np.ndarray):
        return _sanitize(value.tolist())
    if isinstance(value, np.generic):
        return value.item()
    return value


def emit_bench_json(name: str, payload: Any) -> str:
    """Write a machine-readable ``BENCH_<name>.json`` next to the run.

    Every benchmark emits its result rows through this helper so the perf
    trajectory can be tracked across PRs by diffing JSON instead of scraping
    stdout.  The destination directory defaults to the current working
    directory and can be redirected with ``$BENCH_RESULTS_DIR``.  Returns the
    written path.
    """

    directory = os.environ.get("BENCH_RESULTS_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump({"bench": name, "results": _sanitize(payload)}, handle, indent=2, default=str)
        handle.write("\n")
    return path
