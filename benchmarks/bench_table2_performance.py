"""Table II — top-N performance of all methods on the dataset analogs.

Paper reference: Table II compares Pop, ItemKNN, UserKNN, BPR-MF and the two
SCCF base models (FISM, SASRec) with their UU and SCCF variants on HR/NDCG at
20/50/100.  The headline shape to reproduce: SCCF improves over its base UI
model, and the user-based component alone is competitive.
"""

from __future__ import annotations

from repro.experiments import format_table2, run_table2

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_table2_performance_comparison(benchmark, bench_datasets):
    rows = run_once(
        benchmark,
        run_table2,
        BENCH_SCALE,
        datasets=bench_datasets,
        include_baselines=True,
    )
    print("\n=== Table II: performance comparison ===")
    print(format_table2(rows))
    emit_bench_json("table2_performance", rows)

    by_key = {(row.dataset, row.model): row.metrics for row in rows}
    for dataset in bench_datasets:
        # Non-personalized Pop is the weakest reasonable baseline; the FISM
        # variants of SCCF should comfortably beat it.
        assert by_key[(dataset, "FISMSCCF")]["NDCG@50"] >= by_key[(dataset, "Pop")]["NDCG@50"] * 0.8
        # The paper's headline: SCCF improves (or at least does not collapse
        # relative to) its base UI model.
        assert by_key[(dataset, "FISMSCCF")]["HR@50"] >= by_key[(dataset, "FISM")]["HR@50"] * 0.9
        assert by_key[(dataset, "SASRecSCCF")]["HR@50"] >= by_key[(dataset, "SASRec")]["HR@50"] * 0.85
