"""Ablation — exact brute-force neighbor search vs the IVF approximate index.

Extension beyond the paper: the deployment relies on Faiss for billion-scale
neighbor retrieval; this repo ships both an exact index and an IVF index.  The
bench measures recall@β against exact search and per-query latency as the
number of probed cells grows — the classic accuracy/latency trade-off curve.
"""

from __future__ import annotations

from repro.experiments import run_ann_ablation

from _bench_utils import emit_bench_json, run_once


def test_ablation_ann_recall_latency(benchmark):
    rows = run_once(
        benchmark,
        run_ann_ablation,
        num_vectors=5000,
        dim=64,
        k=100,
        num_queries=50,
        num_cells=32,
        n_probe_values=(1, 2, 4, 8, 16),
        seed=0,
    )
    print("\n=== Ablation: neighbor search recall / latency ===")
    print(f"{'index':<18}{'recall@100':>12}{'query_ms':>12}")
    for row in rows:
        print(f"{row.variant:<18}{row.metrics['recall']:>12.4f}{row.metrics['query_ms']:>12.4f}")

    emit_bench_json("ablation_ann", rows)
    by_variant = {row.variant: row.metrics for row in rows}
    assert by_variant["BruteForce"]["recall"] == 1.0
    # Recall is monotone (within tolerance) in the number of probed cells.
    recalls = [by_variant[f"IVF(n_probe={p})"]["recall"] for p in (1, 2, 4, 8, 16)]
    assert recalls[-1] >= recalls[0]
    assert recalls[-1] > 0.7
    # Probing few cells is faster than the exact scan.
    assert by_variant["IVF(n_probe=1)"]["query_ms"] <= by_variant["BruteForce"]["query_ms"] * 1.5
