"""Figure 5 — HR@50 / NDCG@50 as a function of the embedding dimension.

Paper reference: Figure 5 sweeps the hidden dimensionality over
{16, 32, 64, 128} for FISM and SASRec with their UU and SCCF variants on all
four datasets.  The shapes to reproduce: performance tends to grow (and then
saturate) with dimension, and the SCCF variant tracks above its base UI
component across the grid.  The bench sweeps a reduced grid with the FISM
base on the Amazon analog.
"""

from __future__ import annotations

from repro.experiments import format_sweep, run_dimension_sweep

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_figure5_dimension_sweep(benchmark, bench_datasets):
    dataset_name = "games-small"
    points = run_once(
        benchmark,
        run_dimension_sweep,
        BENCH_SCALE,
        datasets={dataset_name: bench_datasets[dataset_name]},
        dimensions=BENCH_SCALE.dimension_grid,
        base_models=("FISM",),
        cutoffs=(50,),
    )
    print("\n=== Figure 5: HR@50 / NDCG@50 vs embedding dimension ===")
    print(format_sweep(points, metric="HR@50"))
    print()
    print(format_sweep(points, metric="NDCG@50"))
    emit_bench_json("figure5_dimension", points)

    ui = {p.value: p.metrics["NDCG@50"] for p in points if p.variant == "UI"}
    sccf = {p.value: p.metrics["NDCG@50"] for p in points if p.variant == "SCCF"}
    # SCCF stays at or above its base UI component across the dimension grid
    # (the paper's "the trend is consistent with different embedding sizes").
    for dimension in ui:
        assert sccf[dimension] >= ui[dimension] * 0.9
