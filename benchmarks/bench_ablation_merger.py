"""Ablation — the learned integrating MLP vs simple score interpolation.

Extension beyond the paper: DESIGN.md calls out the per-user normalization +
MLP fusion (eqs. 15-16) as a design choice worth isolating.  This bench
compares the full SCCF merger against the UI/UU components alone and against
a fixed linear interpolation ``λ·r̃^UI + (1-λ)·r̃^UU`` for several λ.
"""

from __future__ import annotations

from repro.experiments import run_merger_ablation

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_ablation_merger_vs_interpolation(benchmark, bench_datasets):
    dataset_name = "games-small"
    rows = run_once(
        benchmark,
        run_merger_ablation,
        BENCH_SCALE,
        dataset_name=dataset_name,
        dataset=bench_datasets[dataset_name],
        interpolation_lambdas=(0.5, 0.7, 0.9),
        cutoffs=(20, 50),
    )
    print("\n=== Ablation: integrating MLP vs score interpolation ===")
    print(f"{'variant':<26}{'HR@20':>10}{'NDCG@20':>10}{'HR@50':>10}{'NDCG@50':>10}")
    for row in rows:
        metrics = row.metrics
        print(
            f"{row.variant:<26}{metrics.get('HR@20', 0):>10.4f}{metrics.get('NDCG@20', 0):>10.4f}"
            f"{metrics.get('HR@50', 0):>10.4f}{metrics.get('NDCG@50', 0):>10.4f}"
        )

    emit_bench_json("ablation_merger", rows)
    by_variant = {row.variant: row.metrics for row in rows}
    interpolations = [m for v, m in by_variant.items() if v.startswith("interpolation")]
    # The learned merger should be competitive with the best fixed interpolation.
    best_interp_hr = max(m["HR@50"] for m in interpolations)
    assert by_variant["SCCF (MLP merger)"]["HR@50"] >= best_interp_hr * 0.85
    # And both fused variants should beat the weaker standalone component.
    weaker = min(by_variant["UI only"]["HR@50"], by_variant["UU only"]["HR@50"])
    assert by_variant["SCCF (MLP merger)"]["HR@50"] >= weaker
