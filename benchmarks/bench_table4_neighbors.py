"""Table IV — NDCG@50 as a function of the neighborhood size β.

Paper reference: Table IV sweeps β ∈ {50, 100, 200} and shows (i) the UI
column is constant in β, (ii) SCCF improves over UI for every β, and (iii)
overly large neighborhoods can hurt slightly because they admit noisy users.
This bench sweeps a scaled grid on the Amazon analog with the FISM base.
"""

from __future__ import annotations

from repro.experiments import format_sweep, run_neighbor_sweep

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_table4_neighborhood_size_sweep(benchmark, bench_datasets):
    dataset_name = "games-small"
    points = run_once(
        benchmark,
        run_neighbor_sweep,
        BENCH_SCALE,
        datasets={dataset_name: bench_datasets[dataset_name]},
        neighbor_counts=BENCH_SCALE.neighbor_grid,
        base_models=("FISM",),
        cutoffs=(50,),
    )
    print("\n=== Table IV: NDCG@50 vs neighborhood size β ===")
    print(format_sweep(points, metric="NDCG@50"))
    emit_bench_json("table4_neighbors", points)

    ui_values = {p.value: p.metrics["NDCG@50"] for p in points if p.variant == "UI"}
    sccf_values = {p.value: p.metrics["NDCG@50"] for p in points if p.variant == "SCCF"}
    # The UI model does not depend on β at all.
    assert len(set(round(v, 6) for v in ui_values.values())) == 1
    # SCCF improves over (or matches) the UI base for every β.
    for beta, value in sccf_values.items():
        assert value >= ui_values[beta] * 0.95
