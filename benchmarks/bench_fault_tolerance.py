"""Serving availability under a worker kill schedule (chaos benchmark).

The fault-tolerance question is quantitative: when shard workers keep
dying, what fraction of requests still get an answer, how much throughput
does supervision cost, and how long does a wounded pool take to heal?
This bench runs a fixed query stream through a degrade-policy
:class:`~repro.ann.process_sharded.ProcessShardedIndex` twice:

1. **baseline** — no faults, measuring the supervised backend's normal
   QPS and latency percentiles;
2. **chaos** — the same stream with a deterministic
   :class:`~repro.testing.FaultInjector` schedule SIGKILLing one random
   live worker every ``--kill-every`` queries (the OOM-killer cadence);
3. **recovery** — isolated kill→healed trials (no concurrent query
   pressure), because a saturating single-core query loop starves the
   respawning child of CPU and the in-stream recovery count then
   understates how fast an idle-or-lightly-loaded pool actually heals.

Per-query accounting distinguishes three outcomes: a **full** answer
(every shard reported), a **degraded** answer (survivors only — served,
not cached by upper layers), and an **empty** answer (every shard down at
once).  *Availability* is the fraction of queries that returned results at
all (full or degraded); the acceptance bar for the fault-tolerance PR is
**availability >= 99%** under the kill-every-500-queries run.
*Time-to-recover* is measured per outage: from the kill to the first
subsequent full (non-degraded) answer.

The index under test uses a short restart backoff (kills here are
independent incidents, not a crash loop, so waiting out the exponential
schedule would measure the backoff policy rather than the recovery path).

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --kill-every 250 --shards 3
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke   # tiny CI configuration

Emits ``BENCH_fault_tolerance.json`` next to the run (redirect with
``$BENCH_RESULTS_DIR``).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List

import numpy as np

from repro.ann import ProcessShardedIndex
from repro.testing import FaultInjector

from _bench_utils import emit_bench_json


def _percentiles(latencies_ms: List[float]) -> Dict[str, float]:
    return {
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p99_ms": float(np.percentile(latencies_ms, 99)),
    }


def _make_index(num_shards: int) -> ProcessShardedIndex:
    return ProcessShardedIndex(
        num_shards=num_shards,
        failure_policy="degrade",
        restart_backoff=0.01,
        restart_backoff_cap=0.25,
    )


def bench_baseline(
    vectors: np.ndarray, queries: np.ndarray, k: int, num_shards: int
) -> Dict:
    """QPS/latency of the supervised backend with no faults injected."""

    with _make_index(num_shards) as index:
        index.build(vectors)
        index.search_batch(queries[:1], k)  # warm up workers/BLAS
        latencies_ms: List[float] = []
        start = time.perf_counter()
        for query in queries:
            query_start = time.perf_counter()
            index.search_batch(query[None, :], k)
            latencies_ms.append((time.perf_counter() - query_start) * 1000.0)
        elapsed = time.perf_counter() - start
    return {"qps": len(queries) / elapsed, **_percentiles(latencies_ms)}


def bench_chaos(
    vectors: np.ndarray,
    queries: np.ndarray,
    k: int,
    num_shards: int,
    kill_every: int,
    seed: int,
) -> Dict:
    """The same stream under a deterministic kill-every-N-queries schedule."""

    injector = FaultInjector(seed=seed, kill_every=kill_every)
    full = degraded = empty = 0
    latencies_ms: List[float] = []
    recoveries_ms: List[float] = []
    outage_since = None

    with _make_index(num_shards) as index:
        index.build(vectors)
        index.search_batch(queries[:1], k)  # warm up workers/BLAS
        start = time.perf_counter()
        for query in queries:
            if injector.tick(index) is not None and outage_since is None:
                outage_since = time.perf_counter()
            query_start = time.perf_counter()
            results = index.search_batch(query[None, :], k)
            now = time.perf_counter()
            latencies_ms.append((now - query_start) * 1000.0)
            if getattr(results, "degraded", False):
                if any(len(ids) for ids, _ in results):
                    degraded += 1
                else:
                    empty += 1
            else:
                full += 1
                if outage_since is not None:
                    recoveries_ms.append((now - outage_since) * 1000.0)
                    outage_since = None
        elapsed = time.perf_counter() - start
        healed = index.wait_until_healthy(timeout=60.0)
        restarts = index.restarts_total

    total = len(queries)
    return {
        "queries": total,
        "kills": injector.kills,
        "kill_log": injector.kill_log,
        "full_answers": full,
        "degraded_answers": degraded,
        "empty_answers": empty,
        "availability": (full + degraded) / total,
        "degraded_fraction": degraded / total,
        "qps": total / elapsed,
        **_percentiles(latencies_ms),
        "recoveries": len(recoveries_ms),
        "mean_recovery_ms": float(np.mean(recoveries_ms)) if recoveries_ms else None,
        "max_recovery_ms": float(np.max(recoveries_ms)) if recoveries_ms else None,
        "restarts_total": restarts,
        "healed_at_end": healed,
    }


def bench_recovery(
    vectors: np.ndarray, k: int, num_shards: int, trials: int, seed: int
) -> Dict:
    """Kill→healed wall clock per outage, measured without query pressure."""

    injector = FaultInjector(seed=seed)
    times_ms: List[float] = []
    with _make_index(num_shards) as index:
        index.build(vectors)
        for _ in range(trials):
            assert index.wait_until_healthy(timeout=60.0)
            injector.kill_worker(index)
            start = time.perf_counter()
            healed = index.wait_until_healthy(timeout=60.0)
            assert healed, "worker failed to recover within 60 s"
            times_ms.append((time.perf_counter() - start) * 1000.0)
    return {
        "trials": trials,
        "mean_recovery_ms": float(np.mean(times_ms)),
        "max_recovery_ms": float(np.max(times_ms)),
        "recovery_ms": times_ms,
    }


def format_report(baseline: Dict, chaos: Dict, recovery: Dict, kill_every: int) -> str:
    lines = [
        f"fault tolerance: kill one worker every {kill_every} queries, degrade policy",
        f"  baseline:      {baseline['qps']:>8.0f} QPS   p50 {baseline['p50_ms']:.2f} ms"
        f"   p99 {baseline['p99_ms']:.2f} ms",
        f"  under chaos:   {chaos['qps']:>8.0f} QPS   p50 {chaos['p50_ms']:.2f} ms"
        f"   p99 {chaos['p99_ms']:.2f} ms",
        f"  kills/restarts: {chaos['kills']} / {chaos['restarts_total']}"
        f"   healed at end: {chaos['healed_at_end']}",
        f"  answers: {chaos['full_answers']} full, {chaos['degraded_answers']} degraded, "
        f"{chaos['empty_answers']} empty over {chaos['queries']} queries",
        f"  availability: {chaos['availability']:.2%}",
    ]
    if chaos["recoveries"]:
        lines.append(
            f"  in-stream recoveries: mean {chaos['mean_recovery_ms']:.0f} ms, "
            f"max {chaos['max_recovery_ms']:.0f} ms over {chaos['recoveries']} outages"
        )
    lines.append(
        f"  time-to-recover (idle pool): mean {recovery['mean_recovery_ms']:.0f} ms, "
        f"max {recovery['max_recovery_ms']:.0f} ms over {recovery['trials']} trials"
    )
    return "\n".join(lines)


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-rows", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--num-queries", type=int, default=3000)
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument(
        "--shards", type=int, default=3,
        help="3 by default: worker respawn takes ~0.5 s, so on a slow box two "
             "outages can overlap — a third shard keeps the pool answering",
    )
    parser.add_argument(
        "--kill-every", type=int, default=500,
        help="SIGKILL one random live worker every N queries",
    )
    parser.add_argument("--seed", type=int, default=19)
    parser.add_argument(
        "--recovery-trials", type=int, default=3,
        help="isolated kill->healed measurements (no query pressure)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_rows, args.dim, args.num_queries = 2000, 16, 400
        args.k, args.kill_every = 20, 200
        args.recovery_trials = 1

    rng = np.random.default_rng(args.seed)
    vectors = rng.normal(size=(args.num_rows, args.dim))
    queries = rng.normal(size=(args.num_queries, args.dim))

    baseline = bench_baseline(vectors, queries, args.k, args.shards)
    chaos = bench_chaos(
        vectors, queries, args.k, args.shards, args.kill_every, args.seed
    )
    recovery = bench_recovery(
        vectors, args.k, args.shards, args.recovery_trials, args.seed
    )
    print(format_report(baseline, chaos, recovery, args.kill_every))
    report = {
        "cores": os.cpu_count(),
        "config": {
            "num_rows": args.num_rows,
            "dim": args.dim,
            "num_queries": args.num_queries,
            "k": args.k,
            "shards": args.shards,
            "kill_every": args.kill_every,
            "seed": args.seed,
        },
        "baseline": baseline,
        "chaos": chaos,
        "recovery": recovery,
    }
    emit_bench_json("fault_tolerance", report)
    return report


if __name__ == "__main__":
    main()
