"""Table V — simulated online A/B test (clicks and trades lift).

Paper reference: a one-week Taobao A/B test where SCCF-generated candidates
lift total clicks by +2.5% and trades by +2.3% over the production YouTube-DNN
style baseline.  Production traffic is unavailable, so the bench runs the
drifting-preference clickstream simulator: bucket A is served by the baseline,
bucket B by SCCF wrapped around the same baseline.  The shape to reproduce: a
positive lift on both engagement metrics.
"""

from __future__ import annotations

from repro.experiments import format_table5, run_table5

from _bench_utils import emit_bench_json, run_once


def test_table5_online_ab_simulation(benchmark):
    result = run_once(
        benchmark,
        run_table5,
        num_users=200,
        num_items=400,
        training_days=10,
        test_days=7,
        candidate_set_size=50,
        embedding_dim=32,
        baseline_epochs=4,
        num_neighbors=30,
        seed=0,
    )
    print("\n=== Table V: simulated online A/B test ===")
    print(format_table5(result))
    emit_bench_json("table5_ab_test", result)
    print(f"click lift: {result.click_lift * 100:+.2f}%   trade lift: {result.trade_lift * 100:+.2f}%")

    # Both buckets generate engagement, and the SCCF bucket should not lose
    # engagement relative to the baseline (the paper reports a positive lift).
    assert result.baseline.clicks > 0 and result.treatment.clicks > 0
    assert result.click_lift > -0.05
