"""Versioned serving cache under a Zipfian repeat-visitor workload (QPS, p50/p99).

Real recommend traffic is read-heavy and heavily skewed: a small set of hot
users issues most requests, each visitor asks several times per session
(pagination, refreshes), and only occasionally does a click land in between.
The versioned serving cache (``repro.core.cache``) makes such repeat
requests nearly free: a hit validates two integers (user version, index
epoch) and returns the stored list, while every mutation anywhere bumps a
counter and invalidates exactly the entries it could have changed.

This bench replays the *same* request stream through a cacheless and a
cache-enabled server pair (deep copies of one fitted SCCF, so the outputs
can be compared request-for-request) and reports recommend QPS, p50/p99
latency, and the per-layer hit rates.

Workload shape:

* visitors drawn from a Zipf(alpha=1.1) distribution over the user pool;
* each visitor issues a geometric session of recommend requests (mean ~3);
* with probability ``--observe-prob`` a request is an observe instead (the
  visitor clicks an item), which bumps her version and the index epoch.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_cache_serving.py
    PYTHONPATH=src python benchmarks/bench_cache_serving.py --num-requests 8000 --observe-prob 0.05
    PYTHONPATH=src python benchmarks/bench_cache_serving.py --smoke   # tiny CI configuration

The acceptance bar for the serving-cache PR: cached recommend QPS >= 2.5x
the cacheless path on the default workload, with outputs identical
request-for-request.  Results are written to ``BENCH_cache_serving.json``.
"""

from __future__ import annotations

import argparse
import copy
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core import SCCF, RealTimeServer, SCCFConfig, ServingCache
from repro.data import load_preset
from repro.models import FISM

from _bench_utils import emit_bench_json


def build_sccf(num_users: int, num_items: int, dim: int, num_neighbors: int, seed: int = 13):
    """A fitted SCCF on a synthetic dataset sized for the serving workload."""

    dataset = load_preset(
        "tiny",
        seed=seed,
        num_users=num_users,
        num_items=num_items,
        avg_interactions=20.0,
        name="bench-cache",
    )
    model = FISM(embedding_dim=dim, num_epochs=0, seed=seed).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=num_neighbors, candidate_list_size=100, merger_epochs=1, seed=seed),
    )
    sccf.fit(dataset, fit_ui_model=False)
    return sccf, dataset


def zipf_probabilities(num_users: int, alpha: float) -> np.ndarray:
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    weights = ranks ** -alpha
    return weights / weights.sum()


def make_workload(
    num_requests: int,
    num_users: int,
    num_items: int,
    alpha: float,
    observe_prob: float,
    mean_session: float,
    k: int,
    seed: int = 29,
) -> List[Tuple]:
    """A repeat-visitor request stream: Zipfian visitors, bursty sessions.

    Returns ops ``("recommend", user, k)`` / ``("observe", user, item)``.
    Visitor identity is a random permutation of the Zipf ranks so the hot
    users are not simply ids 0..n.
    """

    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(num_users, alpha)
    identity = rng.permutation(num_users)
    ops: List[Tuple] = []
    while len(ops) < num_requests:
        visitor = int(identity[rng.choice(num_users, p=probabilities)])
        session_length = 1 + rng.geometric(1.0 / mean_session)
        for _ in range(min(session_length, num_requests - len(ops))):
            if rng.random() < observe_prob:
                ops.append(("observe", visitor, int(rng.integers(0, num_items))))
            else:
                ops.append(("recommend", visitor, k))
    return ops


def run_stream(server: RealTimeServer, ops: List[Tuple]) -> Dict:
    """Replay the stream; time each recommend individually."""

    latencies_ms: List[float] = []
    outputs: List[List[int]] = []
    start = time.perf_counter()
    for op in ops:
        if op[0] == "observe":
            server.observe(op[1], op[2])
        else:
            request_start = time.perf_counter()
            outputs.append(server.recommend(op[1], k=op[2]))
            latencies_ms.append((time.perf_counter() - request_start) * 1000.0)
    elapsed = time.perf_counter() - start
    return {
        "outputs": outputs,
        "recommends": len(latencies_ms),
        "qps": len(latencies_ms) / sum(latencies_ms) * 1000.0,
        "wall_s": elapsed,
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p99_ms": float(np.percentile(latencies_ms, 99)),
        "mean_ms": float(np.mean(latencies_ms)),
    }


def bench_cache(sccf: SCCF, dataset, ops: List[Tuple], cache_capacity: int) -> Dict:
    plain = copy.deepcopy(sccf)
    cached = copy.deepcopy(sccf).attach_cache(ServingCache(cache_capacity))

    uncached_run = run_stream(RealTimeServer(plain, dataset), ops)
    cached_run = run_stream(RealTimeServer(cached, dataset), ops)

    matches = sum(
        1 for a, b in zip(uncached_run["outputs"], cached_run["outputs"]) if a == b
    )
    stats = cached.cache_stats()
    report = {
        "num_requests": len(ops),
        "recommends": uncached_run["recommends"],
        "observes": len(ops) - uncached_run["recommends"],
        "parity": {"matching": matches, "total": uncached_run["recommends"]},
        "uncached": {key: value for key, value in uncached_run.items() if key != "outputs"},
        "cached": {key: value for key, value in cached_run.items() if key != "outputs"},
        "speedup": cached_run["qps"] / uncached_run["qps"],
        "hit_rate": stats.hit_rate,
        "request_hit_rate": stats.layer("recommendations").hit_rate,
        "cache_stats": stats.as_dict(),
    }
    return report


def format_report(report: Dict) -> str:
    uncached, cached = report["uncached"], report["cached"]
    header = f"{'path':<12} {'QPS':>10} {'p50 (ms)':>10} {'p99 (ms)':>10}"
    lines = [
        f"repeat-visitor serving: {report['recommends']} recommends, "
        f"{report['observes']} observes interleaved",
        header,
        "-" * len(header),
        f"{'cacheless':<12} {uncached['qps']:>10.0f} {uncached['p50_ms']:>10.3f} {uncached['p99_ms']:>10.3f}",
        f"{'cached':<12} {cached['qps']:>10.0f} {cached['p50_ms']:>10.3f} {cached['p99_ms']:>10.3f}",
        "",
        f"speedup:                {report['speedup']:.2f}x",
        f"request-level hit rate: {report['request_hit_rate']:.1%}"
        f" (all layers: {report['hit_rate']:.1%})",
        f"output parity:          {report['parity']['matching']}/{report['parity']['total']} identical",
    ]
    return "\n".join(lines)


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=2000)
    parser.add_argument("--num-items", type=int, default=1000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--num-neighbors", type=int, default=50)
    parser.add_argument("--num-requests", type=int, default=4000)
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--alpha", type=float, default=1.1, help="Zipf exponent over visitors")
    parser.add_argument(
        "--observe-prob", type=float, default=0.03,
        help="probability a request is an observe (a click) instead of a recommend",
    )
    parser.add_argument(
        "--mean-session", type=float, default=3.0,
        help="mean recommend requests per visitor session",
    )
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_users, args.num_items, args.dim = 200, 150, 16
        args.num_neighbors, args.num_requests, args.k = 20, 300, 20
        args.cache_capacity = 256

    sccf, dataset = build_sccf(args.num_users, args.num_items, args.dim, args.num_neighbors)
    ops = make_workload(
        args.num_requests,
        dataset.num_users,
        dataset.num_items,
        args.alpha,
        args.observe_prob,
        args.mean_session,
        args.k,
    )
    report = bench_cache(sccf, dataset, ops, args.cache_capacity)
    report["config"] = {
        "num_users": args.num_users,
        "num_items": args.num_items,
        "dim": args.dim,
        "num_neighbors": args.num_neighbors,
        "k": args.k,
        "alpha": args.alpha,
        "observe_prob": args.observe_prob,
        "mean_session": args.mean_session,
        "cache_capacity": args.cache_capacity,
        "smoke": args.smoke,
    }
    print(
        f"cache serving: {args.num_requests} requests, {args.num_users} users, "
        f"{args.num_items} items, d={args.dim}, beta={args.num_neighbors}, "
        f"zipf alpha={args.alpha}"
    )
    print(format_report(report))
    path = emit_bench_json("cache_serving", report)
    print(f"\nresults written to {path}")
    if report["parity"]["matching"] != report["parity"]["total"]:
        raise SystemExit("cached and cacheless outputs diverged")
    return report


if __name__ == "__main__":
    main()
