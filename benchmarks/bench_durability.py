"""Durability cost & recovery speed: what does the write-ahead log charge?

Durability is a policy with a price, and this bench puts numbers on both
sides of the trade:

1. **Ingest cost** — the same seeded observe stream runs through four
   identically built servers: no WAL (the free-but-volatile baseline), then
   one per fsync policy (``always`` / ``batch`` / ``interval``).  The
   headline is events/sec relative to the baseline; the acceptance bar for
   the durability PR is **batch >= 0.8x non-durable** — group commit must
   make journaling affordable, not a 2x tax.
2. **Recovery time vs replay length** — snapshot once, journal N more
   events, crash (no clean shutdown), recover via ``load_snapshot`` with the
   journal attached.  Recovery time is measured across a grid of N, and every
   recovered server is asserted **bit-identical** to the one that crashed
   (same recommendations over a user sample).
3. **Replica catch-up** — a cold replica tails the primary's journal through
   ``catch_up`` and must converge to the same served lists; the bench
   asserts it and reports the tail-replay rate.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --smoke   # tiny CI configuration

Emits ``BENCH_durability.json`` next to the run (redirect with
``$BENCH_RESULTS_DIR``).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann import IVFIndex
from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.core.wal import WriteAheadLog
from repro.data import load_preset
from repro.models import FISM
from repro.testing import FaultInjector

from _bench_utils import emit_bench_json

#: the acceptance bar: group commit keeps >= this fraction of raw ingest rate
BATCH_POLICY_FLOOR = 0.8


def build_server(
    num_users: int,
    num_items: int,
    dim: int,
    num_cells: int,
    seed: int,
    wal_dir: Optional[Path] = None,
    fsync: str = "batch",
) -> Tuple[RealTimeServer, object]:
    """A fitted IVF-backed server on a synthetic dataset (fresh per episode)."""

    dataset = load_preset(
        "tiny",
        seed=seed,
        num_users=num_users,
        num_items=num_items,
        avg_interactions=20.0,
        name="bench-durability",
    )
    model = FISM(embedding_dim=dim, num_epochs=0, seed=seed).fit(dataset)
    sccf = SCCF(
        model,
        SCCFConfig(num_neighbors=20, candidate_list_size=60, merger_epochs=1, seed=seed),
        neighbor_index=IVFIndex(
            num_cells=num_cells, n_probe=2, rng=np.random.default_rng(seed)
        ),
    ).fit(dataset, fit_ui_model=False)
    wal = None if wal_dir is None else WriteAheadLog(wal_dir, fsync=fsync)
    return RealTimeServer(sccf, dataset, wal=wal), dataset


def make_events(num_events: int, num_users: int, num_items: int, seed: int) -> List[Tuple[int, int]]:
    rng = np.random.default_rng(seed)
    return [
        (int(rng.integers(0, num_users)), int(rng.integers(0, num_items)))
        for _ in range(num_events)
    ]


def ingest_rate(server: RealTimeServer, events: List[Tuple[int, int]]) -> Dict:
    """Closed-loop single-event ingest (the per-observe journaling path)."""

    for user, item in events[:32]:  # warmup: BLAS paths, lazy buffers
        server.observe(user, item)
    start = time.perf_counter()
    for user, item in events:
        server.observe(user, item)
    wall_s = time.perf_counter() - start
    result = {"events": len(events), "wall_s": wall_s, "events_per_s": len(events) / wall_s}
    if server.wal is not None:
        stats = server.wal.stats()
        result["fsyncs"] = stats.fsyncs
        result["journal_bytes"] = stats.bytes_written
    return result


def recs(server: RealTimeServer, users: List[int], k: int) -> Dict[int, List[int]]:
    return {user: server.recommend(user, k=k) for user in users}


def bench_recovery(
    args: argparse.Namespace, replay_length: int, sample_users: List[int]
) -> Dict:
    """Snapshot, journal ``replay_length`` events, crash, recover, compare."""

    events = make_events(replay_length, args.num_users, args.num_items, args.seed + replay_length)
    with tempfile.TemporaryDirectory() as root:
        waldir, snapdir = Path(root) / "wal", Path(root) / "snap"
        primary, dataset = build_server(
            args.num_users, args.num_items, args.dim, args.num_cells,
            args.seed, wal_dir=waldir, fsync="batch",
        )
        primary.save_snapshot(snapdir)
        for user, item in events:
            primary.observe(user, item)
        primary.sync_wal()  # the bytes a crash would leave behind
        expected = recs(primary, sample_users, args.k)
        # The crash itself: the writer dies, dropping the single-writer lock
        # without a clean close, so recovery can take ownership below.
        FaultInjector().crash_wal_writer(primary.wal)

        shell, _ = build_server(
            args.num_users, args.num_items, args.dim, args.num_cells, args.seed
        )
        start = time.perf_counter()
        recovered = RealTimeServer.load_snapshot(snapdir, shell.sccf, dataset, wal_dir=waldir)
        recovery_s = time.perf_counter() - start
        parity = recs(recovered, sample_users, args.k) == expected

        replica_shell, _ = build_server(
            args.num_users, args.num_items, args.dim, args.num_cells, args.seed
        )
        start = time.perf_counter()
        replica = RealTimeServer.load_snapshot(snapdir, replica_shell.sccf, dataset)
        applied = replica.catch_up(waldir)
        replica_s = time.perf_counter() - start
        replica_parity = recs(replica, sample_users, args.k) == expected
        recovered.close()
    assert parity, f"recovered server diverged at replay length {replay_length}"
    assert replica_parity, f"replica diverged at replay length {replay_length}"
    return {
        "replay_length": replay_length,
        "recovery_s": recovery_s,
        "replayed_events_per_s": replay_length / recovery_s if recovery_s > 0 else None,
        "recovered_bit_identical": parity,
        "replica_records_applied": applied,
        "replica_catch_up_s": replica_s,
        "replica_bit_identical": replica_parity,
    }


def format_report(policies: Dict[str, Dict], recovery: List[Dict]) -> str:
    base = policies["none"]["events_per_s"]
    lines = ["durable ingestion: seeded observe stream, four durability settings"]
    for name, row in policies.items():
        rel = row["events_per_s"] / base
        fsyncs = row.get("fsyncs", "-")
        lines.append(
            f"  {name:<9} {row['events_per_s']:>10.0f} events/s   "
            f"{rel:>5.2f}x baseline   fsyncs: {fsyncs}"
        )
    lines.append("crash recovery: snapshot + journal tail, recovery wall time vs tail length")
    for row in recovery:
        lines.append(
            f"  N={row['replay_length']:<6} recover {row['recovery_s'] * 1000.0:>7.1f} ms "
            f"({row['replayed_events_per_s']:.0f} events/s)   "
            f"replica catch-up {row['replica_catch_up_s'] * 1000.0:>7.1f} ms   "
            f"bit-identical: {row['recovered_bit_identical'] and row['replica_bit_identical']}"
        )
    return "\n".join(lines)


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=20_000)
    parser.add_argument("--num-items", type=int, default=1200)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--num-cells", type=int, default=32)
    parser.add_argument("--num-events", type=int, default=4000)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument(
        "--replay-grid", type=int, nargs="+", default=[500, 1000, 2000, 4000],
        help="journal tail lengths for the recovery-time measurement",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_users, args.num_items, args.num_events = 400, 200, 300
        args.num_cells = 8
        args.replay_grid = [50, 150]

    events = make_events(args.num_events, args.num_users, args.num_items, args.seed)
    policies: Dict[str, Dict] = {}
    for name in ("none", "always", "batch", "interval"):
        with tempfile.TemporaryDirectory() as root:
            wal_dir = None if name == "none" else Path(root) / "wal"
            server, _ = build_server(
                args.num_users, args.num_items, args.dim, args.num_cells,
                args.seed, wal_dir=wal_dir, fsync=name if wal_dir else "batch",
            )
            policies[name] = ingest_rate(server, events)
            server.close()

    batch_ratio = policies["batch"]["events_per_s"] / policies["none"]["events_per_s"]
    batch_ok = batch_ratio >= BATCH_POLICY_FLOOR

    rng = np.random.default_rng(args.seed)
    sample_users = sorted(int(u) for u in rng.choice(args.num_users, size=16, replace=False))
    recovery = [bench_recovery(args, length, sample_users) for length in args.replay_grid]

    print(format_report(policies, recovery))
    print(
        f"batch policy keeps {batch_ratio:.2f}x of non-durable ingest "
        f"(floor {BATCH_POLICY_FLOOR:.1f}x): {'OK' if batch_ok else 'BELOW FLOOR'}"
    )

    report = {
        "cores": os.cpu_count(),
        "config": {
            "num_users": args.num_users,
            "num_items": args.num_items,
            "dim": args.dim,
            "num_cells": args.num_cells,
            "num_events": args.num_events,
            "k": args.k,
            "replay_grid": args.replay_grid,
            "seed": args.seed,
        },
        "ingest": policies,
        "batch_vs_baseline": batch_ratio,
        "batch_policy_floor": BATCH_POLICY_FLOOR,
        "batch_policy_ok": batch_ok,
        "recovery": recovery,
    }
    emit_bench_json("durability", report)
    return report


if __name__ == "__main__":
    main()
