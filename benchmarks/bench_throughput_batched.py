"""Single-query vs batched serving throughput (QPS).

The paper's Table III argues the SCCF candidate-generation path is real-time;
this bench quantifies how much throughput the *batched* execution path adds on
top of that, on the synthetic benchmark dataset:

1. **Neighbor search** — ``BruteForceIndex.search`` called per query vs one
   ``search_batch`` matmul over the whole query block.
2. **UU scoring (eq. 12)** — the seed implementation's per-user Python double
   loop (reproduced verbatim below as the baseline) vs the CSR
   gather-and-bincount ``score_for_users`` path.
3. **Leave-one-out evaluation** — ``Evaluator`` scoring user-at-a-time vs
   ``batch_size``-chunked through ``score_items_batch``.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_throughput_batched.py
    PYTHONPATH=src python benchmarks/bench_throughput_batched.py --num-users 5000 --batch 512

The acceptance bar for the batched pipeline PR: >= 10x QPS on batched
brute-force search (batch >= 256) and >= 5x on batched UU scoring.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.ann import BruteForceIndex, IVFIndex, cosine_similarity
from repro.core import UserNeighborhoodComponent
from repro.data import load_preset
from repro.eval import Evaluator
from repro.models import FISM

from _bench_utils import emit_bench_json


def _timeit(func, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock seconds (cold-cache noise suppressed)."""

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def seed_uu_scores_loop(
    component: UserNeighborhoodComponent,
    user_id: int,
    embedding: np.ndarray,
) -> np.ndarray:
    """The seed repo's eq. (12): Python double loop over neighbors x items."""

    neighbor_ids, similarities = component.neighbors(embedding, exclude_user=user_id)
    scores = np.zeros(component.num_items, dtype=np.float64)
    for neighbor, similarity in zip(neighbor_ids, similarities):
        if similarity <= 0:
            continue
        for item in component._recent_items.get(int(neighbor), []):
            if 0 <= item < component.num_items:
                scores[item] += float(similarity)
    exclude = component._recent_items.get(user_id, [])
    if exclude:
        scores[np.asarray(exclude, dtype=np.int64)] = 0.0
    return scores


def seed_brute_force_search(vectors: np.ndarray, query: np.ndarray, k: int):
    """The seed repo's ``BruteForceIndex.search``: re-normalizes all N index
    rows on *every* query (no cached normalized matrix, float64, no batching)."""

    scores = cosine_similarity(query, vectors)
    k = min(k, len(scores))
    top = np.argpartition(-scores, kth=k - 1)[:k]
    order = top[np.argsort(-scores[top], kind="stable")]
    return order, scores[order]


def bench_neighbor_search(num_vectors: int, dim: int, batch: int, k: int) -> List[Dict]:
    rng = np.random.default_rng(7)
    vectors = rng.normal(size=(num_vectors, dim))
    queries = rng.normal(size=(batch, dim))

    rows = []
    brute = BruteForceIndex().build(vectors)
    seed = _timeit(lambda: [seed_brute_force_search(vectors, query, k) for query in queries])
    single = _timeit(lambda: [brute.search(query, k=k) for query in queries])
    batched = _timeit(lambda: brute.search_batch(queries, k=k))
    rows.append(
        {
            "path": f"BruteForce neighbor search (N={num_vectors}, d={dim}, k={k})",
            "seed_qps": batch / seed,
            "single_qps": batch / single,
            "batched_qps": batch / batched,
            "speedup": seed / batched,
        }
    )

    ivf = IVFIndex(num_cells=64, n_probe=8, rng=rng).build(vectors)
    single = _timeit(lambda: [ivf.search(query, k=k) for query in queries])
    batched = _timeit(lambda: ivf.search_batch(queries, k=k))
    rows.append(
        {
            "path": f"IVF(64,8) neighbor search (N={num_vectors}, d={dim}, k={k})",
            "seed_qps": batch / seed,
            "single_qps": batch / single,
            "batched_qps": batch / batched,
            "speedup": seed / batched,
        }
    )
    return rows


def bench_uu_scoring(component: UserNeighborhoodComponent, users: List[int]) -> Dict:
    embeddings = component._user_embeddings[np.asarray(users, dtype=np.int64)]

    def run_seed_loop():
        for position, user in enumerate(users):
            seed_uu_scores_loop(component, user, embeddings[position])

    seed = _timeit(run_seed_loop)

    def run_single_path():
        for position, user in enumerate(users):
            component.score_for_user(user, embeddings[position])

    single = _timeit(run_single_path)
    batched = _timeit(lambda: component.score_for_users(users))
    return {
        "path": f"UU scoring eq.12 ({len(users)} users, beta={component.num_neighbors})",
        "seed_qps": len(users) / seed,
        "single_qps": len(users) / single,
        "batched_qps": len(users) / batched,
        "speedup": seed / batched,
    }


def bench_evaluation(model: FISM, dataset, batch: int) -> Dict:
    evaluator = Evaluator(cutoffs=(20, 50))
    per_user = _timeit(lambda: evaluator.evaluate(model, dataset), repeats=2)
    batched = _timeit(lambda: evaluator.evaluate(model, dataset, batch_size=batch), repeats=2)
    users = len(dataset.test_items)
    return {
        "path": f"Evaluator leave-one-out ({users} users, batch={batch})",
        "seed_qps": users / per_user,
        "single_qps": users / per_user,
        "batched_qps": users / batched,
        "speedup": per_user / batched,
    }


def format_rows(rows: List[Dict]) -> str:
    header = (
        f"{'path':<56} {'seed QPS':>10} {'single QPS':>12} {'batched QPS':>12} "
        f"{'batched/seed':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['path']:<56} {row['seed_qps']:>10.0f} {row['single_qps']:>12.0f} "
            f"{row['batched_qps']:>12.0f} {row['speedup']:>11.1f}x"
        )
    return "\n".join(lines)


def main() -> List[Dict]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-users", type=int, default=3000)
    parser.add_argument("--num-items", type=int, default=1000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--batch", type=int, default=256, help="query batch size (>= 256 for the acceptance bar)")
    parser.add_argument("--num-neighbors", type=int, default=100)
    args = parser.parse_args()

    rows = bench_neighbor_search(args.num_users, args.dim, args.batch, k=args.num_neighbors)

    dataset = load_preset(
        "tiny",
        seed=13,
        num_users=args.num_users,
        num_items=args.num_items,
        avg_interactions=20.0,
        name="bench-throughput",
    )
    model = FISM(embedding_dim=args.dim, num_epochs=0, seed=13).fit(dataset)
    component = UserNeighborhoodComponent(num_neighbors=args.num_neighbors).fit(model, dataset)
    score_users = list(range(min(args.batch, dataset.num_users)))
    rows.append(bench_uu_scoring(component, score_users))

    eval_dataset = load_preset(
        "tiny",
        seed=13,
        num_users=min(args.num_users, 500),
        num_items=args.num_items,
        avg_interactions=20.0,
        name="bench-throughput-eval",
    )
    eval_model = FISM(embedding_dim=args.dim, num_epochs=0, seed=13).fit(eval_dataset)
    rows.append(bench_evaluation(eval_model, eval_dataset, batch=256))

    print(format_rows(rows))
    emit_bench_json("throughput_batched", rows)
    return rows


if __name__ == "__main__":
    main()
