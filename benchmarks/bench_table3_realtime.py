"""Table III — per-new-interaction latency: UserKNN vs the SCCF user-based path.

Paper reference: Table III reports, for ML-1M and Amazon Videos, the average
time to make new predictions after a user interacts with a new item, split
into "inferring time" (re-deriving the user representation) and "identifying
time" (finding the neighborhood).  UserKNN has no inference step but its
identification grows with the catalog; SCCF pays a small inference cost and a
near-constant low-dimensional search.  The shape to reproduce: SCCF's total is
smaller and, unlike UserKNN, does not blow up with more items.
"""

from __future__ import annotations

from repro.experiments import format_table3, run_table3

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_table3_realtime_latency(benchmark, bench_datasets):
    rows = run_once(
        benchmark,
        run_table3,
        BENCH_SCALE.with_overrides(sasrec_epochs=1, merger_epochs=5),
        datasets=bench_datasets,
        num_events=25,
    )
    print("\n=== Table III: real-time latency per new interaction (ms) ===")
    print(format_table3(rows))
    emit_bench_json("table3_realtime", rows)

    by_key = {(row.dataset, row.method): row for row in rows}
    for dataset in bench_datasets:
        userknn = by_key[(dataset, "UserKNN")]
        sccf = by_key[(dataset, "SCCF")]
        # UserKNN has no representation-inference step, SCCF does.
        assert userknn.inferring_ms == 0.0
        assert sccf.inferring_ms > 0.0
        # SCCF identifies neighbors in low-dimensional space much faster than
        # UserKNN recomputes sparse user-user similarities.
        assert sccf.identifying_ms < userknn.identifying_ms
        # Repeat-visitor serving: the second ask per user hits the versioned
        # cache, so the cached row's mean recommend latency drops below the
        # cacheless serving mean (expected margin ~2x: one compute + one
        # ~free hit vs two computes; this file is not collected by the
        # tier-1 pytest run, only by explicit benchmark runs).
        cached = by_key[(dataset, "SCCF-cached")]
        assert sccf.recommend_ms is not None and cached.recommend_ms is not None
        assert cached.recommend_ms < sccf.recommend_ms
