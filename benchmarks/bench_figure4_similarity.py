"""Figure 4 — user↔candidate cosine-similarity distributions for SASRec_SCCF.

Paper reference: Figure 4 (ML-20M) plots, per user, the cosine similarity of
the user representation to (i) the ground-truth next item, (ii) the average UI
candidate and (iii) the average user-based candidate.  The shape to reproduce:
the UI candidates are *more* similar to the user than the ground truth while
the user-based candidates are *less* similar — i.e. the two lists cover
complementary regions of the item space.
"""

from __future__ import annotations

from repro.experiments import run_figure4

from _bench_utils import BENCH_SCALE, emit_bench_json, run_once


def test_figure4_candidate_similarity_distributions(benchmark, bench_datasets):
    result = run_once(
        benchmark,
        run_figure4,
        BENCH_SCALE.with_overrides(sasrec_epochs=2, merger_epochs=5),
        dataset=bench_datasets["ml-1m-small"],
        max_users=150,
    )
    means = result.means()
    emit_bench_json("figure4_similarity", {"means": means, "rows": result.as_rows(bins=12)})
    print("\n=== Figure 4: mean user-candidate cosine similarity ===")
    print(f"{'curve':<16}{'mean similarity':>18}{'users':>8}")
    print(f"{'UI candidates':<16}{means['ui']:>18.4f}{len(result.ui_candidates):>8}")
    print(f"{'ground truth':<16}{means['ground_truth']:>18.4f}{len(result.ground_truth):>8}")
    print(f"{'UU candidates':<16}{means['uu']:>18.4f}{len(result.uu_candidates):>8}")
    print("\nhistogram (users per similarity bin):")
    for row in result.as_rows(bins=12):
        print(
            f"  {row['similarity']:>7}  gt={row['ground_truth_users']:<5}"
            f" ui={row['ui_users']:<5} uu={row['uu_users']:<5}"
        )

    # The Figure 4 ordering: UI candidates sit closest to the user, the
    # user-based candidates farthest, with the ground truth in between /
    # below the UI curve.
    assert means["ui"] > means["uu"]
    assert means["ui"] >= means["ground_truth"] - 0.05
