"""Scatter-gather shard scaling (QPS, p99) + IVF retrain recall maintenance.

Three production questions, one bench:

1. **Does sharding the user index scale serving?**  ``ShardedIndex``
   partitions N rows across S shards and fans per-shard top-k searches out
   over a thread pool (NumPy matmuls release the GIL).  This part streams
   batched queries through S in {1, 2, 4, ...} and reports QPS and the p99
   per-batch latency.  Results are bit-identical to the unsharded index, so
   the only thing changing is where the work runs.
2. **Do process-level shard workers turn sharding into multi-core
   throughput?**  The thread backend only overlaps inside BLAS — everything
   else serializes on the GIL.  The backend sweep runs the same query stream
   through the thread backend and ``ProcessShardedIndex`` (worker processes
   over a shared-memory vector store) at each worker count, plus an
   ingest-while-serving mix (row updates + streaming adds interleaved with
   searches).  Emitted as ``BENCH_process_shard_scaling.json`` with the host
   core count — on a single-core host the process backend pays IPC without
   gaining parallelism, so interpret `speedup` together with `cores`.
3. **Does periodic re-clustering repair a skewed IVF index?**  Streaming
   ``add`` assigns rows to frozen centroids, so a drifting stream piles rows
   into a few cells.  This part skews an ``IVFIndex`` with drifted adds, then
   reports cell imbalance (max/mean) and recall@10 vs brute force before and
   after ``retrain()``.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --num-rows 50000 --shards 1 2 4 8
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --workers 1 2 4 8 --backends thread process
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke   # tiny CI configuration

The acceptance bar for the process-worker PR: on a multi-core host the
process backend's QPS grows with worker count past the thread backend's;
single-core hosts document the IPC overhead instead (see `cores` in the
JSON).
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.ann import BruteForceIndex, IVFIndex, ProcessShardedIndex, ShardedIndex

from _bench_utils import emit_bench_json


def _make_index(backend: str, num_workers: int):
    if num_workers == 1:
        return BruteForceIndex()
    if backend == "process":
        return ProcessShardedIndex(num_shards=num_workers)
    return ShardedIndex(num_shards=num_workers, num_threads=num_workers)


def _close(index) -> None:
    closer = getattr(index, "close", None)
    if closer is not None:
        closer()


def bench_shard_counts(
    num_rows: int,
    dim: int,
    batch_size: int,
    num_batches: int,
    k: int,
    shard_counts: List[int],
    seed: int = 11,
) -> List[Dict]:
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(num_rows, dim))
    query_batches = [rng.normal(size=(batch_size, dim)) for _ in range(num_batches)]
    total_queries = batch_size * num_batches

    rows: List[Dict] = []
    baseline_qps = None
    for num_shards in shard_counts:
        if num_shards == 1:
            index = BruteForceIndex().build(vectors)
        else:
            index = ShardedIndex(num_shards=num_shards, num_threads=num_shards).build(vectors)
        index.search_batch(query_batches[0], k)  # warm up threads/BLAS
        latencies_ms = []
        start = time.perf_counter()
        for batch in query_batches:
            batch_start = time.perf_counter()
            index.search_batch(batch, k)
            latencies_ms.append((time.perf_counter() - batch_start) * 1000.0)
        elapsed = time.perf_counter() - start
        if num_shards > 1:
            index.close()
        qps = total_queries / elapsed
        if baseline_qps is None:
            baseline_qps = qps
        rows.append(
            {
                "shards": num_shards,
                "qps": qps,
                "p99_batch_ms": float(np.percentile(latencies_ms, 99)),
                "speedup": qps / baseline_qps,
            }
        )
    return rows


def bench_backend_scaling(
    num_rows: int,
    dim: int,
    batch_size: int,
    num_batches: int,
    k: int,
    worker_counts: List[int],
    backends: List[str],
    seed: int = 11,
) -> List[Dict]:
    """QPS/p99 of the thread vs process shard backends at each worker count.

    The unsharded brute-force baseline (one row, labeled ``"unsharded"``)
    always runs first so every ``speedup`` is anchored to it — even when the
    caller's ``--workers`` list omits 1; every other row is one
    (backend, workers) combination over the identical query stream.
    """

    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(num_rows, dim))
    query_batches = [rng.normal(size=(batch_size, dim)) for _ in range(num_batches)]
    total_queries = batch_size * num_batches

    sweep: List[Tuple[str, int]] = [("unsharded", 1)]
    for backend in backends:
        sweep.extend((backend, workers) for workers in worker_counts if workers > 1)

    rows: List[Dict] = []
    baseline_qps = None
    for backend, workers in sweep:
        index = _make_index(backend, workers)
        index.build(vectors)
        index.search_batch(query_batches[0], k)  # warm up workers/BLAS
        latencies_ms = []
        start = time.perf_counter()
        for batch in query_batches:
            batch_start = time.perf_counter()
            index.search_batch(batch, k)
            latencies_ms.append((time.perf_counter() - batch_start) * 1000.0)
        elapsed = time.perf_counter() - start
        _close(index)
        qps = total_queries / elapsed
        if baseline_qps is None:
            baseline_qps = qps
        rows.append(
            {
                "backend": backend,
                "workers": workers,
                "qps": qps,
                "p99_batch_ms": float(np.percentile(latencies_ms, 99)),
                "speedup": qps / baseline_qps,
            }
        )
    return rows


def bench_ingest_mix(
    num_rows: int,
    dim: int,
    batch_size: int,
    num_batches: int,
    k: int,
    workers: int,
    backends: List[str],
    update_rows: int = 64,
    add_rows: int = 16,
    seed: int = 13,
) -> List[Dict]:
    """Ingest-while-serving: row updates + streaming adds interleaved with search.

    Every round replaces ``update_rows`` random rows, appends ``add_rows``
    fresh ones (exercising the shared-memory growth/re-attach path on the
    process backend), then answers one query batch — the mixed read/write
    pattern a live server actually runs.  Reports serving QPS/p99 under the
    mix plus the mutation throughput.
    """

    base_rng = np.random.default_rng(seed)
    vectors = base_rng.normal(size=(num_rows, dim))
    query_batches = [base_rng.normal(size=(batch_size, dim)) for _ in range(num_batches)]

    rows: List[Dict] = []
    for backend in backends:
        # Fresh, identically seeded stream per backend: both backends must
        # see the exact same mutation workload for the rows to be comparable.
        rng = np.random.default_rng(seed + 1)
        index = _make_index(backend, workers)
        index.build(vectors)
        index.search_batch(query_batches[0], k)  # warm up workers/BLAS
        search_ms: List[float] = []
        mutation_events = 0
        start = time.perf_counter()
        for round_number, batch in enumerate(query_batches):
            positions = rng.integers(0, index.size, size=update_rows)
            index.update_batch(positions, rng.normal(size=(update_rows, dim)))
            index.add(rng.normal(size=(add_rows, dim)))
            mutation_events += update_rows + add_rows
            search_start = time.perf_counter()
            index.search_batch(batch, k)
            search_ms.append((time.perf_counter() - search_start) * 1000.0)
        elapsed = time.perf_counter() - start
        _close(index)
        rows.append(
            {
                "backend": backend,
                "workers": workers,
                "qps_under_mix": batch_size * num_batches / elapsed,
                "p99_search_ms": float(np.percentile(search_ms, 99)),
                "mutations_per_s": mutation_events / elapsed,
            }
        )
    return rows


def bench_retrain_recall(
    num_rows: int,
    dim: int,
    num_cells: int,
    n_probe: int,
    skew_factor: int,
    num_queries: int = 50,
    k: int = 10,
    seed: int = 17,
) -> Dict:
    """Skew an IVF index with drifted adds; recall/imbalance before vs after retrain."""

    rng = np.random.default_rng(seed)
    base = rng.normal(size=(num_rows, dim))
    drift = rng.normal(size=(skew_factor * num_rows, dim))
    drift[:, 0] += 4.0  # the stream moved to a region the centroids never saw

    ivf = IVFIndex(num_cells=num_cells, n_probe=n_probe, rng=np.random.default_rng(seed)).build(base)
    ivf.add(drift)
    all_vectors = np.concatenate([base, drift])
    exact = BruteForceIndex().build(all_vectors)
    queries = rng.normal(size=(num_queries, dim))
    queries[num_queries // 2 :, 0] += 4.0  # queries follow the drifted traffic

    def recall_at_k(index) -> float:
        hits = 0
        exact_results = exact.search_batch(queries, k)
        approx_results = index.search_batch(queries, k)
        for (true_ids, _), (got_ids, _) in zip(exact_results, approx_results):
            hits += len(set(true_ids.tolist()) & set(got_ids.tolist()))
        return hits / (len(queries) * k)

    report = {
        "imbalance_before": ivf.imbalance(),
        "recall_before": recall_at_k(ivf),
    }
    start = time.perf_counter()
    ivf.retrain()
    report["retrain_ms"] = (time.perf_counter() - start) * 1000.0
    report["imbalance_after"] = ivf.imbalance()
    report["recall_after"] = recall_at_k(ivf)
    return report


def format_scaling(rows: List[Dict], num_rows: int, batch_size: int) -> str:
    # The speedup baseline is the first swept shard count, which need not be 1.
    baseline_label = f"vs {rows[0]['shards']} shard" + ("s" if rows[0]["shards"] != 1 else "")
    header = f"{'shards':>7} {'QPS':>12} {'p99 batch (ms)':>16} {baseline_label:>12}"
    lines = [f"shard scaling: N={num_rows}, batch={batch_size}, threaded fan-out", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['shards']:>7} {row['qps']:>12.0f} {row['p99_batch_ms']:>16.2f} {row['speedup']:>11.2f}x"
        )
    return "\n".join(lines)


def format_backend_scaling(rows: List[Dict], num_rows: int, batch_size: int) -> str:
    header = f"{'backend':>10} {'workers':>8} {'QPS':>12} {'p99 batch (ms)':>16} {'speedup':>9}"
    lines = [
        f"backend scaling: N={num_rows}, batch={batch_size}, {os.cpu_count()} cores",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:>10} {row['workers']:>8} {row['qps']:>12.0f} "
            f"{row['p99_batch_ms']:>16.2f} {row['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def format_ingest_mix(rows: List[Dict]) -> str:
    header = f"{'backend':>10} {'workers':>8} {'QPS (mix)':>12} {'p99 search (ms)':>17} {'mutations/s':>13}"
    lines = ["ingest-while-serving mix:", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['backend']:>10} {row['workers']:>8} {row['qps_under_mix']:>12.0f} "
            f"{row['p99_search_ms']:>17.2f} {row['mutations_per_s']:>13.0f}"
        )
    return "\n".join(lines)


def format_retrain(report: Dict) -> str:
    return "\n".join(
        [
            "IVF maintenance after skewed streaming adds:",
            f"  imbalance (max/mean cell size): {report['imbalance_before']:.2f} -> {report['imbalance_after']:.2f}",
            f"  recall@10 vs brute force:       {report['recall_before']:.3f} -> {report['recall_after']:.3f}",
            f"  retrain time:                   {report['retrain_ms']:.1f} ms",
        ]
    )


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-rows", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--num-batches", type=int, default=20)
    parser.add_argument("--k", type=int, default=100)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep (1 = the unsharded brute-force baseline)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts for the thread-vs-process backend sweep "
             "(the unsharded baseline always runs, anchoring the speedups)",
    )
    parser.add_argument(
        "--backends", nargs="+", default=["thread", "process"],
        choices=["thread", "process"],
        help="shard backends to compare in the backend sweep and ingest mix",
    )
    parser.add_argument(
        "--mix-workers", type=int, default=2,
        help="worker count used by the ingest-while-serving mix",
    )
    parser.add_argument("--ivf-rows", type=int, default=4000)
    parser.add_argument("--num-cells", type=int, default=32)
    parser.add_argument("--n-probe", type=int, default=4)
    parser.add_argument(
        "--skew-factor", type=int, default=3,
        help="drifted adds as a multiple of the build size (3 => region holds 4x its share)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_rows, args.dim, args.batch, args.num_batches = 2000, 16, 64, 3
        args.shards, args.k = [1, 2], 20
        args.workers = [1, 2]
        args.ivf_rows, args.num_cells = 600, 8

    scaling = bench_shard_counts(
        args.num_rows, args.dim, args.batch, args.num_batches, args.k, args.shards
    )
    print(format_scaling(scaling, args.num_rows, args.batch))
    print()
    backend_scaling = bench_backend_scaling(
        args.num_rows, args.dim, args.batch, args.num_batches, args.k,
        args.workers, args.backends,
    )
    print(format_backend_scaling(backend_scaling, args.num_rows, args.batch))
    print()
    ingest_mix = bench_ingest_mix(
        args.num_rows, args.dim, args.batch, args.num_batches, args.k,
        args.mix_workers, args.backends,
    )
    print(format_ingest_mix(ingest_mix))
    print()
    retrain = bench_retrain_recall(
        args.ivf_rows, args.dim, args.num_cells, args.n_probe, args.skew_factor
    )
    print(format_retrain(retrain))
    report = {"scaling": scaling, "retrain": retrain}
    emit_bench_json("shard_scaling", report)
    process_report = {
        "cores": os.cpu_count(),
        "backend_scaling": backend_scaling,
        "ingest_mix": ingest_mix,
    }
    emit_bench_json("process_shard_scaling", process_report)
    report["process"] = process_report
    return report


if __name__ == "__main__":
    main()
