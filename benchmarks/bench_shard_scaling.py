"""Scatter-gather shard scaling (QPS, p99) + IVF retrain recall maintenance.

Two production questions, one bench:

1. **Does sharding the user index scale serving?**  ``ShardedIndex``
   partitions N rows across S shards and fans per-shard top-k searches out
   over a thread pool (NumPy matmuls release the GIL).  This part streams
   batched queries through S in {1, 2, 4, ...} and reports QPS and the p99
   per-batch latency.  Results are bit-identical to the unsharded index, so
   the only thing changing is where the work runs.
2. **Does periodic re-clustering repair a skewed IVF index?**  Streaming
   ``add`` assigns rows to frozen centroids, so a drifting stream piles rows
   into a few cells.  This part skews an ``IVFIndex`` with drifted adds, then
   reports cell imbalance (max/mean) and recall@10 vs brute force before and
   after ``retrain()``.

Run it directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --num-rows 50000 --shards 1 2 4 8
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke   # tiny CI configuration

The acceptance bar for the sharded-serving PR: batched QPS grows with shard
count >= 2 under the threaded executor at N >= 20k rows.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

import numpy as np

from repro.ann import BruteForceIndex, IVFIndex, ShardedIndex

from _bench_utils import emit_bench_json


def bench_shard_counts(
    num_rows: int,
    dim: int,
    batch_size: int,
    num_batches: int,
    k: int,
    shard_counts: List[int],
    seed: int = 11,
) -> List[Dict]:
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(num_rows, dim))
    query_batches = [rng.normal(size=(batch_size, dim)) for _ in range(num_batches)]
    total_queries = batch_size * num_batches

    rows: List[Dict] = []
    baseline_qps = None
    for num_shards in shard_counts:
        if num_shards == 1:
            index = BruteForceIndex().build(vectors)
        else:
            index = ShardedIndex(num_shards=num_shards, num_threads=num_shards).build(vectors)
        index.search_batch(query_batches[0], k)  # warm up threads/BLAS
        latencies_ms = []
        start = time.perf_counter()
        for batch in query_batches:
            batch_start = time.perf_counter()
            index.search_batch(batch, k)
            latencies_ms.append((time.perf_counter() - batch_start) * 1000.0)
        elapsed = time.perf_counter() - start
        if num_shards > 1:
            index.close()
        qps = total_queries / elapsed
        if baseline_qps is None:
            baseline_qps = qps
        rows.append(
            {
                "shards": num_shards,
                "qps": qps,
                "p99_batch_ms": float(np.percentile(latencies_ms, 99)),
                "speedup": qps / baseline_qps,
            }
        )
    return rows


def bench_retrain_recall(
    num_rows: int,
    dim: int,
    num_cells: int,
    n_probe: int,
    skew_factor: int,
    num_queries: int = 50,
    k: int = 10,
    seed: int = 17,
) -> Dict:
    """Skew an IVF index with drifted adds; recall/imbalance before vs after retrain."""

    rng = np.random.default_rng(seed)
    base = rng.normal(size=(num_rows, dim))
    drift = rng.normal(size=(skew_factor * num_rows, dim))
    drift[:, 0] += 4.0  # the stream moved to a region the centroids never saw

    ivf = IVFIndex(num_cells=num_cells, n_probe=n_probe, rng=np.random.default_rng(seed)).build(base)
    ivf.add(drift)
    all_vectors = np.concatenate([base, drift])
    exact = BruteForceIndex().build(all_vectors)
    queries = rng.normal(size=(num_queries, dim))
    queries[num_queries // 2 :, 0] += 4.0  # queries follow the drifted traffic

    def recall_at_k(index) -> float:
        hits = 0
        exact_results = exact.search_batch(queries, k)
        approx_results = index.search_batch(queries, k)
        for (true_ids, _), (got_ids, _) in zip(exact_results, approx_results):
            hits += len(set(true_ids.tolist()) & set(got_ids.tolist()))
        return hits / (len(queries) * k)

    report = {
        "imbalance_before": ivf.imbalance(),
        "recall_before": recall_at_k(ivf),
    }
    start = time.perf_counter()
    ivf.retrain()
    report["retrain_ms"] = (time.perf_counter() - start) * 1000.0
    report["imbalance_after"] = ivf.imbalance()
    report["recall_after"] = recall_at_k(ivf)
    return report


def format_scaling(rows: List[Dict], num_rows: int, batch_size: int) -> str:
    # The speedup baseline is the first swept shard count, which need not be 1.
    baseline_label = f"vs {rows[0]['shards']} shard" + ("s" if rows[0]["shards"] != 1 else "")
    header = f"{'shards':>7} {'QPS':>12} {'p99 batch (ms)':>16} {baseline_label:>12}"
    lines = [f"shard scaling: N={num_rows}, batch={batch_size}, threaded fan-out", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['shards']:>7} {row['qps']:>12.0f} {row['p99_batch_ms']:>16.2f} {row['speedup']:>11.2f}x"
        )
    return "\n".join(lines)


def format_retrain(report: Dict) -> str:
    return "\n".join(
        [
            "IVF maintenance after skewed streaming adds:",
            f"  imbalance (max/mean cell size): {report['imbalance_before']:.2f} -> {report['imbalance_after']:.2f}",
            f"  recall@10 vs brute force:       {report['recall_before']:.3f} -> {report['recall_after']:.3f}",
            f"  retrain time:                   {report['retrain_ms']:.1f} ms",
        ]
    )


def main() -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-rows", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--batch", type=int, default=256)
    parser.add_argument("--num-batches", type=int, default=20)
    parser.add_argument("--k", type=int, default=100)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep (1 = the unsharded brute-force baseline)",
    )
    parser.add_argument("--ivf-rows", type=int, default=4000)
    parser.add_argument("--num-cells", type=int, default=32)
    parser.add_argument("--n-probe", type=int, default=4)
    parser.add_argument(
        "--skew-factor", type=int, default=3,
        help="drifted adds as a multiple of the build size (3 => region holds 4x its share)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration: just proves the bench runs end to end",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_rows, args.dim, args.batch, args.num_batches = 2000, 16, 64, 3
        args.shards, args.k = [1, 2], 20
        args.ivf_rows, args.num_cells = 600, 8

    scaling = bench_shard_counts(
        args.num_rows, args.dim, args.batch, args.num_batches, args.k, args.shards
    )
    print(format_scaling(scaling, args.num_rows, args.batch))
    print()
    retrain = bench_retrain_recall(
        args.ivf_rows, args.dim, args.num_cells, args.n_probe, args.skew_factor
    )
    print(format_retrain(retrain))
    report = {"scaling": scaling, "retrain": retrain}
    emit_bench_json("shard_scaling", report)
    return report


if __name__ == "__main__":
    main()
