"""Developer tooling for the repo (not shipped with :mod:`repro`)."""
