"""CLI for repolint: ``python -m tools.repolint <paths> [options]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .engine import lint_paths
from .findings import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description="AST-based invariant linter for the serving stack",
    )
    parser.add_argument("paths", nargs="*", help="python files or directories")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Importing rules populates the registry for --list-rules too.
    from . import rules  # noqa: F401

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name:20s} {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repolint: error: no paths given", file=sys.stderr)
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    try:
        findings = lint_paths(args.paths, select)
    except (FileNotFoundError, KeyError) as exc:
        print(f"repolint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repolint: parse error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"repolint: {len(findings)} finding(s)"
            if findings
            else "repolint: clean"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
