"""repolint engine: module loading, suppression comments, class index, rule driver.

The engine is deliberately *whole-run* scoped: rules receive every parsed
module plus a cross-module class index, because the invariants they encode
span files (``ProcessShardedIndex`` lives two modules away from the
``SharedMatrix`` it owns, and "is this an index class?" is a question about
the transitive base-class chain).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import Finding, iter_rules

_DISABLE_RE = re.compile(
    r"#\s*repolint:\s*(disable-file|disable)\s*=\s*([A-Za-z0-9*,\s]+?)\s*(?:--|$)"
)


def _parse_disable_codes(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


class Module:
    """One parsed source file plus everything rules need to reason about it."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of rule codes disabled on that line ("*" = all)
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: rule codes disabled for the whole file
        self.file_suppressions: Set[str] = set()
        self._collect_suppressions()
        #: child AST node -> parent AST node, for ancestor walks
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    # ------------------------------------------------------------------ #
    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if not match:
                    continue
                codes = _parse_disable_codes(match.group(2))
                if match.group(1) == "disable-file":
                    self.file_suppressions |= codes
                else:
                    line = tok.start[0]
                    self.line_suppressions.setdefault(line, set()).update(codes)
        except tokenize.TokenError:  # pragma: no cover — ast.parse caught it first
            pass

    # ------------------------------------------------------------------ #
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def is_suppressed(self, code: str, node: ast.AST) -> bool:
        """Whether ``code`` is disabled at ``node``.

        A ``# repolint: disable=RLxxx`` comment suppresses on its own line,
        on the line directly above the offending statement, or — when placed
        on a ``def``/``class`` line — throughout that definition's body.
        """

        if code in self.file_suppressions or "*" in self.file_suppressions:
            return True
        line = getattr(node, "lineno", None)
        if line is None:
            return False
        for candidate in (line, line - 1):
            codes = self.line_suppressions.get(candidate, set())
            if code in codes or "*" in codes:
                return True
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                codes = self.line_suppressions.get(anc.lineno, set())
                if code in codes or "*" in codes:
                    return True
        return False


@dataclass
class ClassInfo:
    """A class definition plus where it came from."""

    name: str
    module: "Module"
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)

    def methods(self) -> Dict[str, ast.FunctionDef]:
        found: Dict[str, ast.FunctionDef] = {}
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.setdefault(stmt.name, stmt)  # type: ignore[arg-type]
        return found


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] style bases
        return _base_name(expr.value)
    return None


class ClassIndex:
    """Cross-module class table with transitive base-chain resolution by name.

    Name-based resolution (rather than import-graph resolution) is the
    pragmatic choice for a repo-local linter: class names here are unique
    enough, and a false merge only ever makes rules *apply more broadly*.
    """

    def __init__(self, modules: Sequence[Module]) -> None:
        self.by_name: Dict[str, List[ClassInfo]] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    bases = [b for b in (_base_name(e) for e in node.bases) if b]
                    info = ClassInfo(node.name, module, node, bases)
                    self.by_name.setdefault(node.name, []).append(info)

    def mro_infos(self, info: ClassInfo) -> List[ClassInfo]:
        """``info`` plus every transitively reachable base-class definition."""

        seen: Set[Tuple[str, int]] = set()
        order: List[ClassInfo] = []
        stack = [info]
        while stack:
            current = stack.pop()
            key = (current.name, id(current.node))
            if key in seen:
                continue
            seen.add(key)
            order.append(current)
            for base in current.base_names:
                stack.extend(self.by_name.get(base, []))
        return order

    def find_method(self, info: ClassInfo, name: str) -> Optional[ast.FunctionDef]:
        for cls in self.mro_infos(info):
            method = cls.methods().get(name)
            if method is not None:
                return method
        return None

    def assigns_self_attr(self, info: ClassInfo, attr: str) -> bool:
        """Whether the class (or a base) ever writes ``self.<attr>``."""

        for cls in self.mro_infos(info):
            for node in ast.walk(cls.node):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False


class LintRun:
    """All modules of one invocation plus the shared class index."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules = list(modules)
        self.classes = ClassIndex(self.modules)

    def run(self, select: Iterable[str] | None = None) -> List[Finding]:
        # Importing registers the rules; deferred to break the import cycle.
        from . import rules  # noqa: F401

        findings: List[Finding] = []
        node_of: Dict[Finding, ast.AST] = {}
        for module in self.modules:
            for rule_obj in iter_rules(select):
                for finding, node in rule_obj.check(module, self):  # type: ignore[misc]
                    if not module.is_suppressed(finding.code, node):
                        findings.append(finding)
                        node_of[finding] = node
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings


# ---------------------------------------------------------------------- #
# public entry points
# ---------------------------------------------------------------------- #
def collect_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return files


def lint_sources(
    sources: Dict[str, str], select: Iterable[str] | None = None
) -> List[Finding]:
    """Lint in-memory ``{path: source}`` pairs (the unit-test entry point)."""

    modules = [Module(path, text) for path, text in sorted(sources.items())]
    return LintRun(modules).run(select)


def lint_paths(
    paths: Sequence[str], select: Iterable[str] | None = None
) -> List[Finding]:
    sources = {str(p): p.read_text(encoding="utf-8") for p in collect_files(paths)}
    return lint_sources(sources, select)
