"""The eight serving-stack invariant rules (RL001–RL008).

Each rule encodes one convention the serving stack depends on for
correctness; the module docstring of :mod:`tools.repolint` and the README's
"Static analysis & invariants" section give the history.  Checks yield
``(Finding, node)`` pairs — the node anchors suppression-comment lookup.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from .cfg import clean_unbumped_exits
from .engine import ClassInfo, LintRun, Module
from .findings import Finding, rule

Hit = Tuple[Finding, ast.AST]

# ---------------------------------------------------------------------- #
# shared AST helpers
# ---------------------------------------------------------------------- #


def _root_name(expr: ast.expr) -> Optional[str]:
    """Base ``Name`` id of an attribute/subscript chain (``a.b[0].c`` -> ``a``)."""

    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _is_self_attr(expr: ast.expr, attr: Optional[str] = None) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and (attr is None or expr.attr == attr)
    )


def _flat_targets(targets: List[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flat_targets(list(target.elts))
        elif isinstance(target, ast.Starred):
            yield target.value
        else:
            yield target


def _assign_targets(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(_flat_targets(stmt.targets))
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


def _enclosing_statement(module: Module, node: ast.AST) -> Optional[ast.stmt]:
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = module.parents.get(current)
    return current


def _src(expr: ast.AST) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover — unparse covers all real nodes
        return ""


# ---------------------------------------------------------------------- #
# RL001 — epoch-bump
# ---------------------------------------------------------------------- #

#: Methods on an index class that (directly or transitively) write rows.
INDEX_MUTATORS = ("build", "add", "update", "update_batch", "retrain")

#: Method names whose *call on a self attribute* counts as writing rows.
_MUTATING_CALLS = {
    "append",
    "extend",
    "insert",
    "remove",
    "clear",
    "reset",
    "set_rows",
    "fill",
    "update",
    "pop",
}


def _stmt_bumps_epoch(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if any(_is_self_attr(t, "epoch") for t in targets):
                return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in INDEX_MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                return True  # delegation to a method that itself must bump
    return False


def _stmt_mutates_index(stmt: ast.stmt) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in _flat_targets(list(targets)):
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _root_name(target) == "self" and not _is_self_attr(
                        target, "epoch"
                    ):
                        return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_CALLS
                and _root_name(func.value) == "self"
            ):
                return True
    return False


@rule(
    "RL001",
    "epoch-bump",
    "index-mutating methods must bump self.epoch on every non-raising path",
)
def check_epoch_bump(module: Module, run: LintRun) -> Iterator[Hit]:
    for infos in run.classes.by_name.values():
        for info in infos:
            if info.module is not module:
                continue
            if not run.classes.assigns_self_attr(info, "epoch"):
                continue  # not an index class
            for method_name in INDEX_MUTATORS:
                method = info.methods().get(method_name)
                if method is None:
                    continue
                offenders = clean_unbumped_exits(
                    method.body, _stmt_bumps_epoch, _stmt_mutates_index
                )
                for path_exit in offenders:
                    yield (
                        Finding(
                            path=module.path,
                            line=path_exit.line,
                            col=method.col_offset,
                            code="RL001",
                            message=(
                                f"{info.name}.{method_name} has a non-raising "
                                "path that writes index state without bumping "
                                "self.epoch"
                            ),
                            fixit=(
                                "bump self.epoch before every clean exit (or "
                                "delegate to a method that does); stale-epoch "
                                "caches serve old rows forever"
                            ),
                        ),
                        method,
                    )


# ---------------------------------------------------------------------- #
# RL002 — shm-lifecycle
# ---------------------------------------------------------------------- #

_SHM_CONSTRUCTORS = {"SharedMemory", "SharedMatrix"}


def _is_shm_acquisition(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _SHM_CONSTRUCTORS:
        return True
    if isinstance(func, ast.Attribute):
        if func.attr in _SHM_CONSTRUCTORS:  # shared_memory.SharedMemory(...)
            return True
        if func.attr == "attach" and isinstance(func.value, ast.Name):
            return func.value.id in _SHM_CONSTRUCTORS  # SharedMatrix.attach(...)
    return False


def _released_in_finally(module: Module, stmt: ast.stmt, var: str) -> bool:
    # The idiomatic shape is acquire-then-guard — the try/finally is usually a
    # *sibling after* the assignment, not an ancestor — so search every
    # try/finally in the enclosing scope for a close()/unlink() on the var.
    scope: ast.AST = module.enclosing_function(stmt) or module.tree
    for anc in ast.walk(scope):
        if isinstance(anc, ast.Try) and anc.finalbody:
            for final_stmt in anc.finalbody:
                for node in ast.walk(final_stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("close", "unlink")
                        and _root_name(node.func.value) == var
                    ):
                        return True
    return False


@rule(
    "RL002",
    "shm-lifecycle",
    "SharedMemory/SharedMatrix acquisitions must reach close()/unlink()",
)
def check_shm_lifecycle(module: Module, run: LintRun) -> Iterator[Hit]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and _is_shm_acquisition(node)):
            continue
        if any(isinstance(anc, ast.withitem) for anc in module.ancestors(node)):
            continue  # context manager releases on exit
        stmt = _enclosing_statement(module, node)
        if stmt is None:
            continue
        if isinstance(stmt, ast.Return):
            continue  # ownership transferred to the caller
        ok = False
        detail = "segment is acquired and never released"
        targets = _assign_targets(stmt)
        for target in targets:
            if (
                isinstance(target, (ast.Attribute, ast.Subscript))
                and _root_name(target) == "self"
            ):
                cls = module.enclosing_class(stmt)
                owner: Optional[ClassInfo] = None
                if cls is not None:
                    for info in run.classes.by_name.get(cls.name, []):
                        if info.node is cls:
                            owner = info
                if owner is not None and run.classes.find_method(owner, "close"):
                    ok = True
                else:
                    detail = (
                        "segment is stored on self but the owning class "
                        "defines no close()"
                    )
            elif isinstance(target, ast.Name):
                if _released_in_finally(module, stmt, target.id):
                    ok = True
                else:
                    detail = (
                        f"local '{target.id}' holds the segment with no "
                        "try/finally close()/unlink()"
                    )
        if not ok:
            yield (
                Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code="RL002",
                    message=f"unreleased shared-memory acquisition: {detail}",
                    fixit=(
                        "wrap in try/finally or `with`, return it to transfer "
                        "ownership, or store it on a class that close()s it"
                    ),
                ),
                node,
            )


# ---------------------------------------------------------------------- #
# RL003 — batch-of-one
# ---------------------------------------------------------------------- #

#: single-item wrapper -> its batch canonical
BATCH_WRAPPERS = {
    "search": "search_batch",
    "observe": "observe_batch",
    "update_user": "update_users",
    "score_items": "score_items_batch",
    "recommend": "recommend_batch",
}

_WRAPPER_FORBIDDEN = (ast.For, ast.AsyncFor, ast.While, ast.Try, ast.With)


def _self_method_calls(func_node: ast.FunctionDef) -> Set[str]:
    calls: Set[str] = set()
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def _held_delegate_calls(func_node: ast.FunctionDef) -> Set[Tuple[str, str]]:
    """Calls of the form ``self.<held>.<method>(...)`` as ``(held, method)`` pairs."""

    calls: Set[Tuple[str, str]] = set()
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            calls.add((node.func.value.attr, node.func.attr))
    return calls


@rule(
    "RL003",
    "batch-of-one",
    "single-item wrappers may only delegate to their batch canonical",
)
def check_batch_of_one(module: Module, run: LintRun) -> Iterator[Hit]:
    for infos in run.classes.by_name.values():
        for info in infos:
            if info.module is not module:
                continue
            for wrapper_name, canonical in BATCH_WRAPPERS.items():
                wrapper = info.methods().get(wrapper_name)
                if wrapper is None:
                    continue
                calls = _self_method_calls(wrapper)
                # The rule applies when the wrapper delegates, or when the
                # class itself defines both halves of the pair.  The offline
                # model zoo runs the *inverse* pattern — an abstract
                # ``score_items`` with a default ``score_items_batch`` that
                # loops over it — which is a fallback, not a wrapper, so a
                # canonical that calls back into the single method exempts
                # the pair.
                direct_canonical = info.methods().get(canonical)
                if canonical not in calls:
                    if direct_canonical is None:
                        continue  # not a batch-of-one pair on this class
                    if wrapper_name in _self_method_calls(direct_canonical):
                        continue  # batch derived from single (fallback dir.)
                problems: List[str] = []
                if canonical not in calls:
                    problems.append(f"never calls self.{canonical}")
                extra_calls = calls - {canonical}
                if extra_calls:
                    problems.append(
                        "calls other self methods: "
                        + ", ".join(sorted(extra_calls))
                    )
                for stmt in ast.walk(wrapper):
                    if isinstance(stmt, _WRAPPER_FORBIDDEN):
                        problems.append(
                            f"contains a {type(stmt).__name__.lower()} block"
                        )
                        break
                if problems:
                    yield (
                        Finding(
                            path=module.path,
                            line=wrapper.lineno,
                            col=wrapper.col_offset,
                            code="RL003",
                            message=(
                                f"{info.name}.{wrapper_name} is not a pure "
                                f"batch-of-one wrapper ({'; '.join(problems)})"
                            ),
                            fixit=(
                                f"reduce the body to delegation into "
                                f"self.{canonical} so the single and batch "
                                "paths cannot drift"
                            ),
                        ),
                        wrapper,
                    )
            # Front-end clause: a class that routes an operation through a
            # *held* object's batch canonical (``self.server.observe_batch``,
            # ``self.sccf.score_items_batch``, ...) must never also call that
            # object's single-item wrapper.  A per-request helper that
            # "simplifies" into the single path silently forfeits coalescing
            # for every request it serves — the front-end's helpers must stay
            # batch-of-one consumers of the window machinery.
            held_calls = {
                name: _held_delegate_calls(fn) for name, fn in info.methods().items()
            }
            batch_held: Set[Tuple[str, str, str]] = set()
            for calls_pairs in held_calls.values():
                for held, method in calls_pairs:
                    for wrapper_name, canonical in BATCH_WRAPPERS.items():
                        if method == canonical:
                            batch_held.add((held, wrapper_name, canonical))
            for name, fn in info.methods().items():
                for held, wrapper_name, canonical in sorted(batch_held):
                    if (held, wrapper_name) in held_calls[name]:
                        yield (
                            Finding(
                                path=module.path,
                                line=fn.lineno,
                                col=fn.col_offset,
                                code="RL003",
                                message=(
                                    f"{info.name}.{name} calls "
                                    f"self.{held}.{wrapper_name} although the "
                                    f"class routes through "
                                    f"self.{held}.{canonical} — single-path "
                                    "bypass of the batched window"
                                ),
                                fixit=(
                                    f"call self.{held}.{canonical} with a "
                                    "batch of one instead, so every request "
                                    "stays on the coalesced path"
                                ),
                            ),
                            fn,
                        )


# ---------------------------------------------------------------------- #
# RL004 — degraded-not-cached
# ---------------------------------------------------------------------- #

_CACHE_RECEIVER_RE = re.compile(
    r"cache|layer|recommendations|neighbors|scores|embeddings", re.I
)
_GUARD_RE = re.compile(r"degraded|cacheable", re.I)


def _guard_mentions(
    module: Module, func: Optional[ast.AST], test: ast.expr
) -> bool:
    if _GUARD_RE.search(_src(test)):
        return True
    if func is None:
        return False
    names = {n.id for n in ast.walk(test) if isinstance(n, ast.Name)}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in _flat_targets(list(node.targets)):
                if isinstance(target, ast.Name) and target.id in names:
                    if _GUARD_RE.search(_src(node.value)):
                        return True
    return False


@rule(
    "RL004",
    "degraded-not-cached",
    "cache writes must be dominated by a cacheable/degraded guard",
)
def check_degraded_not_cached(module: Module, run: LintRun) -> Iterator[Hit]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # serve_batch(...) without an explicit cacheable= decision
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if callee == "serve_batch":
            if not any(kw.arg == "cacheable" for kw in node.keywords):
                yield (
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RL004",
                        message=(
                            "serve_batch call without cacheable=; degraded "
                            "results would be cached"
                        ),
                        fixit=(
                            "pass cacheable=<guard> capturing whether this "
                            "batch may be degraded (PR 6 invariant)"
                        ),
                    ),
                    node,
                )
            continue
        # <cache layer>.put(...) outside a degraded/cacheable guard
        if callee == "put" and isinstance(func, ast.Attribute):
            receiver_src = _src(func.value)
            if not _CACHE_RECEIVER_RE.search(receiver_src):
                continue
            enclosing = module.enclosing_function(node)
            guarded = False
            for anc in module.ancestors(node):
                if isinstance(anc, ast.If) and _guard_mentions(
                    module, enclosing, anc.test
                ):
                    guarded = True
                    break
            if not guarded:
                yield (
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RL004",
                        message=(
                            f"unguarded cache write {receiver_src}.put(...); "
                            "a degraded result could be stored"
                        ),
                        fixit=(
                            "dominate the put with an `if not degraded:` / "
                            "cacheable check, or route it through "
                            "serve_batch(cacheable=...)"
                        ),
                    ),
                    node,
                )


# ---------------------------------------------------------------------- #
# RL005 — unbounded-telemetry
# ---------------------------------------------------------------------- #

_TELEMETRY_RE = re.compile(r"latenc|timing|metric|telemetr|report|recent|sample", re.I)


def _unbounded_accumulator(value: ast.expr) -> bool:
    if isinstance(value, ast.List):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == "list":
            return True
        if name == "deque":
            bounded = len(value.args) >= 2 or any(
                kw.arg == "maxlen" for kw in value.keywords
            )
            return not bounded
    return False


@rule(
    "RL005",
    "unbounded-telemetry",
    "telemetry accumulators must be bounded (deque(maxlen=...))",
)
def check_unbounded_telemetry(module: Module, run: LintRun) -> Iterator[Hit]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if node.value is None:
            continue
        for target in _assign_targets(node):
            if not isinstance(target, ast.Attribute):
                continue
            if not _is_self_attr(target):
                continue
            if not _TELEMETRY_RE.search(target.attr):
                continue
            if _unbounded_accumulator(node.value):
                yield (
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RL005",
                        message=(
                            f"telemetry accumulator self.{target.attr} is "
                            "unbounded; hot-path appends grow it forever"
                        ),
                        fixit=(
                            "use collections.deque(maxlen=...) (or another "
                            "windowed structure) so memory stays O(window)"
                        ),
                    ),
                    node,
                )


# ---------------------------------------------------------------------- #
# RL006 — worker-protocol
# ---------------------------------------------------------------------- #


def _names_base_exception(expr: Optional[ast.expr]) -> bool:
    if expr is None:
        return True  # bare except:
    if isinstance(expr, ast.Name):
        return expr.id == "BaseException"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "BaseException"
    if isinstance(expr, ast.Tuple):
        return any(_names_base_exception(e) for e in expr.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            callee = _src(node.func)
            if callee in ("os._exit", "sys.exit"):
                return True
    return False


@rule(
    "RL006",
    "worker-protocol",
    "pipe recv must be poll/timeout-guarded; except must not swallow BaseException",
)
def check_worker_protocol(module: Module, run: LintRun) -> Iterator[Hit]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "recv"
        ):
            enclosing = module.enclosing_function(node)
            has_poll = enclosing is not None and any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "poll"
                for sub in ast.walk(enclosing)
            )
            if not has_poll:
                receiver = _src(node.func.value)
                yield (
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RL006",
                        message=(
                            f"{receiver}.recv() with no poll()/timeout in the "
                            "same function; a dead worker blocks forever"
                        ),
                        fixit=(
                            "guard the recv behind conn.poll(timeout) so the "
                            "supervisor's deadline machinery stays in control"
                        ),
                    ),
                    node,
                )
        if isinstance(node, ast.ExceptHandler) and _names_base_exception(node.type):
            if not _reraises(node):
                yield (
                    Finding(
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        code="RL006",
                        message=(
                            "except clause swallows BaseException without "
                            "re-raising; KeyboardInterrupt/SystemExit die here"
                        ),
                        fixit=(
                            "catch Exception instead, or re-raise after "
                            "recording the failure"
                        ),
                    ),
                    node,
                )


# ---------------------------------------------------------------------- #
# RL007 — atomic-snapshot-publish
# ---------------------------------------------------------------------- #

#: function names (and the snapshot module itself) whose file writes must go
#: through the crash-safe helper
_SNAPSHOT_SCOPE_RE = re.compile(r"snapshot", re.I)
#: function names in which an index reference swap must be atomic.  NOTE:
#: "maintain" alone would miss "maintenance" helpers — "mainten" covers both.
_PUBLISH_SCOPE_RE = re.compile(r"maintain|mainten|retrain|publish|swap", re.I)
_WRITE_MODE_RE = re.compile(r"[wax+]")


def _open_write_mode(call: ast.Call) -> bool:
    """True when an ``open(...)`` call's mode makes the file writable."""

    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_RE.search(mode.value))
    return True  # dynamic mode expression: fail closed


@rule(
    "RL007",
    "atomic-snapshot-publish",
    "snapshot files go through the atomic-write helper; index publish is one reference swap",
)
def check_atomic_snapshot_publish(module: Module, run: LintRun) -> Iterator[Hit]:
    """Two crash-safety invariants of the blue/green serving stack.

    **Clause A** — inside snapshot code (any function whose name mentions
    "snapshot", or any function in a ``snapshot.py`` module, except the
    sanctioned ``_atomic_write`` helper), no bare write-mode ``open()`` and
    no ``write_text``/``write_bytes``: a crash mid-write would leave a
    half-written file that looks committed.  All snapshot bytes reach disk
    through tmp-file + fsync + atomic rename.

    **Clause B** — inside maintenance/publish code (function names matching
    maintain/mainten/retrain/publish/swap), an assignment to an ``.index``
    attribute must be a *single* plain ``target.index = <name>`` swap — no
    tuple unpacking, no chained targets, no inline construction — so readers
    can never observe a half-retrained index.
    """

    in_snapshot_module = str(module.path).endswith("snapshot.py")
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        snapshot_scope = (
            in_snapshot_module or bool(_SNAPSHOT_SCOPE_RE.search(func.name))
        ) and func.name != "_atomic_write"
        publish_scope = bool(_PUBLISH_SCOPE_RE.search(func.name))
        if not snapshot_scope and not publish_scope:
            continue
        for node in ast.walk(func):
            if node is func or module.enclosing_function(node) is not func:
                continue  # nested defs get their own pass
            if snapshot_scope and isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                is_os_open = (
                    isinstance(callee, ast.Attribute)
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "os"
                )  # os.open takes int flags, not a mode string
                if name == "open" and not is_os_open and _open_write_mode(node):
                    yield (
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="RL007",
                            message=(
                                f"write-mode open() inside snapshot path "
                                f"{func.name}; a crash mid-write leaves a "
                                "corrupt-but-present file"
                            ),
                            fixit=(
                                "route the bytes through the snapshot "
                                "module's _atomic_write (tmp + fsync + "
                                "atomic rename)"
                            ),
                        ),
                        node,
                    )
                elif name in ("write_text", "write_bytes") and isinstance(
                    callee, ast.Attribute
                ):
                    yield (
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="RL007",
                            message=(
                                f"direct .{name}() inside snapshot path "
                                f"{func.name}; a crash mid-write leaves a "
                                "corrupt-but-present file"
                            ),
                            fixit=(
                                "route the bytes through the snapshot "
                                "module's _atomic_write (tmp + fsync + "
                                "atomic rename)"
                            ),
                        ),
                        node,
                    )
            if publish_scope and isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign)
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                hits_index = any(
                    isinstance(target, ast.Attribute) and target.attr == "index"
                    for target in _flat_targets(list(targets))
                )
                if not hits_index:
                    continue
                compliant = (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.value, ast.Name)
                )
                if not compliant:
                    yield (
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="RL007",
                            message=(
                                f"index publish in {func.name} is not a "
                                "single atomic reference swap"
                            ),
                            fixit=(
                                "bind the fully built index to a local name "
                                "first, then publish with one plain "
                                "`<target>.index = <name>` assignment"
                            ),
                        ),
                        node,
                    )


# ---------------------------------------------------------------------- #
# RL008 — wal-record-codec
# ---------------------------------------------------------------------- #

#: function names (and the WAL module itself) whose journal writes must go
#: through the record codec and whose append paths must reach group commit
_WAL_SCOPE_RE = re.compile(r"wal", re.I)
#: append-path entry points: ``append``, ``append_batch``, ``_append*``
_WAL_APPEND_RE = re.compile(r"^_?append")
#: calls that count as reaching the fsync-policy decision
_WAL_SYNC_CALLEES = ("_maybe_sync", "sync")


@rule(
    "RL008",
    "wal-record-codec",
    "journal bytes go through the record codec; every append path reaches the fsync policy",
)
def check_wal_record_codec(module: Module, run: LintRun) -> Iterator[Hit]:
    """Two durability invariants of the write-ahead log.

    **Clause A** — inside WAL code (any function whose name mentions "wal",
    or any function in a ``wal.py`` module, except the sanctioned
    ``_write_encoded`` sink), no direct ``.write()`` /
    ``.write_bytes()`` / ``.write_text()`` of payload bytes: an unframed
    write has no length prefix or CRC, so recovery cannot tell it from a
    torn tail and must discard everything after it.  Journal bytes reach
    disk only as ``encode_record(...)`` output (passing the codec call
    directly to a write is tolerated; anything else is not).

    **Clause B** — every append-path entry point (``append``,
    ``append_batch``, ``_append*``) in WAL scope must call ``_maybe_sync``
    or ``sync`` before returning: a record that never reaches the
    group-commit decision is acknowledged without ever being scheduled for
    durability, silently widening the loss window past what the configured
    fsync policy promises.
    """

    in_wal_module = str(module.path).endswith("wal.py")
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        wal_scope = (
            in_wal_module or bool(_WAL_SCOPE_RE.search(func.name))
        ) and func.name != "_write_encoded"
        if not wal_scope:
            continue
        reaches_sync = False
        for node in ast.walk(func):
            if node is func or module.enclosing_function(node) is not func:
                continue  # nested defs get their own pass
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name in _WAL_SYNC_CALLEES:
                reaches_sync = True
            if name in ("write", "write_bytes", "write_text") and isinstance(
                callee, ast.Attribute
            ):
                framed = bool(node.args) and (
                    isinstance(node.args[-1], ast.Call)
                    and isinstance(node.args[-1].func, ast.Name)
                    and node.args[-1].func.id == "encode_record"
                )
                if not framed:
                    yield (
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="RL008",
                            message=(
                                f"raw .{name}() inside WAL path {func.name}; "
                                "unframed journal bytes are indistinguishable "
                                "from a torn tail at recovery"
                            ),
                            fixit=(
                                "frame the payload with encode_record(seq, "
                                "payload) and write it through the module's "
                                "_write_encoded sink"
                            ),
                        ),
                        node,
                    )
        if _WAL_APPEND_RE.match(func.name) and not reaches_sync:
            yield (
                Finding(
                    path=module.path,
                    line=func.lineno,
                    col=func.col_offset,
                    code="RL008",
                    message=(
                        f"append path {func.name} never reaches the fsync "
                        "policy; acknowledged records are not scheduled for "
                        "durability"
                    ),
                    fixit=(
                        "end the append path with _maybe_sync() (or sync()) "
                        "so every record passes the group-commit decision"
                    ),
                ),
                func,
            )
