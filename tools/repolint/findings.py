"""Finding and rule-registry primitives shared by the repolint engine and rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List

if TYPE_CHECKING:  # pragma: no cover — import cycle guard, typing only
    from .engine import LintRun, Module


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    fixit: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fixit": self.fixit,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}\n"
            f"    fix: {self.fixit}"
        )


@dataclass(frozen=True)
class Rule:
    """A named, suppressible invariant check."""

    code: str
    name: str
    description: str
    check: Callable[["Module", "LintRun"], Iterable[Finding]]


#: Registry of every known rule, keyed by code (``RL001``...).
RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, description: str) -> Callable[
    [Callable[["Module", "LintRun"], Iterable[Finding]]],
    Callable[["Module", "LintRun"], Iterable[Finding]],
]:
    """Class-less rule registration decorator.

    The decorated callable receives a parsed :class:`Module` and the whole
    :class:`LintRun` (for cross-module lookups) and yields raw findings; the
    engine applies suppression filtering afterwards.
    """

    def register(
        check: Callable[["Module", "LintRun"], Iterable[Finding]]
    ) -> Callable[["Module", "LintRun"], Iterable[Finding]]:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, description=description, check=check)
        return check

    return register


def iter_rules(select: Iterable[str] | None = None) -> Iterator[Rule]:
    codes: List[str] = sorted(RULES) if select is None else sorted(set(select))
    for code in codes:
        if code not in RULES:
            raise KeyError(f"unknown rule code {code}")
        yield RULES[code]
