"""CFG-lite path analysis: "does every non-raising path do X before exiting?".

This is not a full control-flow graph.  It is a structural walk over the
statement tree that tracks, per reachable path, two monotone flags —
``bumped`` (the required action happened) and ``mutated`` (state was written)
— and classifies how each path leaves the function (``return``, fall-through,
``raise``, ``break``/``continue``).  Monotone flags make joins trivial (set
union of flag pairs) and keep the analysis linear in the statement count,
which is all a repo-local linter needs: the question RL001 asks is "is there
a clean exit that mutated the index but never bumped ``self.epoch``?", and
over-approximating the reachable paths only ever errs toward reporting.

Loops are handled as "zero or one abstract iteration": flags set anywhere in
a loop body *may* hold after the loop, and ``break``/``continue`` are
consumed by the innermost loop.  ``try`` blocks treat handlers as entered
from the *entry* state of the ``try`` (the conservative choice — a bump
inside the try may not have happened when the handler runs), and a
``finally`` suite's effects apply to every path that traverses it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Sequence, Set, Tuple

#: (bumped, mutated)
State = Tuple[bool, bool]

Predicate = Callable[[ast.stmt], bool]


@dataclass(frozen=True)
class PathExit:
    """One way control can leave the analysed block."""

    kind: str  # "return" | "fall" | "raise" | "break" | "continue"
    bumped: bool
    mutated: bool
    line: int


@dataclass(frozen=True)
class _BlockResult:
    exits: FrozenSet[PathExit]
    through: FrozenSet[State]  # states that fall off the end of the block


def _merge(*results: _BlockResult) -> _BlockResult:
    exits: Set[PathExit] = set()
    through: Set[State] = set()
    for result in results:
        exits |= result.exits
        through |= result.through
    return _BlockResult(frozenset(exits), frozenset(through))


class PathAnalyzer:
    """Analyse one function body with caller-supplied effect predicates."""

    def __init__(self, bumps: Predicate, mutates: Predicate) -> None:
        self._bumps = bumps
        self._mutates = mutates

    # ------------------------------------------------------------------ #
    def analyze(self, body: Sequence[ast.stmt]) -> List[PathExit]:
        result = self._block(body, {(False, False)})
        exits = set(result.exits)
        last_line = body[-1].lineno if body else 0
        for bumped, mutated in result.through:
            exits.add(PathExit("fall", bumped, mutated, last_line))
        return sorted(exits, key=lambda e: (e.line, e.kind))

    # ------------------------------------------------------------------ #
    def _block(self, body: Sequence[ast.stmt], entry: Set[State]) -> _BlockResult:
        exits: Set[PathExit] = set()
        through: Set[State] = set(entry)
        for stmt in body:
            if not through:  # every path already exited
                break
            step = self._statement(stmt, through)
            exits |= step.exits
            through = set(step.through)
        return _BlockResult(frozenset(exits), frozenset(through))

    def _statement(self, stmt: ast.stmt, entry: Set[State]) -> _BlockResult:
        if isinstance(stmt, ast.Return):
            states = self._apply_leaf(stmt, entry)
            return _BlockResult(
                frozenset(
                    PathExit("return", b, m, stmt.lineno) for b, m in states
                ),
                frozenset(),
            )
        if isinstance(stmt, ast.Raise):
            return _BlockResult(
                frozenset(
                    PathExit("raise", b, m, stmt.lineno) for b, m in entry
                ),
                frozenset(),
            )
        if isinstance(stmt, (ast.Break, ast.Continue)):
            kind = "break" if isinstance(stmt, ast.Break) else "continue"
            return _BlockResult(
                frozenset(PathExit(kind, b, m, stmt.lineno) for b, m in entry),
                frozenset(),
            )
        if isinstance(stmt, ast.If):
            body = self._block(stmt.body, entry)
            orelse = (
                self._block(stmt.orelse, entry)
                if stmt.orelse
                else _BlockResult(frozenset(), frozenset(entry))
            )
            return _merge(body, orelse)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, entry)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, entry)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._block(stmt.body, entry)
        if isinstance(stmt, ast.Match):
            results = [self._block(case.body, entry) for case in stmt.cases]
            # no case may match — entry can fall through unchanged
            results.append(_BlockResult(frozenset(), frozenset(entry)))
            return _merge(*results)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return _BlockResult(frozenset(), frozenset(entry))  # defs don't execute
        # leaf statement: apply effects
        return _BlockResult(frozenset(), frozenset(self._apply_leaf(stmt, entry)))

    # ------------------------------------------------------------------ #
    def _loop(self, stmt: ast.stmt, entry: Set[State]) -> _BlockResult:
        body: Sequence[ast.stmt] = stmt.body  # type: ignore[attr-defined]
        orelse: Sequence[ast.stmt] = stmt.orelse  # type: ignore[attr-defined]
        once = self._block(body, entry)
        exits: Set[PathExit] = set()
        after: Set[State] = set(entry)  # zero iterations
        after |= set(once.through)  # one abstract iteration
        for path_exit in once.exits:
            if path_exit.kind in ("break", "continue"):
                after.add((path_exit.bumped, path_exit.mutated))
            else:
                exits.add(path_exit)  # return/raise escape the loop
        tail = self._block(orelse, after) if orelse else _BlockResult(
            frozenset(), frozenset(after)
        )
        return _merge(_BlockResult(frozenset(exits), frozenset()), tail)

    def _try(self, stmt: ast.Try, entry: Set[State]) -> _BlockResult:
        body = self._block(stmt.body, entry)
        pieces: List[_BlockResult] = []
        if stmt.handlers:
            # Keep raise-exits from the body only if nothing catches broadly;
            # conservatively assume any handler may catch, so body raise-exits
            # are replaced by handler outcomes entered from the *entry* state.
            non_raise = frozenset(e for e in body.exits if e.kind != "raise")
            pieces.append(_BlockResult(non_raise, body.through))
            for handler in stmt.handlers:
                pieces.append(self._block(handler.body, entry))
        else:
            pieces.append(body)
        if stmt.orelse:
            merged = _merge(*pieces)
            orelse = self._block(stmt.orelse, merged.through)
            pieces = [_BlockResult(merged.exits, frozenset()), orelse]
        result = _merge(*pieces)
        if stmt.finalbody:
            # Effects in finally apply to every traversing path.
            final = self._block(
                stmt.finalbody,
                set(result.through)
                | {(e.bumped, e.mutated) for e in result.exits},
            )
            flags = set(final.through)
            if flags:
                bump_all = all(b for b, _ in flags) and bool(flags)
                mut_all = all(m for _, m in flags) and bool(flags)
                if bump_all or mut_all:
                    exits = frozenset(
                        PathExit(
                            e.kind,
                            e.bumped or bump_all,
                            e.mutated or mut_all,
                            e.line,
                        )
                        for e in result.exits
                    )
                    result = _BlockResult(exits, final.through)
                else:
                    result = _BlockResult(result.exits, final.through)
            else:
                result = _BlockResult(result.exits, final.through)
        return result

    # ------------------------------------------------------------------ #
    def _apply_leaf(self, stmt: ast.stmt, entry: Set[State]) -> Set[State]:
        bumps = self._bumps(stmt)
        mutates = self._mutates(stmt)
        if not bumps and not mutates:
            return set(entry)
        return {(b or bumps, m or mutates) for b, m in entry}


def clean_unbumped_exits(
    body: Sequence[ast.stmt],
    bumps: Predicate,
    mutates: Predicate,
    require_mutation: bool = True,
) -> List[PathExit]:
    """Exits (return / fall-through) that mutated state without the bump."""

    analyzer = PathAnalyzer(bumps, mutates)
    offenders = []
    for path_exit in analyzer.analyze(body):
        if path_exit.kind not in ("return", "fall"):
            continue
        if path_exit.bumped:
            continue
        if require_mutation and not path_exit.mutated:
            continue
        offenders.append(path_exit)
    return offenders
