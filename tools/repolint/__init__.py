"""repolint — AST-based invariant linter for the serving stack.

The serving stack rests on conventions that ordinary tests only probe
pointwise: epoch bumps on every index mutation, shared-memory lifecycle
discipline, batch-of-one wrappers, never caching degraded results, bounded
telemetry windows, a poll-guarded worker pipe protocol, crash-safe snapshot
publishes, and codec-framed journal writes.  repolint encodes each as a
named rule over the AST so every future diff is checked *before the code
runs*:

========  =======================  =====================================================
code      name                     invariant
========  =======================  =====================================================
RL001     epoch-bump               index mutators bump ``self.epoch`` on non-raising paths
RL002     shm-lifecycle            shared-memory acquisitions always reach ``close()``
RL003     batch-of-one             single wrappers only delegate to their batch canonical
RL004     degraded-not-cached      cache writes sit behind a cacheable/degraded guard
RL005     unbounded-telemetry      telemetry accumulators are bounded windows
RL006     worker-protocol          pipe ``recv`` is poll-guarded; no silent BaseException
RL007     atomic-snapshot-publish  snapshot writes are atomic; index publish is one swap
RL008     wal-record-codec         journal writes are codec-framed and reach fsync policy
========  =======================  =====================================================

Suppress with ``# repolint: disable=RL00X`` on (or directly above) the
offending line, or on the enclosing ``def``/``class`` line for the whole
body; ``# repolint: disable-file=RL00X`` silences a file.  Run as
``python -m tools.repolint src/repro [--format=json|human] [--select=...]``.
"""

from __future__ import annotations

from .engine import LintRun, Module, collect_files, lint_paths, lint_sources
from .findings import RULES, Finding, Rule

__all__ = [
    "Finding",
    "LintRun",
    "Module",
    "RULES",
    "Rule",
    "collect_files",
    "lint_paths",
    "lint_sources",
]
