"""Local approximation of the repo's ruff gate (see pyproject.toml).

The CI lint job runs real ``ruff check``; this module re-implements the
subset of its findings that matter most — long lines, import placement and
ordering, unused imports/locals, comparison and except-clause lints — so the
test suite can enforce the same bar on machines where ruff is not installed
(the dev container bakes in only the runtime toolchain).  It intentionally
over-approximates nothing: every check here is also a ruff check, so a clean
``stylecheck`` run is necessary-but-not-sufficient for a clean ruff run.

Run as ``python -m tools.stylecheck src/repro tests benchmarks tools``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

LINE_LENGTH = 120  # keep in sync with [tool.ruff] line-length

#: import-section ranks:
#: __future__ < stdlib < third-party < first-party < local-folder
_FIRST_PARTY = {"repro", "tools"}
_LOCAL_FOLDER = {"_bench_utils", "bench_cache_serving"}  # keep in sync with [tool.ruff.lint.isort]
_THIRD_PARTY = {"numpy", "pytest", "hypothesis", "scipy", "pandas"}


def _member_sort_key(name: str) -> Tuple[int, str]:
    """isort ``order-by-type`` member key: CONSTANTS < Classes < functions."""

    if name.replace("_", "").isupper():
        kind = 0
    elif name[:1].isupper():
        kind = 1
    else:
        kind = 2
    return (kind, name.lower())


def _module_rank(module: str, level: int) -> int:
    if level > 0:
        return 3  # relative imports sort with first-party
    root = module.split(".")[0]
    if root == "__future__":
        return 0
    if root in _FIRST_PARTY:
        return 3
    if root in _LOCAL_FOLDER:
        return 4
    if root in _THIRD_PARTY:
        return 2
    in_stdlib = root in sys.stdlib_module_names
    return 1 if in_stdlib else 2


class Checker:
    def __init__(self, path: Path) -> None:
        self.path = path
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.problems: List[Tuple[int, str, str]] = []

    def note(self, line: int, code: str, message: str) -> None:
        self.problems.append((line, code, message))

    # ------------------------------------------------------------------ #
    def run(self) -> List[Tuple[int, str, str]]:
        self.check_line_lengths()
        self.check_import_style()
        self.check_unused_imports()
        self.check_comparisons()
        self.check_excepts()
        self.check_ambiguous_names()
        self.check_unused_locals()
        return sorted(self.problems)

    # E501 ------------------------------------------------------------- #
    def check_line_lengths(self) -> None:
        for number, line in enumerate(self.lines, 1):
            if len(line) > LINE_LENGTH:
                self.note(number, "E501", f"line too long ({len(line)} > {LINE_LENGTH})")

    # E401 / E402 / I001 ------------------------------------------------ #
    def check_import_style(self) -> None:
        seen_code = False
        # isort default order: within a section, plain ``import x`` lines come
        # before ``from x import y`` lines, each run alphabetical — i.e. each
        # import's (section, form, module) tuple must be non-decreasing.
        last_order: Tuple[int, int, str] = (-1, -1, "")
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                if len(node.names) > 1:
                    self.note(node.lineno, "E401", "multiple imports on one line")
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if seen_code:
                    self.note(node.lineno, "E402", "module-level import not at top of file")
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    order = (
                        _module_rank(module, node.level),
                        1,
                        "." * node.level + module,
                    )
                else:
                    order = (_module_rank(node.names[0].name, 0), 0, node.names[0].name)
                if order < last_order:
                    self.note(
                        node.lineno,
                        "I001",
                        f"import {order[2]!r} out of order (sections: __future__ "
                        "< stdlib < third-party < first-party < local)",
                    )
                last_order = order
                if isinstance(node, ast.ImportFrom) and node.module != "__future__":
                    keys = [_member_sort_key(a.name) for a in node.names]
                    if keys != sorted(keys):
                        self.note(
                            node.lineno,
                            "I001",
                            "imported names not in isort order "
                            "(CONSTANTS, Classes, then others)",
                        )
            elif not isinstance(node, (ast.Expr, ast.If, ast.Try)):
                # docstrings (Expr) and guarded imports don't end the prologue
                seen_code = True
            elif isinstance(node, ast.Expr) and not isinstance(
                node.value, ast.Constant
            ):
                seen_code = True

    # F401 -------------------------------------------------------------- #
    def check_unused_imports(self) -> None:
        exported: set = set()
        for node in self.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            exported = {
                                element.value
                                for element in node.value.elts
                                if isinstance(element, ast.Constant)
                            }
        used = {
            node.id for node in ast.walk(self.tree) if isinstance(node, ast.Name)
        }
        used |= {
            node.attr for node in ast.walk(self.tree) if isinstance(node, ast.Attribute)
        }
        for text in (
            n.value for n in ast.walk(self.tree)
            if isinstance(n, ast.Constant) and isinstance(n.value, str)
        ):
            # names referenced from string annotations
            for token in text.replace("[", " ").replace("]", " ").replace(",", " ").split():
                used.add(token.strip('"').strip("'").split(".")[0])
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if "# noqa" in self.lines[node.lineno - 1]:
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                if alias.asname == alias.name:
                    continue  # redundant alias marks an intentional re-export
                if bound not in used and bound not in exported:
                    self.note(node.lineno, "F401", f"{bound!r} imported but unused")

    # E711 / E712 -------------------------------------------------------- #
    def check_comparisons(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Compare):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant):
                    if comparator.value is None:
                        self.note(node.lineno, "E711", "comparison to None (use `is`)")
                    elif comparator.value is True or comparator.value is False:
                        self.note(node.lineno, "E712", "comparison to bool (use `is`)")

    # E722 --------------------------------------------------------------- #
    def check_excepts(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                self.note(node.lineno, "E722", "bare `except:`")

    # E741 --------------------------------------------------------------- #
    def check_ambiguous_names(self) -> None:
        ambiguous = {"l", "O", "I"}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in ambiguous:
                    self.note(node.lineno, "E741", f"ambiguous variable name {node.id!r}")
            elif isinstance(node, ast.arg) and node.arg in ambiguous:
                self.note(node.lineno, "E741", f"ambiguous argument name {node.arg!r}")

    # F841 (approximation: plain locals assigned once and never read) ---- #
    def check_unused_locals(self) -> None:
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loads = {
                n.id
                for n in ast.walk(func)
                if isinstance(n, ast.Name) and not isinstance(n.ctx, ast.Store)
            }
            nested_scopes = [
                n for n in ast.walk(func)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not func
            ]
            for n in nested_scopes:
                loads |= {
                    m.id for m in ast.walk(n) if isinstance(m, ast.Name)
                }
            for node in func.body:
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                    continue
                name = node.targets[0].id
                if name.startswith("_") or name in loads:
                    continue
                self.note(node.lineno, "F841", f"local variable {name!r} never used")


def iter_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def main(argv: Sequence[str]) -> int:
    total = 0
    for path in iter_files(argv or ["src/repro", "tests", "benchmarks", "tools"]):
        for line, code, message in Checker(path).run():
            print(f"{path}:{line}: {code} {message}")
            total += 1
    print(f"stylecheck: {total} finding(s)" if total else "stylecheck: clean")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
