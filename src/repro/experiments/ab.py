"""Table V runner: the simulated online A/B test.

Bucket A is served by the production-style baseline (YouTube-DNN candidate
generator); bucket B by SCCF wrapped around the *same* baseline model, so the
only difference between buckets is the user-neighborhood complement plus the
fused re-ranking — exactly the paper's controlled comparison ("we keep all
downstream modules unchanged except the candidate generation module").
"""

from __future__ import annotations


from ..core.sccf import SCCF, SCCFConfig
from ..models import YouTubeDNN
from ..simulation import ABTestConfig, ABTestHarness, ABTestResult, ClickstreamConfig

__all__ = ["run_table5", "format_table5"]


def run_table5(
    num_users: int = 200,
    num_items: int = 400,
    training_days: int = 10,
    test_days: int = 7,
    candidate_set_size: int = 50,
    embedding_dim: int = 32,
    baseline_epochs: int = 5,
    num_neighbors: int = 30,
    seed: int = 0,
) -> ABTestResult:
    """Run the simulated one-week A/B test and return the lift result."""

    clickstream_config = ClickstreamConfig(
        num_users=num_users,
        num_items=num_items,
        num_days=training_days + test_days,
        community_strength=0.4,
        seed=seed,
    )
    ab_config = ABTestConfig(
        training_days=training_days,
        test_days=test_days,
        candidate_set_size=candidate_set_size,
        seed=seed,
    )
    harness = ABTestHarness(clickstream_config, ab_config)
    dataset, simulator = harness.build_training_dataset()

    baseline = YouTubeDNN(embedding_dim=embedding_dim, num_epochs=baseline_epochs, seed=seed)
    baseline.fit(dataset)

    # The treatment reuses the already-trained baseline as its UI component:
    # SCCF is a post-processing plugin, so bucket B differs only by the
    # user-based component and the integrating re-ranker.
    treatment_ui = YouTubeDNN(embedding_dim=embedding_dim, num_epochs=baseline_epochs, seed=seed)
    treatment_ui.fit(dataset)
    treatment = SCCF(
        treatment_ui,
        SCCFConfig(
            num_neighbors=num_neighbors,
            candidate_list_size=max(candidate_set_size, 50),
            merger_epochs=4,
            seed=seed,
        ),
    )
    treatment.fit(dataset, fit_ui_model=False)

    return harness.run(baseline, treatment, dataset, simulator)


def format_table5(result: ABTestResult) -> str:
    lines = [f"{'Metric':<12}{'Baseline (A)':>14}{'SCCF (B)':>12}{'Lift Rate':>12}"]
    for row in result.as_rows():
        lines.append(
            f"{row['Metric']:<12}{row['Baseline (bucket A)']:>14}{row['SCCF (bucket B)']:>12}{row['Lift Rate']:>12}"
        )
    return "\n".join(lines)
