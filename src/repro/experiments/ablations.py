"""Ablation studies of the design choices DESIGN.md calls out.

These go beyond the paper's own tables; they quantify the contribution of
pieces of the framework that the paper fixes by design:

* **Merger ablation** — full SCCF (per-user normalized features + MLP) vs a
  simple score-interpolation fusion ``λ·r̃^UI + (1-λ)·r̃^UU`` and vs the raw
  UI/UU components, isolating what the learned integrating network adds.
* **ANN ablation** — exact brute-force neighbor search vs the IVF
  approximate index: recall of the true top-β neighborhood and query latency.
* **Recency-window ablation** — how the size of the window used to infer user
  embeddings (and to pick which items neighbors contribute) affects quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ann import BruteForceIndex, IVFIndex
from ..core.sccf import SCCF, SCCFConfig
from ..data.datasets import RecDataset
from ..eval import Evaluator
from ..eval.metrics import RankingMetrics, rank_of_target
from .configs import ExperimentScale, get_scale, load_datasets, make_fism, make_sccf

__all__ = [
    "AblationRow",
    "run_merger_ablation",
    "run_ann_ablation",
    "run_recency_ablation",
]


@dataclass
class AblationRow:
    """One ablation measurement."""

    ablation: str
    dataset: str
    variant: str
    metrics: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "ablation": self.ablation,
            "dataset": self.dataset,
            "variant": self.variant,
        }
        row.update({name: round(value, 4) for name, value in self.metrics.items()})
        return row


# --------------------------------------------------------------------------- #
# merger ablation: learned MLP vs linear interpolation vs components
# --------------------------------------------------------------------------- #
def _interpolation_metrics(
    sccf: SCCF,
    dataset: RecDataset,
    evaluator: Evaluator,
    lam: float,
) -> Dict[str, float]:
    """Score with λ·normalized-UI + (1-λ)·normalized-UU instead of the MLP."""

    from ..core.merger import normalize_scores

    targets = dataset.test_items
    users = sorted(targets.keys())
    if evaluator.max_users is not None and len(users) > evaluator.max_users:
        rng = np.random.default_rng(evaluator.seed)
        users = [users[i] for i in sorted(rng.choice(len(users), size=evaluator.max_users, replace=False))]

    metrics = RankingMetrics(evaluator.cutoffs)
    for user in users:
        history = dataset.full_sequence(user, include_validation=True)
        if not history:
            continue
        user_embedding = sccf.ui_model.infer_user_embedding(history)
        ui_scores = sccf.ui_model.ui_scores(user_embedding)
        uu_scores = sccf.neighborhood.score_for_user(user, user_embedding, history=history)
        fused = lam * normalize_scores(ui_scores) + (1.0 - lam) * normalize_scores(uu_scores)
        rank = rank_of_target(fused, targets[user], exclude=history)
        metrics.add(rank)
    return metrics.compute()


def run_merger_ablation(
    scale: str | ExperimentScale = "quick",
    dataset_name: str = "ml-1m-small",
    dataset: Optional[RecDataset] = None,
    interpolation_lambdas: Sequence[float] = (0.5, 0.7, 0.9),
    cutoffs: Sequence[int] = (20, 50),
) -> List[AblationRow]:
    """Compare the learned integrating MLP against simple score interpolation."""

    scale = get_scale(scale)
    if dataset is None:
        dataset = load_datasets(scale, names=(dataset_name,))[dataset_name]
    evaluator = Evaluator(cutoffs=cutoffs, max_users=scale.max_eval_users, seed=scale.seed)

    ui_model = make_fism(scale)
    sccf = make_sccf(ui_model, scale)
    sccf.fit(dataset, fit_ui_model=True)

    rows: List[AblationRow] = []
    for mode, variant in (("ui", "UI only"), ("uu", "UU only"), ("sccf", "SCCF (MLP merger)")):
        sccf.set_mode(mode)
        result = evaluator.evaluate(sccf, dataset, model_name=variant)
        rows.append(AblationRow("merger", dataset_name, variant, result.metrics))
    for lam in interpolation_lambdas:
        metrics = _interpolation_metrics(sccf, dataset, evaluator, lam)
        rows.append(AblationRow("merger", dataset_name, f"interpolation λ={lam}", metrics))
    return rows


# --------------------------------------------------------------------------- #
# ANN ablation: brute force vs IVF
# --------------------------------------------------------------------------- #
def run_ann_ablation(
    num_vectors: int = 2000,
    dim: int = 64,
    k: int = 100,
    num_queries: int = 50,
    num_cells: int = 32,
    n_probe_values: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
) -> List[AblationRow]:
    """Recall@k and query latency of the IVF index vs the exact index."""

    rng = np.random.default_rng(seed)
    vectors = rng.normal(0.0, 1.0, size=(num_vectors, dim))
    queries = rng.normal(0.0, 1.0, size=(num_queries, dim))

    exact = BruteForceIndex(metric="cosine").build(vectors)
    exact_results = []
    start = time.perf_counter()
    for query in queries:
        ids, _ = exact.search(query, k=k)
        exact_results.append(set(int(i) for i in ids))
    exact_ms = (time.perf_counter() - start) * 1000.0 / num_queries

    rows = [
        AblationRow(
            "ann",
            f"synthetic({num_vectors}x{dim})",
            "BruteForce",
            {"recall": 1.0, "query_ms": round(exact_ms, 4)},
        )
    ]

    for n_probe in n_probe_values:
        ivf = IVFIndex(num_cells=num_cells, n_probe=n_probe, rng=np.random.default_rng(seed)).build(vectors)
        recalls = []
        start = time.perf_counter()
        for query, truth in zip(queries, exact_results):
            ids, _ = ivf.search(query, k=k)
            found = set(int(i) for i in ids)
            recalls.append(len(found & truth) / max(len(truth), 1))
        ivf_ms = (time.perf_counter() - start) * 1000.0 / num_queries
        rows.append(
            AblationRow(
                "ann",
                f"synthetic({num_vectors}x{dim})",
                f"IVF(n_probe={n_probe})",
                {"recall": round(float(np.mean(recalls)), 4), "query_ms": round(ivf_ms, 4)},
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# recency-window ablation
# --------------------------------------------------------------------------- #
def run_recency_ablation(
    scale: str | ExperimentScale = "quick",
    dataset_name: str = "ml-1m-small",
    dataset: Optional[RecDataset] = None,
    windows: Sequence[int] = (5, 15, 50),
    cutoffs: Sequence[int] = (20, 50),
) -> List[AblationRow]:
    """Effect of the recency window used for inference and neighbor votes."""

    scale = get_scale(scale)
    if dataset is None:
        dataset = load_datasets(scale, names=(dataset_name,))[dataset_name]
    evaluator = Evaluator(cutoffs=cutoffs, max_users=scale.max_eval_users, seed=scale.seed)

    rows: List[AblationRow] = []
    for window in windows:
        ui_model = make_fism(scale)
        ui_model.inference_window = window
        config = SCCFConfig(
            num_neighbors=scale.num_neighbors,
            candidate_list_size=scale.candidate_list_size,
            recency_window=window,
            merger_epochs=scale.merger_epochs,
            seed=scale.seed,
        )
        sccf = SCCF(ui_model, config)
        sccf.fit(dataset, fit_ui_model=True)
        sccf.set_mode("sccf")
        result = evaluator.evaluate(sccf, dataset, model_name=f"SCCF(window={window})")
        rows.append(AblationRow("recency", dataset_name, f"window={window}", result.metrics))
    return rows
