"""Table III runner: real-time latency of UserKNN vs the SCCF user-based component.

The measured operation is "make new predictions when a user interacts with a
new item":

* **UserKNN** — the transductive path: update the user's sparse profile,
  recompute her similarity against every other user over the item dimension,
  re-score.  Its cost grows with the catalog size.
* **SCCF** — the inductive path: one forward pass of the UI model to re-infer
  the user embedding ("inferring time") plus one similarity-search query over
  the low-dimensional user index ("identifying time").

The runner streams one new interaction per sampled user through both systems
and reports the mean per-event latency, in milliseconds, in the same three
rows the paper prints (inferring / identifying / total).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.realtime import EventBuffer, RealTimeServer
from ..core.sccf import SCCF
from ..data.datasets import RecDataset
from ..models import UserKNN
from .configs import ExperimentScale, get_scale, load_datasets, make_sasrec, make_sccf

__all__ = ["RealtimeLatencyRow", "run_table3", "format_table3"]


@dataclass
class RealtimeLatencyRow:
    """Latency breakdown for one (dataset, method) pair, mirroring Table III.

    ``recommend_ms`` extends the paper's two ingestion columns with the mean
    per-request *serving* latency under a repeat-visitor pattern (every
    sampled user asks twice); ``None`` for methods where it was not measured.
    """

    dataset: str
    method: str
    inferring_ms: float
    identifying_ms: float
    recommend_ms: Optional[float] = None

    @property
    def total_ms(self) -> float:
        return self.inferring_ms + self.identifying_ms

    def as_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "method": self.method,
            "inferring_ms": round(self.inferring_ms, 3),
            "identifying_ms": round(self.identifying_ms, 3),
            "total_ms": round(self.total_ms, 3),
            "recommend_ms": None if self.recommend_ms is None else round(self.recommend_ms, 3),
        }


def run_table3(
    scale: str | ExperimentScale = "quick",
    datasets: Optional[Dict[str, RecDataset]] = None,
    num_events: int = 30,
) -> List[RealtimeLatencyRow]:
    """Measure per-new-interaction latency for UserKNN and SCCF (SASRec base).

    Five rows per dataset: UserKNN's transductive recompute, SCCF's
    per-event inductive path, ``SCCF-batch`` — the same events coalesced
    into one micro-batched ``observe_batch`` flush, reported as amortized
    milliseconds per event — ``SCCF-sharded``, the per-event path served
    by a two-shard scatter-gather user index (same results, the per-shard
    load a multi-worker deployment would see), and ``SCCF-cached``, the
    same stack with the versioned serving cache attached.  The SCCF and
    SCCF-cached rows additionally measure ``recommend_ms``: the mean
    serving latency when every sampled user asks twice (the repeat-visitor
    pattern the cache targets — the second request is a cache hit).
    """

    scale = get_scale(scale)
    datasets = datasets or load_datasets(scale)
    rows: List[RealtimeLatencyRow] = []
    rng = np.random.default_rng(scale.seed)

    for dataset_name, dataset in datasets.items():
        users_with_history = [u for u, seq in dataset.train.user_sequences().items() if len(seq) >= 2]
        if not users_with_history:
            continue
        sampled_users = rng.choice(
            users_with_history, size=min(num_events, len(users_with_history)), replace=False
        )
        new_items = rng.integers(0, dataset.num_items, size=len(sampled_users))

        # --- UserKNN: transductive recompute per event ------------------- #
        userknn = UserKNN(num_neighbors=scale.num_neighbors).fit(dataset)
        import time

        knn_samples: List[float] = []
        for user, item in zip(sampled_users, new_items):
            start = time.perf_counter()
            userknn.realtime_update_and_recommend(int(user), int(item), k=50)
            knn_samples.append((time.perf_counter() - start) * 1000.0)
        rows.append(
            RealtimeLatencyRow(
                dataset=dataset_name,
                method="UserKNN",
                inferring_ms=0.0,  # UserKNN has no embedding inference step
                identifying_ms=float(np.mean(knn_samples)),
            )
        )

        # --- SCCF: inductive inference + index query --------------------- #
        # The cached row below must measure the identical workload, so both
        # go through one helper.
        def measure_sccf_row(sccf: SCCF, method: str) -> RealtimeLatencyRow:
            server = RealTimeServer(sccf, dataset)
            for user, item in zip(sampled_users, new_items):
                server.observe(int(user), int(item))
            for user in sampled_users:  # repeat-visitor serving pattern
                server.recommend(int(user), k=50)
                server.recommend(int(user), k=50)
            breakdown = server.average_latency()
            return RealtimeLatencyRow(
                dataset=dataset_name,
                method=method,
                inferring_ms=breakdown.inferring_ms if breakdown else 0.0,
                identifying_ms=breakdown.identifying_ms if breakdown else 0.0,
                recommend_ms=server.average_recommend_latency_ms(),
            )

        sasrec = make_sasrec(scale)
        sccf = make_sccf(sasrec, scale)
        sccf.fit(dataset, fit_ui_model=True)
        rows.append(measure_sccf_row(sccf, "SCCF"))

        # --- SCCF micro-batched: same events through one EventBuffer flush -- #
        # average_latency is event-weighted, so this row is directly
        # comparable to the per-event SCCF row above (amortized ms/event).
        batch_server = RealTimeServer(sccf, dataset)
        with EventBuffer(batch_server, flush_size=max(len(sampled_users), 1)) as buffer:
            for user, item in zip(sampled_users, new_items):
                buffer.push(int(user), int(item))
        breakdown = batch_server.average_latency()
        rows.append(
            RealtimeLatencyRow(
                dataset=dataset_name,
                method="SCCF-batch",
                inferring_ms=breakdown.inferring_ms if breakdown else 0.0,
                identifying_ms=breakdown.identifying_ms if breakdown else 0.0,
            )
        )

        # --- SCCF sharded: per-event path over a scatter-gather user index -- #
        # Reuses the already-trained SASRec; only the neighborhood index and
        # the merger are rebuilt, now partitioned across two threaded shards.
        sharded_sccf = make_sccf(sasrec, scale, num_shards=2)
        sharded_sccf.fit(dataset, fit_ui_model=False)
        sharded_server = RealTimeServer(sharded_sccf, dataset)
        for user, item in zip(sampled_users, new_items):
            sharded_server.observe(int(user), int(item))
        breakdown = sharded_server.average_latency()
        rows.append(
            RealtimeLatencyRow(
                dataset=dataset_name,
                method="SCCF-sharded",
                inferring_ms=breakdown.inferring_ms if breakdown else 0.0,
                identifying_ms=breakdown.identifying_ms if breakdown else 0.0,
            )
        )

        # --- SCCF cached: versioned serving cache on the same stack ------ #
        # Same trained SASRec, neighborhood/merger rebuilt with the cache
        # attached; the repeat-visitor recommends hit the cache on the second
        # ask, which is what drives recommend_ms down versus the SCCF row.
        cached_sccf = make_sccf(sasrec, scale, cache_capacity=4096)
        cached_sccf.fit(dataset, fit_ui_model=False)
        rows.append(measure_sccf_row(cached_sccf, "SCCF-cached"))
    return rows


def format_table3(rows: Sequence[RealtimeLatencyRow]) -> str:
    """Render Table III as aligned text grouped by dataset."""

    lines = [
        f"{'dataset':<16}{'method':<14}{'inferring (ms)':>16}{'identifying (ms)':>18}"
        f"{'total (ms)':>12}{'recommend (ms)':>16}"
    ]
    for row in rows:
        recommend = "-" if row.recommend_ms is None else f"{row.recommend_ms:.3f}"
        lines.append(
            f"{row.dataset:<16}{row.method:<14}{row.inferring_ms:>16.3f}"
            f"{row.identifying_ms:>18.3f}{row.total_ms:>12.3f}{recommend:>16}"
        )
    return "\n".join(lines)
