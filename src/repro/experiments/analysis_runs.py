"""Runners for the two analysis figures: interest drift (Figure 1) and
candidate-similarity distributions (Figure 4), plus the Table I statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis import (
    CategoryDriftResult,
    SimilarityDistributions,
    candidate_similarity_distributions,
    category_drift_distribution,
)
from ..data.datasets import DatasetStatistics, RecDataset
from ..simulation import ClickstreamConfig, ClickstreamSimulator
from .configs import ExperimentScale, get_scale, load_datasets, make_sasrec, make_sccf

__all__ = ["run_table1", "run_figure1", "run_figure4", "format_table1", "format_figure1"]


def run_table1(
    scale: str | ExperimentScale = "quick",
    datasets: Optional[Dict[str, RecDataset]] = None,
) -> List[DatasetStatistics]:
    """Table I: statistics of every (synthetic analog) dataset."""

    scale = get_scale(scale)
    datasets = datasets or load_datasets(scale)
    return [dataset.statistics() for dataset in datasets.values()]


def format_table1(statistics: Sequence[DatasetStatistics]) -> str:
    lines = [f"{'Dataset':<16}{'#users':>10}{'#items':>10}{'#actions':>12}{'avg.length':>12}{'density':>10}"]
    for stats in statistics:
        row = stats.as_row()
        lines.append(
            f"{row['Dataset']:<16}{row['#users']:>10}{row['#items']:>10}"
            f"{row['#actions']:>12}{row['avg.length']:>12}{row['density']:>10}"
        )
    return "\n".join(lines)


def run_figure1(
    num_users: int = 300,
    num_days: int = 15,
    window_days: int = 14,
    seed: int = 0,
    clickstream_config: Optional[ClickstreamConfig] = None,
) -> CategoryDriftResult:
    """Figure 1: distribution of days-since-first-click for today's categories.

    Simulates a two-week (plus target day) clickstream with drifting user
    interests and computes the per-day proportions; the headline number is
    ``result.new_category_fraction`` — the paper reports roughly 0.5.
    """

    # Taobao has a very large category taxonomy relative to what a single user
    # touches per day, which is what makes ~half of today's categories new;
    # the default config reproduces that ratio with a wide catalog and strong
    # day-to-day interest jumps.
    config = clickstream_config or ClickstreamConfig(
        num_users=num_users,
        num_items=1500,
        num_categories=150,
        num_communities=12,
        num_days=num_days,
        category_jump_probability=0.5,
        community_strength=0.2,
        daily_drift=0.25,
        seed=seed,
    )
    simulator = ClickstreamSimulator(config)
    log = simulator.simulate()
    return category_drift_distribution(log, window_days=window_days)


def format_figure1(result: CategoryDriftResult) -> str:
    lines = [f"{'days before today':>18}{'avg proportion':>16}"]
    for row in result.as_rows():
        bar = "#" * int(round(float(row["avg_proportion"]) * 60))
        lines.append(f"{row['days_before_today']:>18}{row['avg_proportion']:>16}  {bar}")
    lines.append(f"\nnew-category fraction (x=0 bar): {result.new_category_fraction:.3f}")
    return "\n".join(lines)


def run_figure4(
    scale: str | ExperimentScale = "quick",
    dataset: Optional[RecDataset] = None,
    dataset_name: str = "ml-1m-small",
    max_users: Optional[int] = 200,
) -> SimilarityDistributions:
    """Figure 4: user↔candidate cosine-similarity distributions for SASRec_SCCF.

    The paper runs this analysis on ML-20M; the quick scale uses the ML-1M
    analog for speed — the qualitative ordering (UI ≥ ground truth ≥ UU) is
    what matters.
    """

    scale = get_scale(scale)
    if dataset is None:
        dataset = load_datasets(scale, names=(dataset_name,))[dataset_name]
    sasrec = make_sasrec(scale)
    sccf = make_sccf(sasrec, scale)
    sccf.fit(dataset, fit_ui_model=True)
    return candidate_similarity_distributions(sccf, dataset, max_users=max_users, seed=scale.seed)
