"""Registry mapping experiment ids (table/figure numbers) to their runners.

The benchmark suite and the command-line entry point both look experiments up
here, so DESIGN.md's per-experiment index has a single source of truth in
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .ab import run_table5
from .ablations import run_ann_ablation, run_merger_ablation, run_recency_ablation
from .analysis_runs import run_figure1, run_figure4, run_table1
from .realtime import run_table3
from .sweeps import run_dimension_sweep, run_neighbor_sweep
from .table2 import run_table2

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one reproducible experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable
    benchmark_module: str


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(
        experiment_id="table1",
        title="Dataset statistics",
        paper_reference="Table I",
        runner=run_table1,
        benchmark_module="benchmarks/bench_table1_dataset_stats.py",
    ),
    "table2": ExperimentSpec(
        experiment_id="table2",
        title="Top-N performance comparison of all methods",
        paper_reference="Table II",
        runner=run_table2,
        benchmark_module="benchmarks/bench_table2_performance.py",
    ),
    "table3": ExperimentSpec(
        experiment_id="table3",
        title="Real-time latency: UserKNN vs SCCF user-based component",
        paper_reference="Table III",
        runner=run_table3,
        benchmark_module="benchmarks/bench_table3_realtime.py",
    ),
    "table4": ExperimentSpec(
        experiment_id="table4",
        title="Neighborhood size (β) sweep",
        paper_reference="Table IV",
        runner=run_neighbor_sweep,
        benchmark_module="benchmarks/bench_table4_neighbors.py",
    ),
    "table5": ExperimentSpec(
        experiment_id="table5",
        title="Simulated online A/B test",
        paper_reference="Table V",
        runner=run_table5,
        benchmark_module="benchmarks/bench_table5_ab_test.py",
    ),
    "figure1": ExperimentSpec(
        experiment_id="figure1",
        title="Interest drift: days since a category was first clicked",
        paper_reference="Figure 1",
        runner=run_figure1,
        benchmark_module="benchmarks/bench_figure1_category_drift.py",
    ),
    "figure4": ExperimentSpec(
        experiment_id="figure4",
        title="Candidate-set similarity distributions",
        paper_reference="Figure 4",
        runner=run_figure4,
        benchmark_module="benchmarks/bench_figure4_similarity.py",
    ),
    "figure5": ExperimentSpec(
        experiment_id="figure5",
        title="Hidden-dimension sweep",
        paper_reference="Figure 5",
        runner=run_dimension_sweep,
        benchmark_module="benchmarks/bench_figure5_dimension.py",
    ),
    "ablation-merger": ExperimentSpec(
        experiment_id="ablation-merger",
        title="Integrating MLP vs score interpolation",
        paper_reference="(extension)",
        runner=run_merger_ablation,
        benchmark_module="benchmarks/bench_ablation_merger.py",
    ),
    "ablation-ann": ExperimentSpec(
        experiment_id="ablation-ann",
        title="Exact vs IVF neighbor search",
        paper_reference="(extension)",
        runner=run_ann_ablation,
        benchmark_module="benchmarks/bench_ablation_ann.py",
    ),
    "ablation-recency": ExperimentSpec(
        experiment_id="ablation-recency",
        title="Recency-window sensitivity",
        paper_reference="(extension)",
        runner=run_recency_ablation,
        benchmark_module="benchmarks/bench_ablation_recency.py",
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[experiment_id]


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS.keys())
