"""Hyper-parameter sweeps: hidden dimension (Figure 5) and neighborhood size (Table IV).

Both sweeps share the same structure: for every dataset and every value of
the swept hyper-parameter, train the base UI model (FISM and/or SASRec), wrap
it in SCCF, and report HR@50 / NDCG@50 for the base, UU and SCCF variants.
Figure 5 sweeps the embedding dimension while keeping β fixed; Table IV
sweeps β while keeping the dimension fixed (the UI column is constant across
β by construction, exactly as in the paper's Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.sccf import SCCF
from ..data.datasets import RecDataset
from ..eval import Evaluator
from ..models.base import InductiveUIModel
from .configs import ExperimentScale, get_scale, load_datasets, make_fism, make_sasrec, make_sccf

__all__ = ["SweepPoint", "run_dimension_sweep", "run_neighbor_sweep", "format_sweep"]


@dataclass
class SweepPoint:
    """One measurement of a sweep: (dataset, base model, variant, swept value)."""

    dataset: str
    base_model: str
    variant: str            # "UI", "UU" or "SCCF"
    parameter: str          # "dimension" or "neighbors"
    value: int
    metrics: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "model": f"{self.base_model}{'' if self.variant == 'UI' else self.variant}",
            self.parameter: self.value,
        }
        row.update({name: round(value, 4) for name, value in self.metrics.items()})
        return row


def _make_ui_model(
    base_name: str, scale: ExperimentScale, embedding_dim: int
) -> InductiveUIModel:
    if base_name == "FISM":
        return make_fism(scale, embedding_dim=embedding_dim)
    if base_name == "SASRec":
        return make_sasrec(scale, embedding_dim=embedding_dim)
    raise ValueError(f"unknown base model {base_name!r}")


def _evaluate_modes(
    sccf: SCCF,
    dataset: RecDataset,
    evaluator: Evaluator,
    dataset_name: str,
    base_name: str,
    parameter: str,
    value: int,
) -> List[SweepPoint]:
    points: List[SweepPoint] = []
    for mode, variant in (("ui", "UI"), ("uu", "UU"), ("sccf", "SCCF")):
        sccf.set_mode(mode)
        result = evaluator.evaluate(sccf, dataset, model_name=f"{base_name}{variant}")
        points.append(
            SweepPoint(
                dataset=dataset_name,
                base_model=base_name,
                variant=variant,
                parameter=parameter,
                value=value,
                metrics=result.metrics,
            )
        )
    return points


def run_dimension_sweep(
    scale: str | ExperimentScale = "quick",
    datasets: Optional[Dict[str, RecDataset]] = None,
    dimensions: Optional[Sequence[int]] = None,
    base_models: Sequence[str] = ("FISM", "SASRec"),
    cutoffs: Sequence[int] = (50,),
) -> List[SweepPoint]:
    """Figure 5: HR@50 / NDCG@50 as a function of the embedding dimension."""

    scale = get_scale(scale)
    datasets = datasets or load_datasets(scale)
    dimensions = tuple(dimensions or scale.dimension_grid)
    evaluator = Evaluator(cutoffs=cutoffs, max_users=scale.max_eval_users, seed=scale.seed)

    points: List[SweepPoint] = []
    for dataset_name, dataset in datasets.items():
        for base_name in base_models:
            for dimension in dimensions:
                ui_model = _make_ui_model(base_name, scale, dimension)
                sccf = make_sccf(ui_model, scale)
                sccf.fit(dataset, fit_ui_model=True)
                points.extend(
                    _evaluate_modes(
                        sccf, dataset, evaluator, dataset_name, base_name, "dimension", dimension
                    )
                )
    return points


def run_neighbor_sweep(
    scale: str | ExperimentScale = "quick",
    datasets: Optional[Dict[str, RecDataset]] = None,
    neighbor_counts: Optional[Sequence[int]] = None,
    base_models: Sequence[str] = ("FISM", "SASRec"),
    cutoffs: Sequence[int] = (50,),
) -> List[SweepPoint]:
    """Table IV: NDCG@50 as a function of the neighborhood size β.

    The UI model is trained once per (dataset, base model) and reused across
    β values — only the user-based component and the merger depend on β —
    which also mirrors how the framework would be tuned in practice.
    """

    scale = get_scale(scale)
    datasets = datasets or load_datasets(scale)
    neighbor_counts = tuple(neighbor_counts or scale.neighbor_grid)
    evaluator = Evaluator(cutoffs=cutoffs, max_users=scale.max_eval_users, seed=scale.seed)

    points: List[SweepPoint] = []
    for dataset_name, dataset in datasets.items():
        for base_name in base_models:
            ui_model = _make_ui_model(base_name, scale, scale.embedding_dim)
            ui_model.fit(dataset)
            for beta in neighbor_counts:
                sccf = make_sccf(ui_model, scale, num_neighbors=beta)
                sccf.fit(dataset, fit_ui_model=False)
                points.extend(
                    _evaluate_modes(
                        sccf, dataset, evaluator, dataset_name, base_name, "neighbors", beta
                    )
                )
    return points


def format_sweep(points: Sequence[SweepPoint], metric: str = "NDCG@50") -> str:
    """Render sweep points as a compact table grouped by dataset and model."""

    if not points:
        return "(no results)"
    parameter = points[0].parameter
    values = sorted({p.value for p in points})
    lines = [f"{'dataset':<14}{'model':<14}" + "".join(f"{parameter}={v:<10}" for v in values)]
    groups: Dict[tuple, Dict[int, float]] = {}
    for point in points:
        key = (point.dataset, f"{point.base_model}{'' if point.variant == 'UI' else point.variant}")
        groups.setdefault(key, {})[point.value] = point.metrics.get(metric, 0.0)
    for (dataset, model), metric_by_value in groups.items():
        cells = "".join(f"{metric_by_value.get(v, 0.0):<{len(parameter) + 11}.4f}" for v in values)
        lines.append(f"{dataset:<14}{model:<14}{cells}")
    return "\n".join(lines)
