"""Experiment runners regenerating every table and figure of the paper."""

from __future__ import annotations

from .ab import format_table5, run_table5
from .ablations import AblationRow, run_ann_ablation, run_merger_ablation, run_recency_ablation
from .analysis_runs import format_figure1, format_table1, run_figure1, run_figure4, run_table1
from .configs import (
    DATASET_NAMES,
    FULL,
    QUICK,
    ExperimentScale,
    get_scale,
    load_datasets,
    make_baselines,
    make_fism,
    make_sasrec,
    make_sccf,
)
from .realtime import RealtimeLatencyRow, format_table3, run_table3
from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, list_experiments
from .sweeps import SweepPoint, format_sweep, run_dimension_sweep, run_neighbor_sweep
from .table2 import Table2Row, format_table2, run_table2

__all__ = [
    "ExperimentScale",
    "QUICK",
    "FULL",
    "get_scale",
    "DATASET_NAMES",
    "load_datasets",
    "make_fism",
    "make_sasrec",
    "make_baselines",
    "make_sccf",
    "Table2Row",
    "run_table2",
    "format_table2",
    "SweepPoint",
    "run_dimension_sweep",
    "run_neighbor_sweep",
    "format_sweep",
    "RealtimeLatencyRow",
    "run_table3",
    "format_table3",
    "run_table1",
    "format_table1",
    "run_figure1",
    "format_figure1",
    "run_figure4",
    "run_table5",
    "format_table5",
    "AblationRow",
    "run_merger_ablation",
    "run_ann_ablation",
    "run_recency_ablation",
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
]
