"""Shared experiment configuration: scales, datasets and model factories.

Every table/figure runner consumes an :class:`ExperimentScale`, which bundles
the knobs that trade fidelity for wall-clock time.  Two named scales exist:

* ``"quick"`` — the default used by the benchmark suite: smaller embedding
  dimensions, a handful of epochs, and a capped number of evaluation users,
  so every table/figure regenerates on a laptop CPU in minutes.
* ``"full"`` — the faithful configuration (paper hyper-parameters, all users);
  expect hours on CPU.

Model factories return freshly configured instances per (dataset, dimension)
so sweeps never share state between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Union

from ..core.sccf import SCCF, SCCFConfig
from ..data.datasets import RecDataset
from ..data.synthetic import load_preset
from ..models import BPRMF, FISM, ItemKNN, Popularity, SASRec, UserKNN
from ..models.base import InductiveUIModel

__all__ = [
    "ExperimentScale",
    "QUICK",
    "FULL",
    "get_scale",
    "DATASET_NAMES",
    "load_datasets",
    "make_fism",
    "make_sasrec",
    "make_baselines",
    "make_sccf",
]

#: The four dataset analogs of Table I, in the paper's order.
DATASET_NAMES: Sequence[str] = ("ml-1m-small", "ml-20m-small", "games-small", "beauty-small")


@dataclass(frozen=True)
class ExperimentScale:
    """Resource/fidelity trade-off shared by all experiment runners."""

    name: str
    embedding_dim: int
    fism_epochs: int
    sasrec_epochs: int
    sasrec_max_length: int
    bprmf_epochs: int
    merger_epochs: int
    num_neighbors: int
    candidate_list_size: int
    max_eval_users: Optional[int]
    dimension_grid: Sequence[int]
    neighbor_grid: Sequence[int]
    datasets: Sequence[str]
    seed: int = 0

    def with_overrides(self, **overrides: object) -> "ExperimentScale":
        return replace(self, **overrides)


QUICK = ExperimentScale(
    name="quick",
    embedding_dim=32,
    fism_epochs=5,
    sasrec_epochs=4,
    sasrec_max_length=50,
    bprmf_epochs=5,
    merger_epochs=60,
    num_neighbors=50,
    candidate_list_size=100,
    max_eval_users=150,
    dimension_grid=(16, 32, 64),
    neighbor_grid=(25, 50, 100),
    datasets=("ml-1m-small", "games-small"),
    seed=0,
)

FULL = ExperimentScale(
    name="full",
    embedding_dim=64,
    fism_epochs=20,
    sasrec_epochs=20,
    sasrec_max_length=100,
    bprmf_epochs=20,
    merger_epochs=100,
    num_neighbors=100,
    candidate_list_size=100,
    max_eval_users=None,
    dimension_grid=(16, 32, 64, 128),
    neighbor_grid=(50, 100, 200),
    datasets=tuple(DATASET_NAMES),
    seed=0,
)

_SCALES: Dict[str, ExperimentScale] = {"quick": QUICK, "full": FULL}


def get_scale(name_or_scale: "Union[str, ExperimentScale]") -> ExperimentScale:
    """Resolve a scale by name (or pass an :class:`ExperimentScale` through)."""

    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    if name_or_scale not in _SCALES:
        raise KeyError(f"unknown scale {name_or_scale!r}; available: {sorted(_SCALES)}")
    return _SCALES[name_or_scale]


def load_datasets(scale: ExperimentScale, names: Optional[Sequence[str]] = None) -> Dict[str, RecDataset]:
    """Load (generate) the synthetic analog for every requested dataset name."""

    names = names or scale.datasets
    return {name: load_preset(name) for name in names}


# --------------------------------------------------------------------------- #
# model factories
# --------------------------------------------------------------------------- #
def make_fism(scale: ExperimentScale, embedding_dim: Optional[int] = None, seed: Optional[int] = None) -> FISM:
    """FISM configured with the paper's α = 0.5 and the scale's budget."""

    return FISM(
        embedding_dim=embedding_dim or scale.embedding_dim,
        alpha=0.5,
        num_epochs=scale.fism_epochs,
        seed=scale.seed if seed is None else seed,
    )


def make_sasrec(scale: ExperimentScale, embedding_dim: Optional[int] = None, seed: Optional[int] = None) -> SASRec:
    """SASRec with 2 layers / 1 head, as in the paper's configuration."""

    return SASRec(
        embedding_dim=embedding_dim or scale.embedding_dim,
        max_length=scale.sasrec_max_length,
        num_layers=2,
        num_heads=1,
        dropout=0.2,
        num_epochs=scale.sasrec_epochs,
        seed=scale.seed if seed is None else seed,
    )


def make_baselines(scale: ExperimentScale) -> Dict[str, object]:
    """The non-SCCF baselines of Table II: Pop, ItemKNN, UserKNN, BPR-MF."""

    return {
        "Pop": Popularity(),
        "ItemKNN": ItemKNN(),
        "UserKNN": UserKNN(num_neighbors=scale.num_neighbors),
        "BPR-MF": BPRMF(embedding_dim=scale.embedding_dim, num_epochs=scale.bprmf_epochs, seed=scale.seed),
    }


def make_sccf(
    ui_model: InductiveUIModel,
    scale: ExperimentScale,
    num_neighbors: Optional[int] = None,
    num_shards: int = 1,
    shard_backend: str = "thread",
    cache_capacity: int = 0,
    failure_policy: str = "raise",
) -> SCCF:
    """Wrap a UI model in the SCCF framework with the scale's settings.

    ``num_shards > 1`` serves the user-neighbor index through a scatter-gather
    sharded index (same results, sharded load); ``shard_backend`` selects the
    fan-out — ``"thread"`` (:class:`~repro.ann.sharded.ShardedIndex`) or
    ``"process"`` (:class:`~repro.ann.process_sharded.ProcessShardedIndex`,
    persistent worker processes over shared memory; close the stack when
    done).  ``cache_capacity > 0`` attaches the versioned serving cache
    (:class:`~repro.core.cache.ServingCache`) so repeat-visitor requests are
    served without recomputation.  ``failure_policy="degrade"`` keeps the
    sharded backends serving from surviving shards through worker outages
    instead of raising (degraded answers are never cached).
    """

    config = SCCFConfig(
        num_neighbors=num_neighbors or scale.num_neighbors,
        candidate_list_size=scale.candidate_list_size,
        recency_window=15,
        merger_epochs=scale.merger_epochs,
        num_shards=num_shards,
        shard_backend=shard_backend,
        failure_policy=failure_policy,
        cache_capacity=cache_capacity,
        seed=scale.seed,
    )
    return SCCF(ui_model, config)
