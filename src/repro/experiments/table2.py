"""Table II runner: performance comparison of all methods on the four datasets.

For every dataset the runner fits the baselines (Pop, ItemKNN, UserKNN,
BPR-MF), then each SCCF base model (FISM, SASRec), and evaluates the base
model, the pure user-based component (``*_UU``) and the full framework
(``*_SCCF``) — the ten columns of Table II — reporting HR and NDCG at
20 / 50 / 100 and the relative improvement of SCCF over its base model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.datasets import RecDataset
from ..eval import Evaluator
from .configs import (
    ExperimentScale,
    get_scale,
    load_datasets,
    make_baselines,
    make_fism,
    make_sasrec,
    make_sccf,
)

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass
class Table2Row:
    """One (dataset, model) cell group of Table II."""

    dataset: str
    model: str
    metrics: Dict[str, float]
    improvement_over: Optional[str] = None
    improvements: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {"dataset": self.dataset, "model": self.model}
        row.update({name: round(value, 4) for name, value in self.metrics.items()})
        if self.improvements:
            row.update(
                {f"improv_{name}": f"{value * 100:.2f}%" for name, value in self.improvements.items()}
            )
        return row


def _relative_improvement(base: Dict[str, float], new: Dict[str, float]) -> Dict[str, float]:
    improvements = {}
    for key, base_value in base.items():
        if base_value > 0:
            improvements[key] = new.get(key, 0.0) / base_value - 1.0
        else:
            improvements[key] = 0.0
    return improvements


def run_table2(
    scale: str | ExperimentScale = "quick",
    datasets: Optional[Dict[str, RecDataset]] = None,
    cutoffs: Sequence[int] = (20, 50, 100),
    base_models: Sequence[str] = ("FISM", "SASRec"),
    include_baselines: bool = True,
) -> List[Table2Row]:
    """Regenerate the Table II rows at the requested scale."""

    scale = get_scale(scale)
    datasets = datasets or load_datasets(scale)
    evaluator = Evaluator(cutoffs=cutoffs, max_users=scale.max_eval_users, seed=scale.seed)
    rows: List[Table2Row] = []

    for dataset_name, dataset in datasets.items():
        if include_baselines:
            for name, model in make_baselines(scale).items():
                model.fit(dataset)
                result = evaluator.evaluate(model, dataset, model_name=name)
                rows.append(Table2Row(dataset=dataset_name, model=name, metrics=result.metrics))

        for base_name in base_models:
            if base_name == "FISM":
                ui_model = make_fism(scale)
            elif base_name == "SASRec":
                ui_model = make_sasrec(scale)
            else:
                raise ValueError(f"unknown base model {base_name!r}")

            sccf = make_sccf(ui_model, scale)
            sccf.fit(dataset, fit_ui_model=True)

            mode_metrics: Dict[str, Dict[str, float]] = {}
            for mode, label in (("ui", base_name), ("uu", f"{base_name}UU"), ("sccf", f"{base_name}SCCF")):
                sccf.set_mode(mode)
                result = evaluator.evaluate(sccf, dataset, model_name=label)
                mode_metrics[mode] = result.metrics
                improvements = (
                    _relative_improvement(mode_metrics["ui"], result.metrics) if mode == "sccf" else {}
                )
                rows.append(
                    Table2Row(
                        dataset=dataset_name,
                        model=label,
                        metrics=result.metrics,
                        improvement_over=base_name if mode == "sccf" else None,
                        improvements=improvements,
                    )
                )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render the rows as an aligned text table (one block per dataset)."""

    if not rows:
        return "(no results)"
    metric_names = list(rows[0].metrics.keys())
    lines: List[str] = []
    current_dataset = None
    header = f"{'model':<14}" + "".join(f"{name:>12}" for name in metric_names)
    for row in rows:
        if row.dataset != current_dataset:
            current_dataset = row.dataset
            lines.append("")
            lines.append(f"=== {current_dataset} ===")
            lines.append(header)
        values = "".join(f"{row.metrics.get(name, 0.0):>12.4f}" for name in metric_names)
        lines.append(f"{row.model:<14}{values}")
        if row.improvements:
            improvements = "".join(
                f"{row.improvements.get(name, 0.0) * 100:>11.2f}%" for name in metric_names
            )
            lines.append(f"{'  improv.':<14}{improvements}")
    return "\n".join(lines)
