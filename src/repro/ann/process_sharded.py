"""Supervised process-level shard workers over a shared-memory vector store.

:class:`~repro.ann.sharded.ShardedIndex` fans per-shard searches out over a
``ThreadPoolExecutor`` — the in-process *rehearsal* for this module.  Python
threads only overlap inside BLAS (the GIL serializes everything else: query
prep, exclusion masking, ``top_k_rows`` selection, result assembly), so the
thread backend buys latency hiding but not real multi-core throughput.

:class:`ProcessShardedIndex` is the deployment-shaped version: one persistent
**worker process per shard**, each mapping its shard of the vector matrix
from a :class:`~repro.ann.shm.SharedMatrix` — the same bytes the parent
writes, zero-copy.  The division of labor:

* **Parent** owns all mutation.  ``build`` / ``add`` / ``update_batch`` write
  normalized rows straight into the shared segments, routed by the same
  ``p % S`` round-robin arithmetic as the thread backend, and bump ``epoch``
  so :class:`~repro.core.cache.ServingCache` invalidation works unchanged.
  Workers never hear about ordinary mutations: the live row count rides along
  with every search command, and only a capacity-doubling growth triggers a
  re-attach round-trip.
* **Workers** answer ``search`` commands: slice a ``(size, dim)`` view of
  their shared shard, run the very same score matmul + exclusion masking +
  :func:`~repro.ann.brute_force.top_k_rows` selection a per-shard
  ``BruteForceIndex`` would, and ship the per-shard top-k back over the
  command pipe.  The parent scatters the prepared query block to every live
  worker, gathers, and merges with the identical
  :meth:`~repro.ann.sharded.ScatterGatherMixin._merge_row` re-rank — so
  results are **bit-identical** to the unsharded ``BruteForceIndex`` (the
  single-row-shard gemv caveat of the thread backend applies equally).

At production scale partial failure is the steady state, so the worker pool
is *supervised* rather than fail-stop:

* Every request carries a **sequence number** the worker echoes back; a late
  reply from a timed-out round (or from a worker that has since been
  replaced) is discarded instead of being paired with the next request — the
  old "any desync is fatal" stance is gone.
* A worker that dies, answers with an error, or misses its response deadline
  is **reaped and respawned** with exponential backoff, up to a per-shard
  ``restart_budget``.  All shard state lives in the shared segments the
  parent owns, so a respawned worker re-attaches zero-copy and resumes
  bit-identical serving; a shard whose budget is exhausted is tombstoned.
* ``failure_policy`` decides what a search does while shards are down:
  ``"raise"`` (default) raises a ``RuntimeError`` until the pool heals,
  ``"degrade"`` merges the surviving shards' results and tags the return
  value (:class:`~repro.ann.sharded.SearchResults` with ``degraded=True``,
  counted in ``degraded_requests``) so serving caches and callers can tell a
  partial answer from a complete one.

Per-shard liveness, restart counts and last errors are surfaced through
:meth:`ProcessShardedIndex.shard_health`; :meth:`wait_until_healthy` blocks
until every shard is live again (chaos tests use it to assert post-recovery
parity).  Workers are spawn-safe (the worker entrypoint is a module-level
function and all hand-off state is picklable or named shared memory), and
lifecycle is explicit — ``close()`` stops the workers, joins them (escalating
``terminate()`` → ``kill()`` for wedged ones), and unlinks every segment; the
context manager and ``__del__`` call it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .brute_force import apply_exclusions, check_new_ids, prepare_rows, top_k_rows
from .sharded import ScatterGatherMixin, SearchResults
from .shm import SharedMatrix

__all__ = ["ProcessShardedIndex", "ShardHealth"]

_SUPPORTED_DTYPES = (np.float32, np.float64)

#: per-shard supervision states
_LIVE, _PENDING, _DOWN, _DEAD = "live", "pending", "down", "dead"


def _execute(matrix: Optional[SharedMatrix], command: Tuple) -> Tuple[Tuple, Optional[SharedMatrix]]:
    """One worker command → ``(response, matrix)``; pure, so tests run it in-process.

    ``response`` is ``("ok", payload)`` or ``("error", message)``.  The
    returned matrix replaces the worker's current one (the ``attach`` command
    swaps in freshly mapped segments after a capacity doubling or a respawn).
    """

    op = command[0]
    if op == "ping":
        return ("ok", "pong"), matrix
    if op == "attach":
        if matrix is not None:
            matrix.close()
        return ("ok", True), SharedMatrix.attach(command[1])
    if op == "search":
        _, queries, k, exclusions, size = command
        if matrix is None:
            return ("error", "worker has no attached shard"), matrix
        vectors, ids = matrix.view(size)
        # Exactly what a per-shard BruteForceIndex does with pre-normalized
        # rows: one matmul, exclusion masking, deterministic top-k.  Queries
        # arrive already prepared (cast + normalized once in the parent).
        scores = queries @ vectors.T
        apply_exclusions(scores, ids, exclusions)
        return ("ok", top_k_rows(scores, k, ids)), matrix
    return ("error", f"unknown command {op!r}"), matrix


def _shard_worker_main(conn: Any) -> None:  # pragma: no cover
    """Worker loop (runs in spawned child processes — covered by _execute tests).

    Workers start bare; the parent's first ``attach`` command maps their
    shard's shared segments.  Every message is ``(seq, op, *args)`` and every
    reply ``(seq, status, payload)`` — the sequence number is what lets the
    parent discard replies from rounds it has already given up on.
    """

    matrix: Optional[SharedMatrix] = None
    try:
        while True:
            try:
                # Blocking recv is the worker's *job*: it has nothing to do
                # between commands, and the parent supervises it from the
                # other end of the pipe (RL006 guards supervisor-side recvs).
                message = conn.recv()  # repolint: disable=RL006
            except (EOFError, OSError):
                break
            seq, command = message[0], message[1:]
            if command[0] == "stop":
                break
            try:
                response, matrix = _execute(matrix, command)
            except Exception as exc:
                response = ("error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send((seq, *response))
            except (BrokenPipeError, OSError):
                break
    finally:
        if matrix is not None:
            matrix.close()
        conn.close()


@dataclass
class ShardHealth:
    """Liveness snapshot of one shard worker (see :meth:`ProcessShardedIndex.shard_health`)."""

    shard: int
    state: str  # "live" | "pending" (respawned, re-attach in flight) | "down" | "dead"
    alive: bool
    rows: int
    restarts: int
    failures: int
    last_error: Optional[str] = None


class _WorkerSlot:
    """Supervision state for one shard's worker process."""

    __slots__ = (
        "proc",
        "conn",
        "state",
        "restarts",
        "failures",
        "last_error",
        "next_restart_at",
        "pending_seq",
        "pending_meta",
        "pending_deadline",
        "acked_meta",
    )

    def __init__(self) -> None:
        self.proc = None
        self.conn = None
        self.state = _DOWN
        self.restarts = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self.next_restart_at = 0.0
        self.pending_seq: Optional[int] = None
        self.pending_meta: Optional[Tuple[str, str]] = None
        self.pending_deadline = 0.0
        self.acked_meta: Optional[Tuple[str, str]] = None


class _WorkerFailure(Exception):
    """Internal control-flow signal: shard ``args[0]`` just failed (already reaped)."""


class ProcessShardedIndex(ScatterGatherMixin):
    """Supervised scatter-gather top-k search over S persistent worker *processes*.

    Drop-in for :class:`~repro.ann.sharded.ShardedIndex` where the fan-out
    must actually use multiple cores.  Results are bit-identical to the
    unsharded :class:`~repro.ann.brute_force.BruteForceIndex`; mutations are
    routed by the same ``p % S`` arithmetic and bump ``epoch`` for the
    serving cache.  Dead or hung workers are automatically respawned (their
    shard state lives in shared memory, so a respawn is cheap and
    bit-preserving); ``failure_policy`` decides whether searches raise or
    degrade while shards are down.  Unlike the thread backend, ``close()``
    is terminal: the workers and shared segments are gone, and any further
    call raises.

    Parameters
    ----------
    num_shards:
        Worker processes (one shard of the vector matrix each).
    metric / dtype:
        As on ``BruteForceIndex`` — ``"cosine"`` (rows L2-normalized once at
        write time) or ``"inner"``; float32 by default.
    start_method:
        ``multiprocessing`` start method for the workers.  The default
        ``"spawn"`` is safe everywhere (no forked locks, works under
        coverage); ``"fork"``/``"forkserver"`` start faster where available.
    initial_capacity:
        Rows each shard's shared segments start with; appends double it
        (workers re-attach on growth).
    response_timeout:
        Seconds to wait for a worker's reply before declaring it hung (a
        hung worker is killed and respawned like a dead one).
    failure_policy:
        ``"raise"`` (default): a search while any populated shard cannot
        answer raises ``RuntimeError`` — restarts still proceed, so a later
        call (or :meth:`wait_until_healthy`) heals the pool.  ``"degrade"``:
        the search merges the surviving shards' partial results and returns
        them tagged (``SearchResults.degraded``), counting the request in
        ``degraded_requests``.
    restart_budget:
        Maximum automatic restarts per shard before it is tombstoned
        (``"dead"``).  A fresh :meth:`build` resets the budgets — rebuilding
        is the operator-level recovery path.
    restart_backoff / restart_backoff_cap:
        Initial delay before respawning a failed worker, doubled per restart
        of that shard up to the cap (seconds).
    spawn_timeout:
        Seconds a freshly spawned worker gets to come up and acknowledge its
        ``attach`` before the supervisor declares the spawn failed.
    """

    def __init__(
        self,
        num_shards: int = 4,
        metric: str = "cosine",
        dtype: np.dtype = np.float32,
        start_method: str = "spawn",
        initial_capacity: int = 64,
        response_timeout: float = 60.0,
        failure_policy: str = "raise",
        restart_budget: int = 8,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        spawn_timeout: float = 60.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if metric not in ("cosine", "inner"):
            raise ValueError("metric must be 'cosine' or 'inner'")
        dtype = np.dtype(dtype)
        if dtype.type not in _SUPPORTED_DTYPES:
            raise ValueError("dtype must be float32 or float64")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if response_timeout <= 0:
            raise ValueError("response_timeout must be positive")
        if failure_policy not in ("raise", "degrade"):
            raise ValueError("failure_policy must be 'raise' or 'degrade'")
        if restart_budget < 0:
            raise ValueError("restart_budget must be non-negative")
        if restart_backoff < 0 or restart_backoff_cap < restart_backoff:
            raise ValueError("restart_backoff must be in [0, restart_backoff_cap]")
        if spawn_timeout <= 0:
            raise ValueError("spawn_timeout must be positive")
        self.num_shards = num_shards
        self.metric = metric
        self.dtype = dtype
        self.initial_capacity = initial_capacity
        self.response_timeout = response_timeout
        self.failure_policy = failure_policy
        self.restart_budget = restart_budget
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.spawn_timeout = spawn_timeout
        #: monotonically increasing mutation counter: bumped by every build /
        #: add / update / update_batch, so serving caches can validate stored
        #: search results in O(1) (see :mod:`repro.core.cache`).
        self.epoch = 0
        #: searches answered from a strict subset of the populated shards
        #: (only ever bumped under ``failure_policy="degrade"``); serving
        #: caches snapshot this counter to refuse degraded entries.
        self.degraded_requests = 0
        self._ctx = multiprocessing.get_context(start_method)
        self._ids: Optional[np.ndarray] = None
        self._dim: int = 0
        self._id_order: Optional[np.ndarray] = None
        self._matrices: List[SharedMatrix] = []
        self._slots: List[_WorkerSlot] = []
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # worker pool plumbing and supervision
    # ------------------------------------------------------------------ #
    @property
    def _procs(self) -> List:
        """The current worker processes, slot by slot (diagnostics/tests)."""

        return [slot.proc for slot in self._slots]

    @property
    def workers_alive(self) -> int:
        """How many shard workers are currently running (0 before build/after close)."""

        return sum(1 for slot in self._slots if slot.proc is not None and slot.proc.is_alive())

    @property
    def restarts_total(self) -> int:
        """Automatic worker restarts performed over this index's lifetime."""

        return sum(slot.restarts for slot in self._slots)

    @property
    def healthy(self) -> bool:
        """True when every shard worker is live (no restarts or tombstones in flight)."""

        return bool(self._slots) and all(slot.state == _LIVE for slot in self._slots)

    def shard_health(self) -> List[ShardHealth]:
        """Per-shard liveness / restart / failure snapshot (after a supervision pass)."""

        self._supervise()
        return [
            ShardHealth(
                shard=shard,
                state=slot.state,
                alive=slot.proc is not None and slot.proc.is_alive(),
                rows=self._matrices[shard].size if shard < len(self._matrices) else 0,
                restarts=slot.restarts,
                failures=slot.failures,
                last_error=slot.last_error,
            )
            for shard, slot in enumerate(self._slots)
        ]

    def wait_until_healthy(self, timeout: float = 30.0) -> bool:
        """Drive supervision until every shard is live again; False on timeout.

        Chaos tests call this after injected kills to assert post-recovery
        parity; servers can call it from a maintenance pass.  Tombstoned
        shards never heal without a rebuild, so a pool with a dead shard
        returns False immediately.
        """

        deadline = time.monotonic() + timeout
        while True:
            self._supervise()
            if self.healthy:
                return True
            if any(slot.state == _DEAD for slot in self._slots):
                return False
            if time.monotonic() > deadline:
                return False
            time.sleep(0.02)

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessShardedIndex is closed")

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _meta_names(self, shard: int) -> Tuple[str, str]:
        return self._matrices[shard].segment_names

    def _spawn_process(self, shard: int) -> None:
        """Create the pipe + process for ``shard`` (caller sets the slot state)."""

        slot = self._slots[shard]
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn,),
            name=f"shard-worker-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only live child end now
        slot.proc, slot.conn = proc, parent_conn

    def _reap(self, slot: _WorkerSlot) -> None:
        """Kill (if needed) and release a slot's process and pipe."""

        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5.0)
            try:
                slot.proc.close()
            except Exception:  # pragma: no cover — already closed
                pass
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover
                pass
        slot.proc = None
        slot.conn = None

    def _handle_failure(self, shard: int, reason: str) -> None:
        """Reap a failed worker and schedule its restart (or tombstone it)."""

        slot = self._slots[shard]
        slot.failures += 1
        slot.last_error = reason
        slot.pending_seq = None
        slot.pending_meta = None
        self._reap(slot)
        if slot.restarts >= self.restart_budget:
            slot.state = _DEAD
            # Nobody maps this shard's outgrown segments anymore; stop
            # holding them for a re-attach that will never come.
            if shard < len(self._matrices):
                self._matrices[shard].release_retired()
            return
        slot.state = _DOWN
        backoff = min(
            self.restart_backoff * (2 ** slot.restarts), self.restart_backoff_cap
        )
        slot.next_restart_at = time.monotonic() + backoff

    def _restart(self, shard: int) -> None:
        """Respawn a down shard's worker and send its (non-blocking) re-attach."""

        slot = self._slots[shard]
        slot.restarts += 1
        self._spawn_process(shard)
        slot.state = _PENDING
        slot.pending_deadline = time.monotonic() + self.spawn_timeout
        try:
            slot.pending_seq = self._send(shard, ("attach", self._matrices[shard].meta()))
            slot.pending_meta = self._meta_names(shard)
        except _WorkerFailure:
            pass  # died on arrival: _handle_failure already rescheduled it

    def _poll_pending(self, shard: int) -> None:
        """Promote a respawned worker to live once its re-attach is acknowledged."""

        slot = self._slots[shard]
        conn = slot.conn
        try:
            while conn.poll(0):
                seq, status, payload = conn.recv()
                if seq != slot.pending_seq:
                    continue  # stale reply from a pre-restart round — discard
                if status != "ok":
                    self._handle_failure(shard, f"re-attach failed: {payload}")
                    return
                if slot.pending_meta != self._meta_names(shard):
                    # The segments grew (or were rebuilt) while the attach was
                    # in flight: chase the current generation before going live.
                    slot.pending_seq = self._send(
                        shard, ("attach", self._matrices[shard].meta())
                    )
                    slot.pending_meta = self._meta_names(shard)
                    slot.pending_deadline = time.monotonic() + self.spawn_timeout
                    return
                slot.state = _LIVE
                slot.acked_meta = slot.pending_meta
                slot.pending_seq = None
                slot.pending_meta = None
                self._matrices[shard].release_retired()
                return
        except (EOFError, OSError):
            self._handle_failure(shard, "worker died while re-attaching")
            return
        except _WorkerFailure:
            return
        if slot.proc is None or not slot.proc.is_alive():
            self._handle_failure(
                shard, f"worker died while re-attaching (exitcode {slot.proc.exitcode if slot.proc else None})"
            )
        elif time.monotonic() > slot.pending_deadline:
            self._handle_failure(shard, "respawned worker missed its attach deadline")

    def _supervise(self) -> None:
        """One supervision pass: detect silent deaths, promote respawns, restart."""

        now = time.monotonic()
        for shard, slot in enumerate(self._slots):
            if slot.state == _LIVE:
                if slot.proc is None or not slot.proc.is_alive():
                    self._handle_failure(
                        shard,
                        f"worker died (exitcode {slot.proc.exitcode if slot.proc else None})",
                    )
            if slot.state == _PENDING:
                self._poll_pending(shard)
            if slot.state == _DOWN and now >= slot.next_restart_at:
                self._restart(shard)
                if slot.state == _PENDING:
                    self._poll_pending(shard)

    def _send(self, shard: int, command: Tuple) -> int:
        slot = self._slots[shard]
        seq = self._next_seq()
        try:
            slot.conn.send((seq, *command))
        except (BrokenPipeError, OSError):
            self._handle_failure(shard, "worker pipe closed mid-send")
            raise _WorkerFailure(shard)
        return seq

    def _receive(
        self, shard: int, expected_seq: int, timeout: Optional[float] = None
    ) -> Any:
        slot = self._slots[shard]
        conn = slot.conn
        deadline = time.monotonic() + (self.response_timeout if timeout is None else timeout)
        while True:
            readable = conn.poll(0.02)
            if readable:
                try:
                    seq, status, payload = conn.recv()
                except (EOFError, OSError):
                    self._handle_failure(
                        shard, f"worker died mid-reply (exitcode {slot.proc.exitcode})"
                    )
                    raise _WorkerFailure(shard)
                if seq != expected_seq:
                    # A reply from a round this parent already gave up on
                    # (timeout, error, restart): discard instead of letting it
                    # poison the stream.
                    continue
                if status != "ok":
                    self._handle_failure(shard, f"worker error: {payload}")
                    raise _WorkerFailure(shard)
                return payload
            if not slot.proc.is_alive() and not conn.poll(0):
                self._handle_failure(
                    shard, f"worker died (exitcode {slot.proc.exitcode})"
                )
                raise _WorkerFailure(shard)
            if time.monotonic() > deadline:
                self._handle_failure(
                    shard, f"no reply within {self.response_timeout:.1f}s (worker hung)"
                )
                raise _WorkerFailure(shard)

    def _request(
        self, shard: int, command: Tuple, timeout: Optional[float] = None
    ) -> Any:
        return self._receive(shard, self._send(shard, command), timeout=timeout)

    def _shard_unavailable(self, shard: int) -> RuntimeError:
        slot = self._slots[shard]
        detail = f" ({slot.last_error})" if slot.last_error else ""
        if slot.state == _DEAD:
            return RuntimeError(
                f"shard worker {shard} exhausted its restart budget of "
                f"{self.restart_budget}{detail}; rebuild (or close) the index, or serve "
                "degraded with failure_policy='degrade'"
            )
        return RuntimeError(
            f"shard worker {shard} is {slot.state}{detail}; a restart is in "
            "progress — retry, wait_until_healthy(), or serve partial results "
            "with failure_policy='degrade'"
        )

    # ------------------------------------------------------------------ #
    # row preparation (the shared BruteForceIndex sequence, bit for bit)
    # ------------------------------------------------------------------ #
    def _prepare_rows(self, vectors: np.ndarray) -> np.ndarray:
        return prepare_rows(vectors, self.metric, self.dtype)

    def _prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=self.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be 1-d or 2-d")
        if queries.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        return prepare_rows(queries, self.metric, self.dtype)

    # ------------------------------------------------------------------ #
    # building / mutation (parent-side writes into shared memory)
    # ------------------------------------------------------------------ #
    def build(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> "ProcessShardedIndex":
        """Partition ``vectors`` round-robin into per-shard shared segments.

        Rebuilding reuses running workers: fresh rows land in the (possibly
        regrown) segments and one ``attach`` round-trip per worker re-maps
        them.  The first build spawns the workers, and a rebuild is also the
        operator-level recovery path: down or tombstoned shards are respawned
        with a reset restart budget.
        """

        self._require_open()
        vectors = np.asarray(vectors)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        if len(vectors) == 0:
            raise ValueError("cannot build an index from zero vectors")
        new_ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(None, new_ids)
        self._install_rows(self._prepare_rows(vectors), new_ids)
        self.epoch += 1
        return self

    def _install_rows(self, normalized: np.ndarray, new_ids: np.ndarray) -> None:
        """Deal *already prepared* rows into the shared segments and (re)attach.

        The shared store holds rows post-``prepare_rows`` — cast and, for
        cosine, normalized.  Snapshot restore feeds the persisted prepared
        rows straight back through here (re-normalizing normalized float32
        rows is not bit-stable), which is why preparation stays in the
        callers.  Does not bump ``epoch`` — callers decide (``build`` bumps,
        restore pins the saved epoch).
        """

        dim = int(normalized.shape[1])
        if self._matrices and dim != self._dim:
            # Segment width changed: retire every old store, start fresh.
            for matrix in self._matrices:
                matrix.close()
            self._matrices = []
        self._dim = dim
        self._ids = new_ids
        self._id_order = None

        if not self._matrices:
            self._matrices = [
                SharedMatrix(dim, self.dtype, self.initial_capacity)
                for _ in range(self.num_shards)
            ]
        if not self._slots:
            self._slots = [_WorkerSlot() for _ in range(self.num_shards)]
            for shard in range(self.num_shards):
                self._spawn_process(shard)
                self._slots[shard].state = _LIVE
        else:
            # A rebuild revives every unhealthy shard with a fresh budget.
            for shard, slot in enumerate(self._slots):
                if slot.state == _LIVE and slot.proc is not None and slot.proc.is_alive():
                    continue
                self._reap(slot)
                slot.restarts = 0
                slot.failures = 0
                slot.pending_seq = None
                slot.pending_meta = None
                self._spawn_process(shard)
                slot.state = _LIVE
        for shard in range(self.num_shards):
            matrix = self._matrices[shard]
            matrix.reset()
            matrix.append(normalized[shard :: self.num_shards], new_ids[shard :: self.num_shards])
        # One attach round-trip covers first builds, re-builds and any
        # capacity growth in one go; scatter first, then gather the acks.
        sent: Dict[int, int] = {}
        for shard in range(self.num_shards):
            try:
                sent[shard] = self._send(shard, ("attach", self._matrices[shard].meta()))
            except _WorkerFailure:
                if self.failure_policy == "raise":
                    raise self._shard_unavailable(shard) from None
        for shard, seq in sent.items():
            try:
                self._receive(shard, seq, timeout=self.spawn_timeout)
            except _WorkerFailure:
                if self.failure_policy == "raise":
                    raise self._shard_unavailable(shard) from None
                continue
            slot = self._slots[shard]
            slot.acked_meta = self._meta_names(shard)
            self._matrices[shard].release_retired()

    # ------------------------------------------------------------------ #
    # persistence (snapshot save / cold-start restore)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Serializable state tree for :mod:`repro.core.snapshot`.

        Rows are copied out of the shared segments in global order, *as
        stored* (already prepared); :meth:`restore_state` installs them
        without re-preparation so the round-trip is bit-identical.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        vectors = np.empty((len(self._ids), self._dim), dtype=self.dtype)
        for shard, matrix in enumerate(self._matrices):
            shard_rows, _ = matrix.snapshot_rows()
            vectors[shard :: self.num_shards] = shard_rows
        return {
            "kind": "process_sharded",
            "meta": {
                "num_shards": self.num_shards,
                "metric": self.metric,
                "dtype": self.dtype.name,
                "failure_policy": self.failure_policy,
                "epoch": self.epoch,
            },
            "arrays": {"vectors": vectors, "ids": self._ids},
        }

    @classmethod
    def restore_state(cls, state: dict) -> "ProcessShardedIndex":
        """Cold-start a worker pool from :meth:`snapshot_state` output.

        Spawns fresh workers over fresh shared segments holding the exact
        persisted bytes; supervision knobs take their defaults.
        """

        meta = state["meta"]
        index = cls(
            num_shards=int(meta["num_shards"]),
            metric=meta["metric"],
            dtype=np.dtype(meta["dtype"]),
            failure_policy=meta["failure_policy"],
        )
        arrays = state["arrays"]
        new_ids = np.asarray(arrays["ids"], dtype=np.int64).copy()
        check_new_ids(None, new_ids)
        prepared = np.asarray(arrays["vectors"], dtype=index.dtype).copy()
        if prepared.ndim != 2 or len(prepared) != len(new_ids) or not len(prepared):
            raise ValueError("snapshot rows and ids are inconsistent")
        index._install_rows(prepared, new_ids)
        index.epoch = int(meta["epoch"])
        return index

    def update(self, position: int, vector: np.ndarray) -> None:
        """Replace one row on its owning shard (batch-of-one ``update_batch``)."""

        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError("vector dimensionality mismatch")
        self.update_batch(np.asarray([position], dtype=np.int64), vector[None, :])

    def update_batch(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Overwrite rows in place — workers see the new bytes immediately.

        Pure shared-memory writes: no worker round-trip at all (down workers
        therefore never miss an update — the bytes are simply there when they
        re-attach).  Boolean masking preserves arrival order, so
        duplicate-position semantics (last write wins) match the other
        backends.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or len(vectors) != len(positions):
            raise ValueError("vectors must be 2-d with one row per position")
        if vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        if not len(positions):
            return
        if positions.min() < 0 or positions.max() >= len(self._ids):
            raise ValueError("position out of range")
        normalized = self._prepare_rows(vectors)
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            self._matrices[shard].set_rows(positions[mask] // self.num_shards, normalized[mask])
        self.epoch += 1

    def add(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> "ProcessShardedIndex":
        """Append rows, continuing the round-robin deal so shards stay balanced.

        Appends are shared-memory writes too; only when a shard's segments
        double does its worker get an ``attach`` command (the outgrown
        segments are unlinked after the ack).  A non-live shard skips that
        round-trip: its respawn always attaches the then-current segments, so
        growth and recovery compose.  Id uniqueness is validated globally, as
        on the thread backend.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        vectors = np.asarray(vectors)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        start = len(self._ids)
        new_ids = (
            np.arange(start, start + len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(self._ids, new_ids)
        normalized = self._prepare_rows(vectors)
        positions = np.arange(start, start + len(vectors), dtype=np.int64)
        self._supervise()
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            grown = self._matrices[shard].append(normalized[mask], new_ids[mask])
            if grown is None:
                continue
            slot = self._slots[shard]
            if slot.state != _LIVE:
                # The worker is being respawned (or is tombstoned): its
                # re-attach targets the current segments, and the retired
                # ones are released when it comes live.
                continue
            try:
                self._request(shard, ("attach", grown))
            except _WorkerFailure:
                if self.failure_policy == "raise":
                    raise self._shard_unavailable(shard) from None
                continue
            slot.acked_meta = self._meta_names(shard)
            self._matrices[shard].release_retired()
        self._ids = np.concatenate([self._ids, new_ids])
        self._id_order = None
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # scatter-gather querying (single-query search comes from the mixin)
    # ------------------------------------------------------------------ #
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> SearchResults:
        """Scatter the prepared query block to every live worker, gather, merge.

        The workers' matmul + top-k run concurrently on separate cores; the
        parent only pays query prep (once, not per shard), pickling, and the
        final merge re-rank.  Shards that are down (worker being respawned or
        tombstoned) either fail the request (``failure_policy="raise"``) or
        are skipped, with the merged result tagged
        ``SearchResults.degraded=True`` and counted in ``degraded_requests``.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = self._prepare_queries(queries)
        if exclude_per_query is not None and len(exclude_per_query) != len(queries):
            raise ValueError("exclude_per_query must have one entry per query")
        exclusions = (
            None
            if exclude_per_query is None
            else [
                None if exclude is None else np.asarray(exclude, dtype=np.int64)
                for exclude in exclude_per_query
            ]
        )
        self._supervise()
        populated = [
            shard for shard in range(self.num_shards) if self._matrices[shard].size
        ]
        if self.failure_policy == "raise":
            for shard in populated:
                if self._slots[shard].state != _LIVE:
                    raise self._shard_unavailable(shard)
        sent: Dict[int, int] = {}
        for shard in populated:
            if self._slots[shard].state != _LIVE:
                continue
            try:
                sent[shard] = self._send(
                    shard, ("search", queries, k, exclusions, self._matrices[shard].size)
                )
            except _WorkerFailure:
                if self.failure_policy == "raise":
                    raise self._shard_unavailable(shard) from None
        partials = []
        for shard, seq in sent.items():
            try:
                partials.append(self._receive(shard, seq))
            except _WorkerFailure:
                if self.failure_policy == "raise":
                    raise self._shard_unavailable(shard) from None
        degraded = len(partials) < len(populated)
        if degraded:
            self.degraded_requests += 1
        if not partials:
            empty = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self.dtype),
            )
            return SearchResults(
                [(empty[0].copy(), empty[1].copy()) for _ in range(len(queries))],
                degraded=True,
            )
        if len(partials) == 1:
            return SearchResults(partials[0], degraded=degraded)
        return SearchResults(
            [self._merge_row(partials, row, k) for row in range(len(queries))],
            degraded=degraded,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, join them, unlink every shared segment.

        Idempotent but terminal: unlike the thread backend there is nothing
        lazy to recreate — a closed index raises on every subsequent call.
        Dead workers are skipped gracefully; stragglers are terminated and,
        if even SIGTERM cannot unwedge them, killed outright — a worker can
        never outlive the parent or keep a segment pinned.
        """

        slots, self._slots = self._slots, []
        matrices, self._matrices = self._matrices, []
        for slot in slots:
            if slot.conn is None:
                continue
            try:
                slot.conn.send((self._next_seq(), "stop"))
            except (BrokenPipeError, OSError):
                pass  # already dead — nothing to stop
        for slot in slots:
            proc = slot.proc
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — stuck worker safety net
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — SIGTERM ignored: escalate
                proc.kill()
                proc.join(timeout=5.0)
            try:
                proc.close()
            except Exception:  # pragma: no cover
                pass
        for slot in slots:
            if slot.conn is None:
                continue
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover
                pass
        for matrix in matrices:
            matrix.close()
        self._closed = True
