"""Process-level shard workers over a shared-memory vector store.

:class:`~repro.ann.sharded.ShardedIndex` fans per-shard searches out over a
``ThreadPoolExecutor`` — the in-process *rehearsal* for this module.  Python
threads only overlap inside BLAS (the GIL serializes everything else: query
prep, exclusion masking, ``top_k_rows`` selection, result assembly), so the
thread backend buys latency hiding but not real multi-core throughput.

:class:`ProcessShardedIndex` is the deployment-shaped version: one persistent
**worker process per shard**, each mapping its shard of the vector matrix
from a :class:`~repro.ann.shm.SharedMatrix` — the same bytes the parent
writes, zero-copy.  The division of labor:

* **Parent** owns all mutation.  ``build`` / ``add`` / ``update_batch`` write
  normalized rows straight into the shared segments, routed by the same
  ``p % S`` round-robin arithmetic as the thread backend, and bump ``epoch``
  so :class:`~repro.core.cache.ServingCache` invalidation works unchanged.
  Workers never hear about ordinary mutations: the live row count rides along
  with every search command, and only a capacity-doubling growth triggers a
  re-attach round-trip.
* **Workers** answer ``search`` commands: slice a ``(size, dim)`` view of
  their shared shard, run the very same score matmul + exclusion masking +
  :func:`~repro.ann.brute_force.top_k_rows` selection a per-shard
  ``BruteForceIndex`` would, and ship the per-shard top-k back over the
  command pipe.  The parent scatters the prepared query block to every live
  worker, gathers, and merges with the identical
  :meth:`~repro.ann.sharded.ScatterGatherMixin._merge_row` re-rank — so
  results are **bit-identical** to the unsharded ``BruteForceIndex`` (the
  single-row-shard gemv caveat of the thread backend applies equally).

Workers are spawn-safe (the worker entrypoint is a module-level function and
all hand-off state is picklable or named shared memory), lifecycle is
explicit — ``close()`` stops the workers, joins them, and unlinks every
segment; the context manager and ``__del__`` call it — and a worker death
surfaces as a clear ``RuntimeError`` instead of a hang.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .brute_force import apply_exclusions, check_new_ids, prepare_rows, top_k_rows
from .sharded import ScatterGatherMixin
from .shm import SharedMatrix

__all__ = ["ProcessShardedIndex"]

_SUPPORTED_DTYPES = (np.float32, np.float64)


def _execute(matrix: Optional[SharedMatrix], command: Tuple) -> Tuple[Tuple, Optional[SharedMatrix]]:
    """One worker command → ``(response, matrix)``; pure, so tests run it in-process.

    ``response`` is ``("ok", payload)`` or ``("error", message)``.  The
    returned matrix replaces the worker's current one (the ``attach`` command
    swaps in freshly mapped segments after a capacity doubling).
    """

    op = command[0]
    if op == "ping":
        return ("ok", "pong"), matrix
    if op == "attach":
        if matrix is not None:
            matrix.close()
        return ("ok", True), SharedMatrix.attach(command[1])
    if op == "search":
        _, queries, k, exclusions, size = command
        if matrix is None:
            return ("error", "worker has no attached shard"), matrix
        vectors, ids = matrix.view(size)
        # Exactly what a per-shard BruteForceIndex does with pre-normalized
        # rows: one matmul, exclusion masking, deterministic top-k.  Queries
        # arrive already prepared (cast + normalized once in the parent).
        scores = queries @ vectors.T
        apply_exclusions(scores, ids, exclusions)
        return ("ok", top_k_rows(scores, k, ids)), matrix
    return ("error", f"unknown command {op!r}"), matrix


def _shard_worker_main(conn) -> None:  # pragma: no cover
    """Worker loop (runs in spawned child processes — covered by _execute tests).

    Workers start bare; the parent's first ``attach`` command maps their
    shard's shared segments.
    """

    matrix: Optional[SharedMatrix] = None
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            if command[0] == "stop":
                break
            try:
                response, matrix = _execute(matrix, command)
            except Exception as exc:
                response = ("error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(response)
            except (BrokenPipeError, OSError):
                break
    finally:
        if matrix is not None:
            matrix.close()
        conn.close()


class ProcessShardedIndex(ScatterGatherMixin):
    """Scatter-gather top-k search over S persistent worker *processes*.

    Drop-in for :class:`~repro.ann.sharded.ShardedIndex` where the fan-out
    must actually use multiple cores.  Results are bit-identical to the
    unsharded :class:`~repro.ann.brute_force.BruteForceIndex`; mutations are
    routed by the same ``p % S`` arithmetic and bump ``epoch`` for the
    serving cache.  Unlike the thread backend, ``close()`` is terminal: the
    workers and shared segments are gone, and any further call raises.

    Parameters
    ----------
    num_shards:
        Worker processes (one shard of the vector matrix each).
    metric / dtype:
        As on ``BruteForceIndex`` — ``"cosine"`` (rows L2-normalized once at
        write time) or ``"inner"``; float32 by default.
    start_method:
        ``multiprocessing`` start method for the workers.  The default
        ``"spawn"`` is safe everywhere (no forked locks, works under
        coverage); ``"fork"``/``"forkserver"`` start faster where available.
    initial_capacity:
        Rows each shard's shared segments start with; appends double it
        (workers re-attach on growth).
    response_timeout:
        Seconds to wait for a worker's reply before declaring it hung.
    """

    def __init__(
        self,
        num_shards: int = 4,
        metric: str = "cosine",
        dtype: np.dtype = np.float32,
        start_method: str = "spawn",
        initial_capacity: int = 64,
        response_timeout: float = 60.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if metric not in ("cosine", "inner"):
            raise ValueError("metric must be 'cosine' or 'inner'")
        dtype = np.dtype(dtype)
        if dtype.type not in _SUPPORTED_DTYPES:
            raise ValueError("dtype must be float32 or float64")
        if initial_capacity <= 0:
            raise ValueError("initial_capacity must be positive")
        if response_timeout <= 0:
            raise ValueError("response_timeout must be positive")
        self.num_shards = num_shards
        self.metric = metric
        self.dtype = dtype
        self.initial_capacity = initial_capacity
        self.response_timeout = response_timeout
        #: monotonically increasing mutation counter: bumped by every build /
        #: add / update / update_batch, so serving caches can validate stored
        #: search results in O(1) (see :mod:`repro.core.cache`).
        self.epoch = 0
        self._ctx = multiprocessing.get_context(start_method)
        self._ids: Optional[np.ndarray] = None
        self._dim: int = 0
        self._id_order: Optional[np.ndarray] = None
        self._matrices: List[SharedMatrix] = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List = []
        self._closed = False
        # Set when the worker protocol desynchronizes (a worker died, hung
        # past the timeout, or answered with an error): replies for the
        # failed round may still sit unread in the pipes, so serving another
        # request could silently pair a new query with a stale reply.  Every
        # subsequent call refuses until close().
        self._failed = False

    # ------------------------------------------------------------------ #
    # worker pool plumbing
    # ------------------------------------------------------------------ #
    @property
    def workers_alive(self) -> int:
        """How many shard workers are currently running (0 before build/after close)."""

        return sum(1 for proc in self._procs if proc.is_alive())

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessShardedIndex is closed")
        if self._failed:
            raise RuntimeError(
                "ProcessShardedIndex is in a failed state (a shard worker "
                "died, hung, or errored; its command pipe may hold stale "
                "replies) — close() the index and rebuild"
            )

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        for shard in range(self.num_shards):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_shard_worker_main,
                args=(child_conn,),
                name=f"shard-worker-{shard}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # the worker holds the only live child end now
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _worker_died(self, shard: int) -> None:
        exitcode = self._procs[shard].exitcode if shard < len(self._procs) else None
        self._failed = True
        raise RuntimeError(
            f"shard worker {shard} died (exitcode {exitcode}); "
            "close() the index and rebuild — its shard can no longer answer"
        )

    def _send(self, shard: int, command: Tuple) -> None:
        try:
            self._conns[shard].send(command)
        except (BrokenPipeError, OSError):
            self._worker_died(shard)

    def _receive(self, shard: int):
        conn = self._conns[shard]
        deadline = time.monotonic() + self.response_timeout
        while not conn.poll(0.05):
            if not self._procs[shard].is_alive():
                self._worker_died(shard)
            if time.monotonic() > deadline:
                # The late reply (and the other shards' unread ones) would
                # desynchronize the pipes — refuse further serving.
                self._failed = True
                raise RuntimeError(
                    f"shard worker {shard} did not answer within "
                    f"{self.response_timeout:.0f}s; close() the index and rebuild"
                )
        try:
            status, payload = conn.recv()
        except (EOFError, OSError):
            self._worker_died(shard)
        if status != "ok":
            # Unexpected by construction (the parent validates before
            # sending), and sibling shards' replies are still queued — same
            # desync hazard as a timeout.
            self._failed = True
            raise RuntimeError(f"shard worker {shard} failed: {payload}")
        return payload

    def _request(self, shard: int, command: Tuple):
        self._send(shard, command)
        return self._receive(shard)

    # ------------------------------------------------------------------ #
    # row preparation (the shared BruteForceIndex sequence, bit for bit)
    # ------------------------------------------------------------------ #
    def _prepare_rows(self, vectors: np.ndarray) -> np.ndarray:
        return prepare_rows(vectors, self.metric, self.dtype)

    def _prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=self.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be 1-d or 2-d")
        if queries.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        return prepare_rows(queries, self.metric, self.dtype)

    # ------------------------------------------------------------------ #
    # building / mutation (parent-side writes into shared memory)
    # ------------------------------------------------------------------ #
    def build(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> "ProcessShardedIndex":
        """Partition ``vectors`` round-robin into per-shard shared segments.

        Rebuilding reuses running workers: fresh rows land in the (possibly
        regrown) segments and one ``attach`` round-trip per worker re-maps
        them.  The first build spawns the workers.
        """

        self._require_open()
        vectors = np.asarray(vectors)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        if len(vectors) == 0:
            raise ValueError("cannot build an index from zero vectors")
        new_ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(None, new_ids)

        dim = int(vectors.shape[1])
        if self._matrices and dim != self._dim:
            # Segment width changed: retire every old store, start fresh.
            for matrix in self._matrices:
                matrix.close()
            self._matrices = []
        self._dim = dim
        self._ids = new_ids
        self._id_order = None
        normalized = self._prepare_rows(vectors)

        if not self._matrices:
            self._matrices = [
                SharedMatrix(dim, self.dtype, self.initial_capacity)
                for _ in range(self.num_shards)
            ]
        self._ensure_workers()
        for shard in range(self.num_shards):
            matrix = self._matrices[shard]
            matrix.reset()
            matrix.append(normalized[shard :: self.num_shards], new_ids[shard :: self.num_shards])
        # One attach round-trip covers first builds, re-builds and any
        # capacity growth in one go; scatter first, then gather the acks.
        for shard in range(self.num_shards):
            self._send(shard, ("attach", self._matrices[shard].meta()))
        for shard in range(self.num_shards):
            self._receive(shard)
            self._matrices[shard].release_retired()
        self.epoch += 1
        return self

    def update(self, position: int, vector: np.ndarray) -> None:
        """Replace one row on its owning shard (batch-of-one ``update_batch``)."""

        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError("vector dimensionality mismatch")
        self.update_batch(np.asarray([position], dtype=np.int64), vector[None, :])

    def update_batch(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Overwrite rows in place — workers see the new bytes immediately.

        Pure shared-memory writes: no worker round-trip at all.  Boolean
        masking preserves arrival order, so duplicate-position semantics
        (last write wins) match the other backends.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or len(vectors) != len(positions):
            raise ValueError("vectors must be 2-d with one row per position")
        if vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        if not len(positions):
            return
        if positions.min() < 0 or positions.max() >= len(self._ids):
            raise ValueError("position out of range")
        normalized = self._prepare_rows(vectors)
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            self._matrices[shard].set_rows(positions[mask] // self.num_shards, normalized[mask])
        self.epoch += 1

    def add(
        self, vectors: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> "ProcessShardedIndex":
        """Append rows, continuing the round-robin deal so shards stay balanced.

        Appends are shared-memory writes too; only when a shard's segments
        double does its worker get an ``attach`` command (the outgrown
        segments are unlinked after the ack).  Id uniqueness is validated
        globally, as on the thread backend.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        vectors = np.asarray(vectors)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        start = len(self._ids)
        new_ids = (
            np.arange(start, start + len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(self._ids, new_ids)
        normalized = self._prepare_rows(vectors)
        positions = np.arange(start, start + len(vectors), dtype=np.int64)
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            grown = self._matrices[shard].append(normalized[mask], new_ids[mask])
            if grown is not None:
                self._request(shard, ("attach", grown))
                self._matrices[shard].release_retired()
        self._ids = np.concatenate([self._ids, new_ids])
        self._id_order = None
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # scatter-gather querying (single-query search comes from the mixin)
    # ------------------------------------------------------------------ #
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Scatter the prepared query block to every live worker, gather, merge.

        The workers' matmul + top-k run concurrently on separate cores; the
        parent only pays query prep (once, not per shard), pickling, and the
        final merge re-rank.
        """

        self._require_open()
        if self._ids is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = self._prepare_queries(queries)
        if exclude_per_query is not None and len(exclude_per_query) != len(queries):
            raise ValueError("exclude_per_query must have one entry per query")
        exclusions = (
            None
            if exclude_per_query is None
            else [
                None if exclude is None else np.asarray(exclude, dtype=np.int64)
                for exclude in exclude_per_query
            ]
        )
        live = [shard for shard in range(self.num_shards) if self._matrices[shard].size]
        for shard in live:
            self._send(
                shard, ("search", queries, k, exclusions, self._matrices[shard].size)
            )
        partials = [self._receive(shard) for shard in live]
        if len(partials) == 1:
            return partials[0]
        return [self._merge_row(partials, row, k) for row in range(len(queries))]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers, join them, unlink every shared segment.

        Idempotent but terminal: unlike the thread backend there is nothing
        lazy to recreate — a closed index raises on every subsequent call.
        Dead workers are skipped gracefully; stragglers are terminated after
        a grace period so close can never hang.
        """

        procs, self._procs = self._procs, []
        conns, self._conns = self._conns, []
        matrices, self._matrices = self._matrices, []
        for conn in conns:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass  # already dead — nothing to stop
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover — stuck worker safety net
                proc.terminate()
                proc.join(timeout=5.0)
            try:
                proc.close()
            except Exception:  # pragma: no cover
                pass
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for matrix in matrices:
            matrix.close()
        self._closed = True
