"""Shared-memory vector store backing the process-level shard workers.

:class:`SharedMatrix` keeps one shard's worth of index state — a ``(capacity,
dim)`` float row matrix plus the matching ``(capacity,)`` int64 global-id
array — in two POSIX shared-memory segments, so worker *processes* can map the
very same bytes the serving parent writes, zero-copy:

* the **owner** (the parent's :class:`~repro.ann.process_sharded.ProcessShardedIndex`)
  creates the segments, appends/overwrites rows in place, and is the only side
  that ever unlinks them;
* **attachers** (the shard workers) map the segments read-only-by-convention
  and slice a ``(size, dim)`` view per request — the live row count travels
  with every search command, so ordinary appends and row updates need no
  worker round-trip at all.

Growth works by *re-attach on capacity doubling*: when an append outgrows the
segments, the owner allocates doubled segments, copies the live rows, and
keeps the outgrown segments alive in a retired list until every worker has
acknowledged attaching the new ones (:meth:`release_retired`); only then are
the old segments closed and unlinked.  Mapped pages stay valid across the
unlink on POSIX, so in-flight readers of the old segments are never yanked.

Resource-tracker note: on the Pythons this repo supports (< 3.13),
``SharedMemory`` registers a segment with the ``multiprocessing`` resource
tracker on *attach* as well as on create.  That is harmless — and must be
left alone — in this design: the shard workers are always *children* of the
owning process, so the whole tree shares one tracker whose per-type cache is
a set (the attach-side re-register collapses into the owner's entry, and the
owner's ``unlink`` unregisters it exactly once).  Unregistering on attach —
the workaround needed when unrelated processes attach — would here strip the
owner's own entry and turn every unlink into tracker noise.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SharedMatrix"]

_SUPPORTED_DTYPES = (np.float32, np.float64)


class SharedMatrix:
    """Growable ``(rows, ids)`` store in shared memory (one per shard).

    Create one with the constructor (owner side) or :meth:`attach` (worker
    side).  The owner tracks the live row count in ``size``; attachers are
    stateless about it and pass the count into :meth:`view` per request.
    """

    def __init__(
        self,
        dim: int,
        dtype: np.dtype = np.float32,
        capacity: int = 64,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        dtype = np.dtype(dtype)
        if dtype.type not in _SUPPORTED_DTYPES:
            raise ValueError("dtype must be float32 or float64")
        self.dim = dim
        self.dtype = dtype
        self.capacity = capacity
        self.size = 0
        self._owner = True
        self._retired: List[shared_memory.SharedMemory] = []
        self._allocate(capacity)

    def _allocate(self, capacity: int) -> None:
        self._vec_shm = shared_memory.SharedMemory(
            create=True, size=capacity * self.dim * self.dtype.itemsize
        )
        self._ids_shm = shared_memory.SharedMemory(create=True, size=capacity * 8)
        self._map_views(capacity)

    def _map_views(self, capacity: int) -> None:
        self._vectors = np.ndarray(
            (capacity, self.dim), dtype=self.dtype, buffer=self._vec_shm.buf
        )
        self._ids = np.ndarray((capacity,), dtype=np.int64, buffer=self._ids_shm.buf)

    @classmethod
    def attach(cls, meta: Dict[str, object]) -> "SharedMatrix":
        """Map an owner's segments from their :meth:`meta` description.

        Attachers never unlink: :meth:`close` only drops the mapping, and
        ownership (the unlink duty) stays with the creating process.  Meant
        for processes in the owner's process tree — see the module docstring
        for the resource-tracker reasoning.
        """

        self = object.__new__(cls)
        self.dim = int(meta["dim"])
        self.dtype = np.dtype(str(meta["dtype"]))
        self.capacity = int(meta["capacity"])
        self.size = 0
        self._owner = False
        self._retired = []
        self._vec_shm = shared_memory.SharedMemory(name=str(meta["vectors"]))
        self._ids_shm = shared_memory.SharedMemory(name=str(meta["ids"]))
        self._map_views(self.capacity)
        return self

    @property
    def segment_names(self) -> Tuple[str, str]:
        """The current ``(vectors, ids)`` segment names.

        A cheap identity for the store's current *generation*: growth swaps
        both names, so supervisors comparing the names they sent in an
        ``attach`` against the current ones can tell whether a re-attach is
        already stale (see
        :class:`~repro.ann.process_sharded.ProcessShardedIndex`).
        """

        return self._vec_shm.name, self._ids_shm.name

    def meta(self) -> Dict[str, object]:
        """Everything an attacher needs to map the current segments."""

        return {
            "vectors": self._vec_shm.name,
            "ids": self._ids_shm.name,
            "capacity": self.capacity,
            "dim": self.dim,
            "dtype": self.dtype.name,
        }

    # ------------------------------------------------------------------ #
    # owner-side mutation
    # ------------------------------------------------------------------ #
    def view(self, size: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, ids)`` views of the first ``size`` rows (default: own count)."""

        size = self.size if size is None else int(size)
        if not 0 <= size <= self.capacity:
            raise ValueError("size exceeds the mapped capacity")
        return self._vectors[:size], self._ids[:size]

    def reset(self) -> None:
        """Drop every row (a rebuild reuses the segments; capacity is kept)."""

        self.size = 0

    def snapshot_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Private copies of the live ``(rows, ids)`` for snapshot persistence.

        Copies, not views: snapshot serialization happens while workers may
        still be writing result buffers elsewhere, and the returned arrays
        must stay valid after the segments are closed or regrown.
        """

        vectors, ids = self.view()
        return vectors.copy(), ids.copy()

    def append(
        self, vectors: np.ndarray, ids: Sequence[int]
    ) -> Optional[Dict[str, object]]:
        """Append rows; returns the *new* :meth:`meta` when the store grew.

        A non-``None`` return means the rows now live in fresh (doubled)
        segments: the caller must push the returned meta to every attacher
        and then call :meth:`release_retired` to unlink the outgrown ones.
        """

        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError("vectors must be 2-d with rows of width dim")
        if len(vectors) != len(ids):
            raise ValueError("ids must match the number of vectors")
        grown: Optional[Dict[str, object]] = None
        needed = self.size + len(vectors)
        if needed > self.capacity:
            self._grow(needed)
            grown = self.meta()
        self._vectors[self.size : needed] = vectors
        self._ids[self.size : needed] = np.asarray(ids, dtype=np.int64)
        self.size = needed
        return grown

    def set_rows(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Overwrite rows in place (duplicate positions: last write wins)."""

        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError("vectors must be 2-d with rows of width dim")
        if len(positions) != len(vectors):
            raise ValueError("vectors must have one row per position")
        if len(positions) == 0:
            return
        if positions.min() < 0 or positions.max() >= self.size:
            raise ValueError("position out of range")
        self._vectors[positions] = vectors

    def _grow(self, min_capacity: int) -> None:
        if not self._owner:
            raise RuntimeError("only the owning process may grow a SharedMatrix")
        new_capacity = max(self.capacity * 2, min_capacity)
        old_vectors, old_ids = self._vectors[: self.size].copy(), self._ids[: self.size].copy()
        # Outgrown segments stay mapped (and linked) until every attacher has
        # switched to the new ones — see release_retired().
        self._release_views()
        self._retired.extend([self._vec_shm, self._ids_shm])
        self.capacity = new_capacity
        self._allocate(new_capacity)
        self._vectors[: self.size] = old_vectors
        self._ids[: self.size] = old_ids

    def release_retired(self) -> None:
        """Close + unlink segments outgrown by :meth:`_grow` (owner only)."""

        retired, self._retired = self._retired, []
        for segment in retired:
            self._close_segment(segment, unlink=self._owner)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @staticmethod
    def _close_segment(segment: shared_memory.SharedMemory, unlink: bool) -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover — a caller still holds a view
            pass
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    def _release_views(self) -> None:
        self._vectors = None
        self._ids = None

    def close(self) -> None:
        """Detach the mappings; the owner also unlinks.  Idempotent."""

        if self._vec_shm is None:
            return
        self._release_views()
        self.release_retired()
        self._close_segment(self._vec_shm, unlink=self._owner)
        self._close_segment(self._ids_shm, unlink=self._owner)
        self._vec_shm = None
        self._ids_shm = None

    def __enter__(self) -> "SharedMatrix":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown; nothing useful to do
