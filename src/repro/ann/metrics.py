"""Vector similarity metrics for neighbor search.

The user-based component of SCCF measures similarity between user
representations with the cosine (eq. 11); the inner product is also provided
because UI scoring (eq. 10) uses dot products and some ablations search with
it directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_similarity", "inner_product", "normalize_rows", "pairwise_similarity"]

_EPS = 1e-12


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize each row; all-zero rows are left as zeros."""

    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        norm = np.linalg.norm(matrix)
        return matrix / norm if norm > _EPS else matrix.copy()
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms > _EPS, norms, 1.0)
    return matrix / norms


def cosine_similarity(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity between ``query`` (1-d or 2-d) and every row of ``matrix``."""

    query = np.asarray(query, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    normalized_matrix = normalize_rows(matrix)
    if query.ndim == 1:
        return normalize_rows(query) @ normalized_matrix.T
    return normalize_rows(query) @ normalized_matrix.T


def inner_product(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Raw inner product between ``query`` and every row of ``matrix``."""

    query = np.asarray(query, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    return query @ matrix.T


def pairwise_similarity(matrix: np.ndarray, metric: str = "cosine") -> np.ndarray:
    """Full similarity matrix between all rows of ``matrix``."""

    if metric == "cosine":
        normalized = normalize_rows(matrix)
        return normalized @ normalized.T
    if metric == "inner":
        matrix = np.asarray(matrix, dtype=np.float64)
        return matrix @ matrix.T
    raise ValueError(f"unknown metric {metric!r}; use 'cosine' or 'inner'")
