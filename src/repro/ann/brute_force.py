"""Exact nearest-neighbor index over dense vectors.

This plays the role Faiss plays in the paper's production deployment: given
the current user embedding (inferred on the fly), return the top-β most
similar users.  At the scales this reproduction runs, a vectorized exact scan
is already sub-millisecond; :class:`repro.ann.ivf.IVFIndex` provides the
approximate variant for the scalability ablation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .metrics import cosine_similarity, inner_product, normalize_rows

__all__ = ["BruteForceIndex"]


class BruteForceIndex:
    """Exact top-k search with cosine or inner-product similarity."""

    def __init__(self, metric: str = "cosine") -> None:
        if metric not in ("cosine", "inner"):
            raise ValueError("metric must be 'cosine' or 'inner'")
        self.metric = metric
        self._vectors: Optional[np.ndarray] = None
        self._normalized: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # building / updating
    # ------------------------------------------------------------------ #
    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "BruteForceIndex":
        """Index ``vectors`` (rows); ``ids`` default to row positions."""

        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        self._vectors = vectors.copy()
        self._normalized = normalize_rows(vectors) if self.metric == "cosine" else self._vectors
        self._ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(self._ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        return self

    def update(self, position: int, vector: np.ndarray) -> None:
        """Overwrite one indexed vector in place (real-time embedding refresh)."""

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self._vectors.shape[1],):
            raise ValueError("vector dimensionality mismatch")
        self._vectors[position] = vector
        if self.metric == "cosine":
            self._normalized[position] = normalize_rows(vector)
        else:
            self._normalized = self._vectors

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def dim(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[1]

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, similarities)`` of the top-``k`` neighbors of ``query``.

        ``exclude`` lists ids that must not appear in the result — e.g. the
        query user herself, since the paper defines ``u ∉ N_u``.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if self.metric == "cosine":
            scores = cosine_similarity(query, self._vectors)
        else:
            scores = inner_product(query, self._vectors)

        if exclude is not None and len(exclude):
            exclude = np.asarray(exclude, dtype=np.int64)
            mask = np.isin(self._ids, exclude)
            scores = np.where(mask, -np.inf, scores)

        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        result_scores = scores[order]
        valid = np.isfinite(result_scores)
        return self._ids[order][valid], result_scores[valid]
