"""Exact nearest-neighbor index over dense vectors.

This plays the role Faiss plays in the paper's production deployment: given
the current user embedding (inferred on the fly), return the top-β most
similar users.  At the scales this reproduction runs, a vectorized exact scan
is already sub-millisecond; :class:`repro.ann.ivf.IVFIndex` provides the
approximate variant for the scalability ablation.

Like Faiss, the index stores vectors in float32 by default (half the memory
traffic of float64 and the dtype BLAS batches fastest); pass
``dtype=np.float64`` for full-precision scoring.  Row normalization happens
once at :meth:`build` time — queries score against the cached normalized
matrix, never re-normalizing the index — and :meth:`search_batch` answers Q
queries with a single ``(Q×D)·(D×N)`` matmul plus a per-row ``argpartition``,
which is what makes batched serving an order of magnitude faster than the
query-at-a-time loop.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .metrics import normalize_rows

__all__ = ["BruteForceIndex", "prepare_rows", "top_k_rows"]

_SUPPORTED_DTYPES = (np.float32, np.float64)


def check_new_ids(existing: Optional[np.ndarray], new_ids: np.ndarray) -> None:
    """Reject id collisions: duplicate ids break per-query exclusion masking.

    ``apply_exclusions`` masks by id equality, so two rows sharing an id can
    never be excluded independently — an ``exclude=[u]`` meant for the stale
    row would silently hide the fresh one too.  Raises ``ValueError`` when
    ``new_ids`` contains internal duplicates or collides with ``existing``.
    """

    if len(np.unique(new_ids)) != len(new_ids):
        raise ValueError("ids must be unique (duplicate ids break exclusion masking)")
    if existing is not None and len(existing) and np.isin(new_ids, existing).any():
        raise ValueError(
            "ids collide with ids already in the index "
            "(duplicate ids break exclusion masking)"
        )


def prepare_rows(vectors: np.ndarray, metric: str, dtype: np.dtype) -> np.ndarray:
    """Cast rows to ``dtype`` and, for the cosine metric, L2-normalize them.

    The exact cast→normalize→cast sequence scored rows and queries go
    through on every backend — the unsharded index, the thread shards and
    the process shards' shared-memory store all call this one helper, so the
    bit-identity contract between them cannot drift through a re-ordered
    cast.
    """

    vectors = np.asarray(vectors, dtype=dtype)
    if metric == "cosine":
        return normalize_rows(vectors).astype(dtype, copy=False)
    return vectors


def top_k_rows(
    scores: np.ndarray, k: int, ids: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Row-wise top-``k`` of a ``(Q, N)`` score matrix, -inf entries dropped.

    Returns one ``(ids, scores)`` pair per row, sorted by descending score.
    Ties are broken *deterministically* by ascending column (= index
    position): equal-score candidates appear in column order, and when the
    k-th place falls inside a tie group the lowest columns win.  Determinism
    is what lets a sharded scatter-gather merge reproduce this function's
    output exactly — e.g. the all-zero gap embeddings ``add_users`` creates
    score an exact 0.0 against every query, and an argpartition-arbitrary
    tie order would let sharded and unsharded serving drift on them.
    """

    if scores.ndim != 2:
        raise ValueError("scores must be a 2-d (queries x index) matrix")
    k = min(k, scores.shape[1])
    if k <= 0:
        return [
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=scores.dtype))
            for _ in range(len(scores))
        ]
    # argpartition selects *some* k best per row; sorting the selected columns
    # ascending fixes the tie order inside the selection.
    part = np.sort(np.argpartition(-scores, kth=k - 1, axis=1)[:, :k], axis=1)
    part_scores = np.take_along_axis(scores, part, axis=1)
    # Boundary repair: when the k-th score also occurs outside the selection,
    # argpartition's choice among the tied columns is arbitrary — replace the
    # selected tied columns with the lowest tied columns of the whole row.
    cutoff = part_scores.min(axis=1)
    tied_total = np.count_nonzero(scores == cutoff[:, None], axis=1)
    tied_selected = np.count_nonzero(part_scores == cutoff[:, None], axis=1)
    # A -inf cutoff means the boundary ties are all masked-out entries that
    # the isfinite drop below discards anyway — skip the wasted repair.
    for row in np.nonzero((tied_total > tied_selected) & np.isfinite(cutoff))[0]:
        above = part[row][part_scores[row] > cutoff[row]]
        tied_columns = np.nonzero(scores[row] == cutoff[row])[0]
        chosen = np.concatenate([above, tied_columns[: k - len(above)]])
        chosen.sort()
        part[row] = chosen
        part_scores[row] = scores[row][chosen]
    order = np.argsort(-part_scores, axis=1, kind="stable")
    top = np.take_along_axis(part, order, axis=1)
    top_scores = np.take_along_axis(part_scores, order, axis=1)
    results: List[Tuple[np.ndarray, np.ndarray]] = []
    for row in range(len(scores)):
        valid = np.isfinite(top_scores[row])
        results.append((ids[top[row][valid]], top_scores[row][valid]))
    return results


def apply_exclusions(
    scores: np.ndarray,
    ids: np.ndarray,
    exclude_per_query: Optional[Sequence[Optional[np.ndarray]]],
) -> np.ndarray:
    """Mask excluded ids to -inf, row by row (in place); returns ``scores``."""

    if exclude_per_query is None:
        return scores
    if len(exclude_per_query) != len(scores):
        raise ValueError("exclude_per_query must have one entry per query")
    for row, exclude in enumerate(exclude_per_query):
        if exclude is None:
            continue
        exclude = np.asarray(exclude, dtype=np.int64)
        if not len(exclude):
            continue
        if len(exclude) <= 8:
            # Tiny exclusion lists (usually just the query user herself):
            # direct compares beat np.isin's sort-based machinery.
            for value in exclude:
                scores[row, ids == value] = -np.inf
        else:
            scores[row, np.isin(ids, exclude)] = -np.inf
    return scores


class BruteForceIndex:
    """Exact top-k search with cosine or inner-product similarity.

    Parameters
    ----------
    metric:
        ``"cosine"`` (the paper's eq. 11) or ``"inner"``.
    dtype:
        Storage/scoring dtype of the index.  ``np.float32`` by default (the
        Faiss convention); pass ``np.float64`` for full-precision scoring.
    """

    def __init__(self, metric: str = "cosine", dtype: np.dtype = np.float32) -> None:
        if metric not in ("cosine", "inner"):
            raise ValueError("metric must be 'cosine' or 'inner'")
        dtype = np.dtype(dtype)
        if dtype.type not in _SUPPORTED_DTYPES:
            raise ValueError("dtype must be float32 or float64")
        self.metric = metric
        self.dtype = dtype
        #: monotonically increasing mutation counter: bumped by every build /
        #: add / update / update_batch, so serving caches can validate stored
        #: search results in O(1) (see :mod:`repro.core.cache`).
        self.epoch = 0
        self._vectors: Optional[np.ndarray] = None
        self._normalized: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # building / updating
    # ------------------------------------------------------------------ #
    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "BruteForceIndex":
        """Index ``vectors`` (rows); ``ids`` default to row positions.

        Rows are L2-normalized once here (for the cosine metric); every
        subsequent query scores against the cached normalized matrix.
        """

        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        if len(vectors) == 0:
            raise ValueError("cannot build an index from zero vectors")
        self._vectors = vectors.copy()
        if self.metric == "cosine":
            self._normalized = prepare_rows(vectors, self.metric, self.dtype)
        else:
            self._normalized = self._vectors
        self._ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(self._ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(None, self._ids)
        self.epoch += 1
        return self

    def update(self, position: int, vector: np.ndarray) -> None:
        """Overwrite one indexed vector in place (batch-of-one ``update_batch``)."""

        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError("vector dimensionality mismatch")
        self.update_batch(np.asarray([position], dtype=np.int64), vector[None, :])

    def update_batch(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Overwrite many indexed rows at once (vectorized embedding refresh).

        One fancy-indexed assignment plus one batched row normalization,
        instead of ``len(positions)`` Python-level ``update`` calls.  With
        duplicate positions the last row wins.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2 or len(vectors) != len(positions):
            raise ValueError("vectors must be 2-d with one row per position")
        if vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError("vector dimensionality mismatch")
        if not len(positions):
            return
        if positions.min() < 0 or positions.max() >= len(self._vectors):
            raise ValueError("position out of range")
        self._vectors[positions] = vectors
        if self.metric == "cosine":
            self._normalized[positions] = prepare_rows(vectors, self.metric, self.dtype)
        self.epoch += 1

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "BruteForceIndex":
        """Append new rows to the index (cold-start growth at serve time).

        ``ids`` default to the next row positions, continuing the positional
        numbering of :meth:`build`; pass explicit ids when the index was built
        with custom ones.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError("vector dimensionality mismatch")
        new_ids = (
            np.arange(len(self._vectors), len(self._vectors) + len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(self._ids, new_ids)
        self._vectors = np.concatenate([self._vectors, vectors])
        if self.metric == "cosine":
            self._normalized = np.concatenate(
                [self._normalized, prepare_rows(vectors, self.metric, self.dtype)]
            )
        else:
            self._normalized = self._vectors
        self._ids = np.concatenate([self._ids, new_ids])
        self.epoch += 1
        return self

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def dim(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[1]

    # ------------------------------------------------------------------ #
    # cloning / persistence (blue-green maintenance and snapshots)
    # ------------------------------------------------------------------ #
    def clone(self) -> "BruteForceIndex":
        """Deep-copy the index into a detached shadow (same rows, ids, epoch).

        The shadow shares no mutable state with the live index: the
        maintenance path retrains the clone while the original keeps
        serving, then publishes it with a single reference swap.
        """

        other = BruteForceIndex(metric=self.metric, dtype=self.dtype)
        other.epoch = self.epoch
        if self._vectors is not None:
            other._vectors = self._vectors.copy()
            other._normalized = (
                other._vectors
                if self._normalized is self._vectors
                else self._normalized.copy()
            )
            other._ids = self._ids.copy()
        return other

    def snapshot_state(self) -> dict:
        """Serializable state tree for :mod:`repro.core.snapshot`."""

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        return {
            "kind": "brute_force",
            "meta": {
                "metric": self.metric,
                "dtype": self.dtype.name,
                "epoch": self.epoch,
            },
            "arrays": {"vectors": self._vectors, "ids": self._ids},
        }

    @classmethod
    def restore_state(cls, state: dict) -> "BruteForceIndex":
        """Rebuild an index from :meth:`snapshot_state` output, bit-identically.

        The saved vectors were already cast to the index dtype at build time,
        so rebuilding re-derives the exact same normalized matrix.
        """

        meta = state["meta"]
        index = cls(metric=meta["metric"], dtype=np.dtype(meta["dtype"]))
        index.build(state["arrays"]["vectors"], ids=state["arrays"]["ids"])
        index.epoch = int(meta["epoch"])
        return index

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def _prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        """Cast to the index dtype and, for cosine, L2-normalize each query row."""

        queries = np.asarray(queries, dtype=self.dtype)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be 1-d or 2-d")
        return prepare_rows(queries, self.metric, self.dtype)

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, similarities)`` of the top-``k`` neighbors of ``query``.

        ``exclude`` lists ids that must not appear in the result — e.g. the
        query user herself, since the paper defines ``u ∉ N_u``.  This is the
        batch path with a single row; single-query and batched search share
        one implementation.
        """

        query = np.asarray(query).reshape(-1)
        exclusions = None if exclude is None else [np.asarray(exclude, dtype=np.int64)]
        return self.search_batch(query[None, :], k, exclude_per_query=exclusions)[0]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Top-``k`` neighbors for every row of ``queries`` in one matmul.

        ``exclude_per_query`` optionally gives, per query row, an array of ids
        to suppress (or ``None``).  Returns one ``(ids, similarities)`` pair
        per query, each sorted by descending similarity.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = self._prepare_queries(queries)
        scores = queries @ self._normalized.T
        apply_exclusions(scores, self._ids, exclude_per_query)
        return top_k_rows(scores, k, self._ids)
