"""Sharded scatter-gather wrapper over the neighbor-index substrate.

A single index eventually saturates one worker: the ``(Q×D)·(D×N)`` scoring
matmul and the per-row top-k selection both grow linearly in N.  Production
deployments (Faiss, Vespa, Milvus) split the catalog across S shards, answer
each query with S independent per-shard top-k searches, and merge the partial
results into the global top-k.  :class:`ShardedIndex` reproduces that
architecture in-process:

* **Partitioning** — rows are dealt round-robin: global position ``p`` lives
  on shard ``p % S`` at local position ``p // S``.  The map is arithmetic, so
  routing ``add`` / ``update_batch`` to the owning shard costs one modulo and
  streaming appends keep the shards balanced to within one row.
* **Scatter-gather search** — every shard answers ``search_batch`` over its
  own rows (each a top-k of an ``N/S``-column score matrix), and a single
  merge re-ranks the ``≤ S·k`` partial candidates per query.  Per-shard
  results carry *global* ids, so exclusion lists pass straight through.
* **Thread fan-out** — NumPy matmuls release the GIL, so with
  ``num_threads > 1`` the per-shard searches run concurrently on a
  ``ThreadPoolExecutor``; this is the in-process rehearsal for the
  multi-worker deployment where each shard is its own process.

Results are *bit-identical* to the unsharded backend: each candidate's score
is the same query-row · index-row dot product regardless of which shard holds
the row, per-shard results arrive sorted with ties in local (= global)
position order, and the merge re-sorts by global position before the stable
score sort — exactly the tie order of :func:`~repro.ann.brute_force.top_k_rows`
on the unsharded score matrix.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .brute_force import BruteForceIndex, check_new_ids

__all__ = ["ScatterGatherMixin", "SearchResults", "ShardedIndex"]


class SearchResults(list):
    """A ``search_batch`` return value that knows whether it is complete.

    Behaves exactly like the plain ``List[Tuple[ids, scores]]`` the other
    backends return (so existing callers index and iterate it unchanged),
    plus a ``degraded`` flag: ``True`` when one or more populated shards
    could not answer and the rows were merged from the survivors only.
    Serving caches check the flag (via the owning index's
    ``degraded_requests`` counter) to avoid memoizing partial answers.
    """

    __slots__ = ("degraded",)

    def __init__(self, rows: Iterable = (), degraded: bool = False) -> None:
        super().__init__(rows)
        self.degraded = degraded


class ScatterGatherMixin:
    """Round-robin partition arithmetic, merge re-rank and lifecycle protocol.

    Shared by the in-process :class:`ShardedIndex` (thread fan-out) and the
    multi-core :class:`~repro.ann.process_sharded.ProcessShardedIndex`
    (process workers), so the two backends cannot drift on the three things
    that make them interchangeable:

    * the ``p % S`` position map routing every row to its owning shard,
    * the per-query merge that re-ranks per-shard top-k lists into exactly
      the order an unsharded ``top_k_rows`` would produce, and
    * the lifecycle protocol — ``close()`` (idempotent), context-manager
      support, and best-effort teardown on ``__del__``.

    Subclasses provide ``num_shards``, ``_ids``, ``_id_order``, ``_dim`` and
    implement :meth:`close`.
    """

    num_shards: int

    @property
    def size(self) -> int:
        return 0 if self._ids is None else len(self._ids)

    @property
    def dim(self) -> int:
        return self._dim

    def shard_of(self, position: int) -> Tuple[int, int]:
        """Map a global row position to ``(shard, local position)``."""

        if self._ids is None:
            raise RuntimeError("index has not been built")
        if not 0 <= position < len(self._ids):
            raise ValueError("position out of range")
        return position % self.num_shards, position // self.num_shards

    def _shard_mask(self, positions: np.ndarray, shard: int) -> np.ndarray:
        return positions % self.num_shards == shard

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Single-query scatter-gather (the batch path with one row)."""

        query = np.asarray(query).reshape(-1)
        exclusions = None if exclude is None else [np.asarray(exclude, dtype=np.int64)]
        return self.search_batch(query[None, :], k, exclude_per_query=exclusions)[0]

    def _merge_row(
        self,
        partials: List[List[Tuple[np.ndarray, np.ndarray]]],
        row: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge one query's per-shard top-k lists into the global top-k.

        Candidates are first ordered by global position, then stably sorted by
        descending score — reproducing the tie order an unsharded
        ``top_k_rows`` call would have produced over the full score matrix.
        """

        ids = np.concatenate([partial[row][0] for partial in partials])
        scores = np.concatenate([partial[row][1] for partial in partials])
        if not len(ids):
            return ids, scores
        # Each shard emits candidates in descending-score order with ties in
        # ascending local-position order; interleave back to global-position
        # order before the final stable score sort.
        position_order = np.argsort(self._positions_of(ids), kind="stable")
        ids = ids[position_order]
        scores = scores[position_order]
        top = np.argsort(-scores, kind="stable")[:k]
        return ids[top], scores[top]

    def _positions_of(self, ids: np.ndarray) -> np.ndarray:
        """Global positions of ``ids`` (ids are unique by construction)."""

        if self._id_order is None:
            self._id_order = np.argsort(self._ids, kind="stable")
        found = np.searchsorted(self._ids, ids, sorter=self._id_order)
        return self._id_order[found]

    def close(self) -> None:  # pragma: no cover — always overridden
        raise NotImplementedError

    def __enter__(self) -> "ScatterGatherMixin":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Release the workers with the index: callers up the stack
        # (UserNeighborhoodComponent, SCCF) hold the index for their own
        # lifetime and close() cascades are best-effort at teardown.
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown; nothing useful to do


class ShardedIndex(ScatterGatherMixin):
    """Scatter-gather top-k search over S backend shards.

    Parameters
    ----------
    num_shards:
        How many backend indexes the rows are partitioned across.
    shard_factory:
        Zero-argument callable producing one backend index per shard; defaults
        to ``BruteForceIndex(metric="cosine")``.  Pass e.g.
        ``lambda: IVFIndex(num_cells=64, n_probe=8)`` for approximate shards
        (every shard then needs at least one row at build time).
    num_threads:
        Worker threads for the per-shard fan-out.  ``None`` or ``1`` searches
        shards serially; larger values share a lazily created
        ``ThreadPoolExecutor`` (capped at ``num_shards``).
    failure_policy:
        ``"raise"`` (default) propagates a shard backend's search exception
        unchanged.  ``"degrade"`` answers from the surviving shards instead:
        the failing shard's partial results are dropped, the request is
        counted in ``degraded_requests``, and the merged
        :class:`SearchResults` is tagged ``degraded=True``.  In-process
        shards fail far less often than worker processes, but a custom
        ``shard_factory`` backend can still throw (e.g. a remote shard), and
        the serving stack treats both backends uniformly.
    """

    def __init__(
        self,
        num_shards: int = 4,
        shard_factory: Optional[Callable[[], object]] = None,
        num_threads: Optional[int] = None,
        failure_policy: str = "raise",
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if num_threads is not None and num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if failure_policy not in ("raise", "degrade"):
            raise ValueError("failure_policy must be 'raise' or 'degrade'")
        self.num_shards = num_shards
        self.num_threads = num_threads
        self.failure_policy = failure_policy
        #: searches answered from a strict subset of the populated shards
        #: (only ever bumped under ``failure_policy="degrade"``).
        self.degraded_requests = 0
        #: monotonically increasing mutation counter: bumped by every build /
        #: add / update / update_batch / retrain, so serving caches can
        #: validate stored search results in O(1) (see :mod:`repro.core.cache`).
        self.epoch = 0
        self._shard_factory = shard_factory or (lambda: BruteForceIndex(metric="cosine"))
        self._shards: List[object] = []
        self._ids: Optional[np.ndarray] = None
        self._dim: int = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        # Lazily cached argsort of self._ids for the merge re-rank; rebuilt
        # after build/add (sorting N ids per *query* would dominate the merge).
        self._id_order: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # partitioning
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> List[object]:
        """The backend shard indexes (read-only view for maintenance/tests)."""

        return list(self._shards)

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "ShardedIndex":
        """Partition ``vectors`` round-robin and build one backend per shard."""

        vectors = np.asarray(vectors)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        if len(vectors) == 0:
            raise ValueError("cannot build an index from zero vectors")
        self._ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(self._ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(None, self._ids)
        self._id_order = None
        self._dim = vectors.shape[1]
        self._shards = []
        for shard in range(self.num_shards):
            backend = self._shard_factory()
            rows = vectors[shard :: self.num_shards]
            if len(rows):
                backend.build(rows, ids=self._ids[shard :: self.num_shards])
            self._shards.append(backend)
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # mutation: routed to the owning shard
    # ------------------------------------------------------------------ #
    def update(self, position: int, vector: np.ndarray) -> None:
        """Replace one row on its owning shard (batch-of-one ``update_batch``)."""

        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError("vector dimensionality mismatch")
        self.update_batch(np.asarray([position], dtype=np.int64), vector[None, :])

    def update_batch(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Replace many rows at once, grouped into one call per touched shard."""

        if self._ids is None:
            raise RuntimeError("index has not been built")
        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or len(vectors) != len(positions):
            raise ValueError("vectors must be 2-d with one row per position")
        if vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        if not len(positions):
            return
        if positions.min() < 0 or positions.max() >= len(self._ids):
            raise ValueError("position out of range")
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            # Boolean masking preserves arrival order, so backend
            # duplicate-position semantics (last write wins) carry over.
            self._shards[shard].update_batch(positions[mask] // self.num_shards, vectors[mask])
        self.epoch += 1

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "ShardedIndex":
        """Append rows, continuing the round-robin deal so shards stay balanced.

        Id uniqueness is validated *globally* here — the per-shard backends
        can only see their own subset, so a cross-shard collision would
        otherwise slip through.
        """

        if self._ids is None:
            raise RuntimeError("index has not been built")
        vectors = np.asarray(vectors)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ValueError("vector dimensionality mismatch")
        start = len(self._ids)
        new_ids = (
            np.arange(start, start + len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(self._ids, new_ids)
        positions = np.arange(start, start + len(vectors), dtype=np.int64)
        for shard in range(self.num_shards):
            mask = self._shard_mask(positions, shard)
            if not mask.any():
                continue
            backend = self._shards[shard]
            if getattr(backend, "size", 0):
                backend.add(vectors[mask], ids=new_ids[mask])
            else:
                # A shard left empty at build time (N < num_shards) gets its
                # first rows via a fresh build.
                backend.build(vectors[mask], ids=new_ids[mask])
        self._ids = np.concatenate([self._ids, new_ids])
        self._id_order = None
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # scatter-gather querying (single-query search comes from the mixin)
    # ------------------------------------------------------------------ #
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-shard top-k in parallel, then one merge re-rank per query."""

        if self._ids is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.asarray(queries)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be 1-d or 2-d")
        if exclude_per_query is not None and len(exclude_per_query) != len(queries):
            raise ValueError("exclude_per_query must have one entry per query")

        live = [shard for shard in self._shards if getattr(shard, "size", 0)]
        if len(live) == 1 and self.failure_policy == "raise":
            return live[0].search_batch(queries, k, exclude_per_query=exclude_per_query)

        def scatter(backend: Any) -> "SearchResults":
            return backend.search_batch(queries, k, exclude_per_query=exclude_per_query)

        if self.num_threads is not None and self.num_threads > 1 and len(live) > 1:
            futures = [self._get_executor().submit(scatter, backend) for backend in live]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except Exception:
                    if self.failure_policy == "raise":
                        raise
                    outcomes.append(None)
        else:
            outcomes = []
            for backend in live:
                try:
                    outcomes.append(scatter(backend))
                except Exception:
                    if self.failure_policy == "raise":
                        raise
                    outcomes.append(None)
        partials = [outcome for outcome in outcomes if outcome is not None]
        degraded = len(partials) < len(live)
        if degraded:
            self.degraded_requests += 1
        if not partials:
            empty_ids = np.empty(0, dtype=np.int64)
            empty_scores = np.empty(0, dtype=np.float64)
            return SearchResults(
                [(empty_ids.copy(), empty_scores.copy()) for _ in range(len(queries))],
                degraded=True,
            )
        if len(partials) == 1:
            return SearchResults(partials[0], degraded=degraded)
        return SearchResults(
            [self._merge_row(partials, row, k) for row in range(len(queries))],
            degraded=degraded,
        )

    # ------------------------------------------------------------------ #
    # maintenance fan-out
    # ------------------------------------------------------------------ #
    def imbalance(self) -> float:
        """Worst cell imbalance across shards that expose :meth:`imbalance`.

        Returns 1.0 (perfectly balanced) when no shard supports the
        statistic — e.g. brute-force shards, which have no cells to skew.
        """

        if self._ids is None:
            raise RuntimeError("index has not been built")
        values = [
            shard.imbalance()
            for shard in self._shards
            if hasattr(shard, "imbalance") and getattr(shard, "size", 0)
        ]
        return max(values) if values else 1.0

    def retrain(self, num_iterations: int = 20) -> "ShardedIndex":
        """Retrain every shard that supports it (IVF shards re-cluster)."""

        if self._ids is None:
            raise RuntimeError("index has not been built")
        for shard in self._shards:
            if hasattr(shard, "retrain") and getattr(shard, "size", 0):
                shard.retrain(num_iterations=num_iterations)
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # cloning / persistence (blue-green maintenance and snapshots)
    # ------------------------------------------------------------------ #
    def clone(self) -> "ShardedIndex":
        """Deep-copy into a detached shadow by cloning every shard backend.

        The shadow shares the factory and policy but no rows, ids, or
        executor with the live index — shadow retrains cannot disturb
        serving.  Requires every shard backend to support ``clone()``.
        """

        for shard in self._shards:
            if not hasattr(shard, "clone"):
                raise TypeError(
                    f"shard backend {type(shard).__name__} does not support clone()"
                )
        other = ShardedIndex(
            num_shards=self.num_shards,
            shard_factory=self._shard_factory,
            num_threads=self.num_threads,
            failure_policy=self.failure_policy,
        )
        other.epoch = self.epoch
        other.degraded_requests = self.degraded_requests
        other._shards = [shard.clone() for shard in self._shards]
        other._ids = None if self._ids is None else self._ids.copy()
        other._dim = self._dim
        return other

    def snapshot_state(self) -> dict:
        """Serializable state tree: per-shard child states plus the global deal."""

        if self._ids is None:
            raise RuntimeError("index has not been built")
        children = []
        for shard in self._shards:
            if getattr(shard, "size", 0):
                children.append(shard.snapshot_state())
            else:
                children.append(None)  # shard left empty at build (N < num_shards)
        return {
            "kind": "sharded",
            "meta": {
                "num_shards": self.num_shards,
                "num_threads": self.num_threads,
                "failure_policy": self.failure_policy,
                "epoch": self.epoch,
            },
            "arrays": {"ids": self._ids},
            "children": children,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "ShardedIndex":
        """Rebuild from :meth:`snapshot_state` output, shard by shard.

        The restored index keeps the default shard factory — a later
        ``build`` would produce brute-force shards — but the restored shards
        themselves come back exactly as saved (including IVF cell layouts).
        """

        from . import restore_index

        meta = state["meta"]
        index = cls(
            num_shards=int(meta["num_shards"]),
            num_threads=meta["num_threads"],
            failure_policy=meta["failure_policy"],
        )
        shards: List[object] = []
        dim = 0
        for child in state["children"]:
            if child is None:
                shards.append(index._shard_factory())
                continue
            restored = restore_index(child)
            shards.append(restored)
            dim = getattr(restored, "dim", dim) or dim
        index._shards = shards
        index._ids = np.asarray(state["arrays"]["ids"], dtype=np.int64).copy()
        check_new_ids(None, index._ids)
        index._dim = int(dim)
        index.epoch = int(meta["epoch"])
        return index

    @property
    def retrain_threshold(self) -> Optional[float]:
        """Most conservative (smallest) ``retrain_threshold`` across the shards.

        Lets maintenance hooks that consult the index's own threshold (e.g.
        :meth:`repro.core.realtime.RealTimeServer.maintain`) honor the
        threshold configured on IVF shard backends; ``None`` when no shard
        carries one.
        """

        values = [
            shard.retrain_threshold
            for shard in self._shards
            if getattr(shard, "retrain_threshold", None) is not None
        ]
        return min(values) if values else None

    # ------------------------------------------------------------------ #
    # executor lifecycle
    # ------------------------------------------------------------------ #
    def _get_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            workers = min(self.num_threads or 1, self.num_shards)
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="shard-search"
            )
        return self._executor

    def close(self) -> None:
        """Shut down the fan-out thread pool and any closeable shard backends.

        With the standard backends (brute force, IVF) calling this eagerly is
        always safe: the pool shutdown is a no-op when searches ran serially,
        and searches after ``close`` recreate it lazily.  Shard backends
        exposing a ``close()`` of their own (a custom factory) are closed too
        — the lifecycle protocol cascades all the way down, and if such a
        backend's close is terminal (e.g. a nested process-sharded index),
        this index is terminal with it.
        """

        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for shard in self._shards:
            closer = getattr(shard, "close", None)
            if closer is not None:
                closer()
