"""Similarity-search substrate (the role Faiss plays in the paper's deployment)."""

from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from .brute_force import BruteForceIndex
from .ivf import IVFIndex, kmeans
from .metrics import cosine_similarity, inner_product, normalize_rows, pairwise_similarity

__all__ = [
    "NeighborIndex",
    "BruteForceIndex",
    "IVFIndex",
    "kmeans",
    "cosine_similarity",
    "inner_product",
    "normalize_rows",
    "pairwise_similarity",
]


@runtime_checkable
class NeighborIndex(Protocol):
    """Structural interface both index implementations satisfy."""

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "NeighborIndex":
        ...

    def search(
        self, query: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        ...

    def update(self, position: int, vector: np.ndarray) -> None:
        ...
