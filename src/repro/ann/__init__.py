"""Similarity-search substrate (the role Faiss plays in the paper's deployment)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from .brute_force import BruteForceIndex, top_k_rows
from .ivf import DEFAULT_RETRAIN_THRESHOLD, IVFIndex, kmeans
from .metrics import cosine_similarity, inner_product, normalize_rows, pairwise_similarity
from .process_sharded import ProcessShardedIndex, ShardHealth
from .sharded import SearchResults, ShardedIndex
from .shm import SharedMatrix

__all__ = [
    "NeighborIndex",
    "BruteForceIndex",
    "IVFIndex",
    "ShardedIndex",
    "ProcessShardedIndex",
    "SearchResults",
    "ShardHealth",
    "SharedMatrix",
    "DEFAULT_RETRAIN_THRESHOLD",
    "kmeans",
    "top_k_rows",
    "search_batch",
    "update_batch",
    "restore_index",
    "cosine_similarity",
    "inner_product",
    "normalize_rows",
    "pairwise_similarity",
]


@runtime_checkable
class NeighborIndex(Protocol):
    """Structural interface both index implementations satisfy."""

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "NeighborIndex":
        ...

    def search(
        self, query: np.ndarray, k: int, exclude: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        ...

    def update(self, position: int, vector: np.ndarray) -> None:
        ...


def search_batch(
    index: NeighborIndex,
    queries: np.ndarray,
    k: int,
    exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Batched search through any :class:`NeighborIndex`.

    Uses the index's native ``search_batch`` (one matmul for the whole batch)
    when it has one, falling back to a query-at-a-time loop for third-party
    indexes that only implement the single-query protocol.
    """

    native = getattr(index, "search_batch", None)
    if native is not None:
        return native(queries, k, exclude_per_query=exclude_per_query)
    queries = np.asarray(queries)
    if queries.ndim == 1:
        queries = queries[None, :]
    if exclude_per_query is not None and len(exclude_per_query) != len(queries):
        raise ValueError("exclude_per_query must have one entry per query")
    return [
        index.search(
            queries[row],
            k,
            exclude=None if exclude_per_query is None else exclude_per_query[row],
        )
        for row in range(len(queries))
    ]


#: ``snapshot_state()["kind"]`` → the class whose ``restore_state`` rebuilds it.
_RESTORERS = {
    "brute_force": BruteForceIndex,
    "ivf": IVFIndex,
    "sharded": ShardedIndex,
    "process_sharded": ProcessShardedIndex,
}


def restore_index(state: Dict[str, Any]) -> Any:
    """Rebuild any backend index from its ``snapshot_state()`` tree.

    Dispatches on the ``kind`` tag each backend writes; the restored index
    serves bit-identically to the one that was saved.
    """

    kind = state.get("kind")
    restorer = _RESTORERS.get(kind)
    if restorer is None:
        raise ValueError(f"unknown index snapshot kind {kind!r}")
    return restorer.restore_state(state)


def update_batch(index: NeighborIndex, positions: Sequence[int], vectors: np.ndarray) -> None:
    """Batched row replacement through any :class:`NeighborIndex`.

    Uses the index's native ``update_batch`` (one fancy-indexed write plus one
    batched reassignment) when it has one, falling back to a row-at-a-time
    ``update`` loop for third-party indexes that only implement the
    single-row protocol.
    """

    native = getattr(index, "update_batch", None)
    if native is not None:
        native(positions, vectors)
        return
    vectors = np.asarray(vectors)
    if vectors.ndim != 2 or len(vectors) != len(positions):
        raise ValueError("vectors must be 2-d with one row per position")
    for position, vector in zip(positions, vectors):
        index.update(int(position), vector)
