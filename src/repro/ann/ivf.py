"""Approximate nearest-neighbor search with an inverted-file (IVF) index.

Faiss's workhorse index for large catalogs is IVF: k-means partitions the
vectors into cells, a query probes only the ``n_probe`` closest cells, and an
exact scan runs inside those cells.  This NumPy implementation provides the
same accuracy/latency trade-off for the Table III scalability discussion and
the ANN ablation bench, and exposes the same ``build`` / ``search`` /
``update`` surface as :class:`repro.ann.brute_force.BruteForceIndex`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .metrics import cosine_similarity, normalize_rows

__all__ = ["IVFIndex", "kmeans"]


def kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    num_iterations: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means; returns ``(centroids, assignments)``.

    Empty clusters are re-seeded with the point farthest from its centroid so
    the index never ends up with dead cells.
    """

    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-d")
    num_points = len(vectors)
    num_clusters = min(num_clusters, num_points)
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = rng or np.random.default_rng(0)

    centroids = vectors[rng.choice(num_points, size=num_clusters, replace=False)].copy()
    assignments = np.zeros(num_points, dtype=np.int64)
    for _ in range(num_iterations):
        distances = ((vectors[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        for cluster in range(num_clusters):
            members = vectors[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = vectors[farthest]
    return centroids, assignments


class IVFIndex:
    """Inverted-file approximate index with cosine re-ranking inside probed cells."""

    def __init__(self, num_cells: int = 16, n_probe: int = 3, rng: Optional[np.random.Generator] = None) -> None:
        if num_cells <= 0 or n_probe <= 0:
            raise ValueError("num_cells and n_probe must be positive")
        self.num_cells = num_cells
        self.n_probe = n_probe
        self._rng = rng or np.random.default_rng(0)
        self._vectors: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._centroids: Optional[np.ndarray] = None
        self._cells: Dict[int, List[int]] = {}
        self._assignments: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "IVFIndex":
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        self._vectors = vectors.copy()
        self._ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(self._ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        cells = min(self.num_cells, len(vectors))
        self._centroids, self._assignments = kmeans(vectors, cells, rng=self._rng)
        self._cells = {}
        for position, cell in enumerate(self._assignments):
            self._cells.setdefault(int(cell), []).append(position)
        return self

    def update(self, position: int, vector: np.ndarray) -> None:
        """Replace a vector and move it to its (possibly new) nearest cell."""

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self._vectors.shape[1],):
            raise ValueError("vector dimensionality mismatch")
        self._vectors[position] = vector
        old_cell = int(self._assignments[position])
        distances = ((self._centroids - vector[None, :]) ** 2).sum(axis=1)
        new_cell = int(distances.argmin())
        if new_cell != old_cell:
            self._cells[old_cell].remove(position)
            self._cells.setdefault(new_cell, []).append(position)
            self._assignments[position] = new_cell

    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe the ``n_probe`` nearest cells and return exact top-``k`` within them."""

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        centroid_distances = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe = np.argsort(centroid_distances)[: self.n_probe]

        candidate_positions: List[int] = []
        for cell in probe:
            candidate_positions.extend(self._cells.get(int(cell), []))
        if not candidate_positions:
            return np.empty(0, dtype=np.int64), np.empty(0)

        candidate_positions = np.asarray(candidate_positions, dtype=np.int64)
        candidate_vectors = self._vectors[candidate_positions]
        scores = cosine_similarity(query, candidate_vectors)
        candidate_ids = self._ids[candidate_positions]

        if exclude is not None and len(exclude):
            mask = np.isin(candidate_ids, np.asarray(exclude, dtype=np.int64))
            scores = np.where(mask, -np.inf, scores)

        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        result_scores = scores[order]
        valid = np.isfinite(result_scores)
        return candidate_ids[order][valid], result_scores[valid]
