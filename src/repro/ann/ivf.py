"""Approximate nearest-neighbor search with an inverted-file (IVF) index.

Faiss's workhorse index for large catalogs is IVF: k-means partitions the
vectors into cells, a query probes only the ``n_probe`` closest cells, and an
exact scan runs inside those cells.  This NumPy implementation provides the
same accuracy/latency trade-off for the Table III scalability discussion and
the ANN ablation bench, and exposes the same ``build`` / ``search`` /
``search_batch`` / ``update`` surface as
:class:`repro.ann.brute_force.BruteForceIndex`.

Performance notes mirroring the production systems this models:

* k-means computes squared distances through the ``‖x‖² − 2·x·c + ‖c‖²``
  matmul identity — one GEMM instead of an ``O(N·K·D)``-memory broadcast;
* cells are stored as sets, so :meth:`update` moves a vector between cells in
  O(1) instead of an ``O(cell size)`` ``list.remove`` scan;
* index rows are L2-normalized once at build time (float32 by default) and
  :meth:`search_batch` groups queries that probe the same cells into shared
  sub-matrix products.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .brute_force import _SUPPORTED_DTYPES, apply_exclusions, check_new_ids, top_k_rows
from .metrics import normalize_rows

__all__ = ["IVFIndex", "kmeans", "DEFAULT_RETRAIN_THRESHOLD"]

#: Imbalance (max/mean cell size) past which maintenance should re-cluster.
#: 3.0 means the fullest cell scans 3x the candidates the build promised.
DEFAULT_RETRAIN_THRESHOLD = 3.0


def _squared_distances(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``‖x − c‖²`` for every (vector, centroid) pair via the matmul identity.

    Avoids materializing the ``(N, K, D)`` difference tensor: one ``(N×D)·(D×K)``
    product plus two squared-norm vectors.  Clipped at zero because the
    identity can go slightly negative under floating-point cancellation.
    """

    vector_sq = np.einsum("nd,nd->n", vectors, vectors)
    centroid_sq = np.einsum("kd,kd->k", centroids, centroids)
    distances = vector_sq[:, None] - 2.0 * (vectors @ centroids.T) + centroid_sq[None, :]
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    num_iterations: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means; returns ``(centroids, assignments)``.

    Empty clusters are re-seeded with the point farthest from its centroid so
    the index never ends up with dead cells.
    """

    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-d")
    num_points = len(vectors)
    if num_points == 0:
        raise ValueError("cannot run k-means on zero vectors")
    num_clusters = min(num_clusters, num_points)
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = rng or np.random.default_rng(0)

    centroids = vectors[rng.choice(num_points, size=num_clusters, replace=False)].copy()
    assignments = np.zeros(num_points, dtype=np.int64)
    for _ in range(num_iterations):
        distances = _squared_distances(vectors, centroids)
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments
        for cluster in range(num_clusters):
            members = vectors[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centroids[cluster] = vectors[farthest]
    return centroids, assignments


class IVFIndex:
    """Inverted-file approximate index with cosine re-ranking inside probed cells."""

    def __init__(
        self,
        num_cells: int = 16,
        n_probe: int = 3,
        rng: Optional[np.random.Generator] = None,
        dtype: np.dtype = np.float32,
        retrain_threshold: Optional[float] = None,
    ) -> None:
        if num_cells <= 0 or n_probe <= 0:
            raise ValueError("num_cells and n_probe must be positive")
        dtype = np.dtype(dtype)
        if dtype.type not in _SUPPORTED_DTYPES:
            raise ValueError("dtype must be float32 or float64")
        if retrain_threshold is not None and retrain_threshold < 1.0:
            raise ValueError("retrain_threshold must be >= 1 (1 means perfectly balanced)")
        self.num_cells = num_cells
        self.n_probe = n_probe
        self.dtype = dtype
        self.retrain_threshold = retrain_threshold
        #: monotonically increasing mutation counter: bumped by every build /
        #: add / update / update_batch / retrain, so serving caches can
        #: validate stored search results in O(1) (see :mod:`repro.core.cache`).
        self.epoch = 0
        self._rng = rng or np.random.default_rng(0)
        self._vectors: Optional[np.ndarray] = None
        self._normalized: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._centroids: Optional[np.ndarray] = None
        self._cells: Dict[int, Set[int]] = {}
        self._cell_arrays: Dict[int, np.ndarray] = {}
        self._assignments: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    @property
    def dim(self) -> int:
        return 0 if self._vectors is None else self._vectors.shape[1]

    def build(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "IVFIndex":
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-d array")
        if len(vectors) == 0:
            raise ValueError("cannot build an index from zero vectors")
        self._vectors = vectors.copy()
        self._normalized = normalize_rows(vectors).astype(self.dtype, copy=False)
        self._ids = (
            np.arange(len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64).copy()
        )
        if len(self._ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(None, self._ids)
        self._recluster(num_iterations=20)
        self.epoch += 1
        return self

    def _recluster(self, num_iterations: int) -> None:
        """(Re)run k-means over the current rows and rebuild the cell structures."""

        cells = min(self.num_cells, len(self._vectors))
        self._centroids, self._assignments = kmeans(
            self._vectors, cells, num_iterations=num_iterations, rng=self._rng
        )
        self._cells = {}
        for position, cell in enumerate(self._assignments):
            self._cells.setdefault(int(cell), set()).add(position)
        self._cell_arrays = {}

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def imbalance(self) -> float:
        """Max/mean cell size — 1.0 is perfectly balanced, higher is skewed.

        Streaming :meth:`add` assigns rows to frozen centroids, so a drifting
        stream piles rows into a few cells; probes of those cells then scan
        far more candidates than the build-time balance promised.  The mean is
        taken over all trained centroids (empty cells included), matching the
        cost model: a probe's expected scan size is ``N / num_cells``.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        mean_size = len(self._vectors) / len(self._centroids)
        max_size = max(
            (len(members) for members in self._cells.values() if members), default=0
        )
        return max_size / mean_size

    def retrain(self, num_iterations: int = 20) -> "IVFIndex":
        """Re-run k-means over the *current* rows, preserving ids and vectors.

        This is the periodic IVF maintenance step production systems run once
        streamed adds have skewed the cell balance: centroids move to match
        the live data distribution, every row is reassigned, and the id set
        is untouched — only the cell partition changes.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        self._recluster(num_iterations=num_iterations)
        self.epoch += 1
        return self

    # ------------------------------------------------------------------ #
    # cloning / persistence (blue-green maintenance and snapshots)
    # ------------------------------------------------------------------ #
    def clone(self) -> "IVFIndex":
        """Deep-copy into a detached shadow, including the RNG stream position.

        Copying the bit-generator state is what makes a shadow
        :meth:`retrain` consume the exact random draws an in-place retrain
        would have — the publish is bit-identical by construction.
        """

        other = IVFIndex(
            num_cells=self.num_cells,
            n_probe=self.n_probe,
            dtype=self.dtype,
            retrain_threshold=self.retrain_threshold,
        )
        other.epoch = self.epoch
        other._rng.bit_generator.state = self._rng.bit_generator.state
        if self._vectors is not None:
            other._vectors = self._vectors.copy()
            other._normalized = self._normalized.copy()
            other._ids = self._ids.copy()
            other._centroids = self._centroids.copy()
            other._assignments = self._assignments.copy()
            other._cells = {cell: set(members) for cell, members in self._cells.items()}
            other._cell_arrays = {}
        return other

    def snapshot_state(self) -> dict:
        """Serializable state tree for :mod:`repro.core.snapshot`.

        Cells are derived from ``assignments`` on restore; the RNG
        bit-generator state rides along so post-restore retrains replay the
        same stream the saved server would have drawn.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        return {
            "kind": "ivf",
            "meta": {
                "num_cells": self.num_cells,
                "n_probe": self.n_probe,
                "dtype": self.dtype.name,
                "retrain_threshold": self.retrain_threshold,
                "epoch": self.epoch,
                "rng_state": self._rng.bit_generator.state,
            },
            "arrays": {
                "vectors": self._vectors,
                "ids": self._ids,
                "centroids": self._centroids,
                "assignments": self._assignments,
            },
        }

    @classmethod
    def restore_state(cls, state: dict) -> "IVFIndex":
        """Rebuild from :meth:`snapshot_state` output without re-running k-means."""

        meta = state["meta"]
        index = cls(
            num_cells=int(meta["num_cells"]),
            n_probe=int(meta["n_probe"]),
            dtype=np.dtype(meta["dtype"]),
            retrain_threshold=meta["retrain_threshold"],
        )
        arrays = state["arrays"]
        vectors = np.asarray(arrays["vectors"], dtype=index.dtype)
        index._vectors = vectors.copy()
        index._normalized = normalize_rows(vectors).astype(index.dtype, copy=False)
        index._ids = np.asarray(arrays["ids"], dtype=np.int64).copy()
        check_new_ids(None, index._ids)
        index._centroids = np.asarray(arrays["centroids"], dtype=np.float64).copy()
        index._assignments = np.asarray(arrays["assignments"], dtype=np.int64).copy()
        index._cells = {}
        for position, cell in enumerate(index._assignments):
            index._cells.setdefault(int(cell), set()).add(position)
        index._rng.bit_generator.state = meta["rng_state"]
        index.epoch = int(meta["epoch"])
        return index

    def _cell_positions(self, cell: int) -> np.ndarray:
        """Sorted member positions of ``cell``, cached until the cell changes."""

        cached = self._cell_arrays.get(cell)
        if cached is None:
            members = self._cells.get(cell)
            cached = (
                np.empty(0, dtype=np.int64)
                if not members
                else np.fromiter(sorted(members), dtype=np.int64, count=len(members))
            )
            self._cell_arrays[cell] = cached
        return cached

    def update(self, position: int, vector: np.ndarray) -> None:
        """Replace a vector and move it to its (possibly new) nearest cell."""

        vector = np.asarray(vector)
        if vector.ndim != 1:
            raise ValueError("vector dimensionality mismatch")
        self.update_batch(np.asarray([position], dtype=np.int64), vector[None, :])

    def update_batch(self, positions: Sequence[int], vectors: np.ndarray) -> None:
        """Replace many rows at once: one write, one centroid-distance matrix.

        Cell reassignment for the whole batch comes from a single
        ``_squared_distances`` call; only rows whose nearest centroid actually
        changed pay the set-move bookkeeping.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        positions = np.asarray(positions, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim != 2 or len(vectors) != len(positions):
            raise ValueError("vectors must be 2-d with one row per position")
        if vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError("vector dimensionality mismatch")
        if not len(positions):
            return
        if positions.min() < 0 or positions.max() >= len(self._vectors):
            raise ValueError("position out of range")
        if len(np.unique(positions)) != len(positions):
            # Keep only the last row per duplicated position (last write wins);
            # otherwise the cell-move loop below sees a stale old_cell on the
            # second occurrence and leaves the row a member of two cells.
            _, first_in_reversed = np.unique(positions[::-1], return_index=True)
            keep = len(positions) - 1 - first_in_reversed
            positions = positions[keep]
            vectors = vectors[keep]
        self._vectors[positions] = vectors
        self._normalized[positions] = normalize_rows(vectors).astype(self.dtype, copy=False)
        distances = _squared_distances(np.asarray(vectors, dtype=np.float64), self._centroids)
        new_cells = distances.argmin(axis=1)
        old_cells = self._assignments[positions]
        for position, old_cell, new_cell in zip(positions, old_cells, new_cells):
            if new_cell == old_cell:
                continue
            position, old_cell, new_cell = int(position), int(old_cell), int(new_cell)
            self._cells[old_cell].discard(position)
            self._cells.setdefault(new_cell, set()).add(position)
            self._cell_arrays.pop(old_cell, None)
            self._cell_arrays.pop(new_cell, None)
        self._assignments[positions] = new_cells
        self.epoch += 1

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> "IVFIndex":
        """Append new rows, assigning each to its nearest existing cell.

        Centroids are *not* moved by the append itself (the Faiss convention
        for streaming adds); ``ids`` default to the next row positions.  When
        ``retrain_threshold`` is set and the append pushes :meth:`imbalance`
        past it, a full :meth:`retrain` runs before returning.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        vectors = np.asarray(vectors, dtype=self.dtype)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self._vectors.shape[1]:
            raise ValueError("vector dimensionality mismatch")
        start = len(self._vectors)
        new_ids = (
            np.arange(start, start + len(vectors), dtype=np.int64)
            if ids is None
            else np.asarray(ids, dtype=np.int64)
        )
        if len(new_ids) != len(vectors):
            raise ValueError("ids must match the number of vectors")
        check_new_ids(self._ids, new_ids)
        self._vectors = np.concatenate([self._vectors, vectors])
        self._normalized = np.concatenate(
            [self._normalized, normalize_rows(vectors).astype(self.dtype, copy=False)]
        )
        self._ids = np.concatenate([self._ids, new_ids])
        cells = _squared_distances(
            np.asarray(vectors, dtype=np.float64), self._centroids
        ).argmin(axis=1)
        self._assignments = np.concatenate([self._assignments, cells.astype(np.int64)])
        for offset, cell in enumerate(cells):
            cell = int(cell)
            self._cells.setdefault(cell, set()).add(start + offset)
            self._cell_arrays.pop(cell, None)
        self.epoch += 1
        if self.retrain_threshold is not None and self.imbalance() > self.retrain_threshold:
            self.retrain()
        return self

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe the ``n_probe`` nearest cells and return exact top-``k`` within them."""

        query = np.asarray(query).reshape(-1)
        exclusions = None if exclude is None else [np.asarray(exclude, dtype=np.int64)]
        return self.search_batch(query[None, :], k, exclude_per_query=exclusions)[0]

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        exclude_per_query: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batched probe-and-scan: queries probing the same cells share one matmul.

        Centroid assignment for all queries is a single distance matrix; the
        per-cell-set groups then each score their candidates with one
        ``(Q_group × D)·(D × candidates)`` product.
        """

        if self._vectors is None:
            raise RuntimeError("index has not been built")
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError("queries must be 1-d or 2-d")
        if exclude_per_query is not None and len(exclude_per_query) != len(queries):
            raise ValueError("exclude_per_query must have one entry per query")

        centroid_distances = _squared_distances(queries, self._centroids)
        n_probe = min(self.n_probe, centroid_distances.shape[1])
        probe = np.argpartition(centroid_distances, kth=n_probe - 1, axis=1)[:, :n_probe]

        normalized_queries = normalize_rows(queries).astype(self.dtype, copy=False)
        results: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(queries)

        groups: Dict[Tuple[int, ...], List[int]] = {}
        for row in range(len(queries)):
            key = tuple(sorted(int(cell) for cell in probe[row]))
            groups.setdefault(key, []).append(row)

        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=self.dtype))
        for key, rows in groups.items():
            candidate_positions = np.concatenate([self._cell_positions(cell) for cell in key])
            if not len(candidate_positions):
                for row in rows:
                    results[row] = empty
                continue
            candidate_ids = self._ids[candidate_positions]
            scores = normalized_queries[rows] @ self._normalized[candidate_positions].T
            if exclude_per_query is not None:
                apply_exclusions(
                    scores, candidate_ids, [exclude_per_query[row] for row in rows]
                )
            for row, result in zip(rows, top_k_rows(scores, k, candidate_ids)):
                results[row] = result
        return results
