"""Analyses behind the paper's motivating and diagnostic figures (Figures 1 and 4)."""

from __future__ import annotations

from .category_drift import CategoryDriftResult, category_drift_distribution
from .similarity_distribution import (
    SimilarityDistributions,
    candidate_similarity_distributions,
    histogram,
)

__all__ = [
    "CategoryDriftResult",
    "category_drift_distribution",
    "SimilarityDistributions",
    "candidate_similarity_distributions",
    "histogram",
]
