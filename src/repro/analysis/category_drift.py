"""Interest-drift analysis reproducing Figure 1 of the paper.

For the categories a user clicks on a target day, the analysis asks: how many
days before the target day did she *first* click that category, looking back
over a two-week window?  Day 0 means the category is brand new (not clicked
at all in the window).  The paper observes that "most of the categories,
around 50%, that users click today are new categories", which motivates
real-time adaptation to drifting interests.

The analysis operates on any :class:`~repro.data.interactions.InteractionLog`
whose timestamps encode days (integral part = day index) and whose events
carry category ids — both produced by
:class:`~repro.simulation.clickstream.ClickstreamSimulator` and by the real
MovieLens loader when genres are attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.interactions import InteractionLog

__all__ = ["CategoryDriftResult", "category_drift_distribution"]


@dataclass
class CategoryDriftResult:
    """Distribution of "days since the category was first clicked" (Figure 1)."""

    window_days: int
    proportions: np.ndarray  # index d = average proportion of today's categories first seen d days ago
    num_users: int

    @property
    def new_category_fraction(self) -> float:
        """Share of today's categories never seen in the look-back window (the x=0 bar)."""

        return float(self.proportions[0])

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {"days_before_today": day, "avg_proportion": round(float(p), 4)}
            for day, p in enumerate(self.proportions)
        ]


def _events_by_day(log: InteractionLog) -> Dict[int, List[int]]:
    """Group event indices by integral day."""

    days: Dict[int, List[int]] = {}
    for idx, timestamp in enumerate(log.timestamps):
        days.setdefault(int(np.floor(timestamp)), []).append(idx)
    return days


def category_drift_distribution(
    log: InteractionLog,
    target_day: Optional[int] = None,
    window_days: int = 14,
) -> CategoryDriftResult:
    """Compute the Figure 1 histogram for ``target_day`` (default: the last day).

    For every user active on the target day, each distinct category she
    clicked that day is attributed to the number of days since she first
    clicked it inside ``[target_day - window_days, target_day)``; categories
    absent from the window are attributed to day 0 ("new today").  The
    per-user distributions are averaged so heavy users do not dominate.
    """

    if window_days <= 0:
        raise ValueError("window_days must be positive")
    categories = log.categories
    if categories is None:
        raise ValueError("the interaction log carries no category information")

    by_day = _events_by_day(log)
    if not by_day:
        raise ValueError("the interaction log is empty")
    target_day = max(by_day) if target_day is None else int(target_day)
    if target_day not in by_day:
        raise ValueError(f"no events on target day {target_day}")

    users = log.users
    # Per user: the first day (within the window) each category was clicked.
    window_start = target_day - window_days
    first_seen: Dict[int, Dict[int, int]] = {}
    for day in range(max(window_start, min(by_day)), target_day):
        for idx in by_day.get(day, []):
            user = int(users[idx])
            category = int(categories[idx])
            user_map = first_seen.setdefault(user, {})
            if category not in user_map:
                user_map[category] = day

    # Today's distinct categories per user.
    todays_categories: Dict[int, set] = {}
    for idx in by_day[target_day]:
        todays_categories.setdefault(int(users[idx]), set()).add(int(categories[idx]))

    per_user_distributions: List[np.ndarray] = []
    for user, cats in todays_categories.items():
        counts = np.zeros(window_days + 1, dtype=np.float64)
        for category in cats:
            seen_day = first_seen.get(user, {}).get(category)
            if seen_day is None:
                counts[0] += 1.0  # brand-new category
            else:
                days_before = target_day - seen_day
                days_before = min(max(days_before, 1), window_days)
                counts[days_before] += 1.0
        per_user_distributions.append(counts / counts.sum())

    if not per_user_distributions:
        raise ValueError("no users were active on the target day")
    proportions = np.mean(np.stack(per_user_distributions), axis=0)
    return CategoryDriftResult(
        window_days=window_days,
        proportions=proportions,
        num_users=len(per_user_distributions),
    )
