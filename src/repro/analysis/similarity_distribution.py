"""Candidate-similarity analysis reproducing Figure 4 of the paper.

Figure 4 plots, over all evaluated users, the distribution of three cosine
similarities computed in the UI model's embedding space:

* **Ground truth** — cos(m_u, q_{g_u}) between the user and the item she
  actually interacts with next;
* **UI** — the mean cos(m_u, q_i) over the UI component's candidate list;
* **UUI (user-based)** — the mean cos(m_u, q_i) over the user-based
  component's candidate list.

The paper observes that the UI candidates are *more* similar to the user than
the ground truth while the user-based candidates are *less* similar — i.e.
the two components cover complementary regions of the item space, which is
why fusing them helps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann.metrics import normalize_rows
from ..core.sccf import SCCF
from ..data.datasets import RecDataset

__all__ = ["SimilarityDistributions", "candidate_similarity_distributions", "histogram"]


@dataclass
class SimilarityDistributions:
    """Per-user mean similarity scores for the three curves of Figure 4."""

    ground_truth: np.ndarray
    ui_candidates: np.ndarray
    uu_candidates: np.ndarray

    def means(self) -> Dict[str, float]:
        return {
            "ground_truth": float(np.mean(self.ground_truth)) if len(self.ground_truth) else 0.0,
            "ui": float(np.mean(self.ui_candidates)) if len(self.ui_candidates) else 0.0,
            "uu": float(np.mean(self.uu_candidates)) if len(self.uu_candidates) else 0.0,
        }

    def as_rows(self, bins: int = 20) -> List[Dict[str, object]]:
        """Histogram rows (bin center → user counts per curve), printable like Figure 4."""

        all_values = np.concatenate([self.ground_truth, self.ui_candidates, self.uu_candidates])
        if len(all_values) == 0:
            return []
        low, high = float(all_values.min()), float(all_values.max())
        edges = np.linspace(low, high if high > low else low + 1.0, bins + 1)
        centers = (edges[:-1] + edges[1:]) / 2.0
        gt_hist, _ = np.histogram(self.ground_truth, bins=edges)
        ui_hist, _ = np.histogram(self.ui_candidates, bins=edges)
        uu_hist, _ = np.histogram(self.uu_candidates, bins=edges)
        return [
            {
                "similarity": round(float(center), 3),
                "ground_truth_users": int(gt),
                "ui_users": int(ui),
                "uu_users": int(uu),
            }
            for center, gt, ui, uu in zip(centers, gt_hist, ui_hist, uu_hist)
        ]


def _cosine(user_vector: np.ndarray, item_vectors: np.ndarray) -> np.ndarray:
    user_norm = np.linalg.norm(user_vector)
    if user_norm < 1e-12:
        return np.zeros(len(item_vectors))
    normalized_items = normalize_rows(item_vectors)
    return normalized_items @ (user_vector / user_norm)


def candidate_similarity_distributions(
    sccf: SCCF,
    dataset: RecDataset,
    max_users: Optional[int] = None,
    seed: int = 0,
) -> SimilarityDistributions:
    """Compute the three Figure 4 distributions for a fitted SCCF instance."""

    targets = dataset.test_items
    users = sorted(targets.keys())
    if max_users is not None and len(users) > max_users:
        rng = np.random.default_rng(seed)
        users = [users[i] for i in sorted(rng.choice(len(users), size=max_users, replace=False))]

    item_embeddings = sccf.ui_model.item_embeddings()
    ground_truth: List[float] = []
    ui_means: List[float] = []
    uu_means: List[float] = []

    for user in users:
        history = dataset.full_sequence(user, include_validation=True)
        if not history:
            continue
        user_embedding = sccf.ui_model.infer_user_embedding(history)
        target_similarity = _cosine(user_embedding, item_embeddings[[targets[user]]])[0]

        ui_list, uu_list = sccf.candidate_lists(user, history=history)
        if len(ui_list) == 0 or len(uu_list) == 0:
            continue
        ground_truth.append(float(target_similarity))
        ui_means.append(float(np.mean(_cosine(user_embedding, item_embeddings[ui_list]))))
        uu_means.append(float(np.mean(_cosine(user_embedding, item_embeddings[uu_list]))))

    return SimilarityDistributions(
        ground_truth=np.asarray(ground_truth),
        ui_candidates=np.asarray(ui_means),
        uu_candidates=np.asarray(uu_means),
    )


def histogram(values: Sequence[float], bins: int = 20) -> Tuple[np.ndarray, np.ndarray]:
    """Simple histogram helper returning ``(bin_centers, counts)``."""

    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    counts, edges = np.histogram(values, bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts
