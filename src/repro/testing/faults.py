"""Deterministic fault injection for the fault-tolerant serving stack.

Chaos testing a supervised system means *choosing* the failures: a worker
SIGKILLed mid-request, a pipe that swallows one reply, a reply that limps in
seconds late, a maintenance pass that explodes.  Leaving those to chance
makes failures unreproducible; :class:`FaultInjector` makes every one of
them a seeded, explicit operation, so a hypothesis counterexample replays
bit-for-bit and a benchmark kills workers on a fixed cadence.

The injector attacks the real mechanisms, not mocks:

* :meth:`kill_worker` sends an actual SIGKILL to a live shard worker of a
  :class:`~repro.ann.process_sharded.ProcessShardedIndex` — exactly what an
  OOM killer or a segfault does — and the index's supervisor is expected to
  notice, restart, and re-attach the shared-memory shard.
* :meth:`drop_replies` / :meth:`delay_replies` interpose a wrapper on the
  parent's pipe end that eats or postpones real worker replies, driving the
  timeout → reap → respawn path and the sequence-number discard logic
  without killing anything.
* :meth:`fail_maintenance` patches a server's ``maintain`` to raise
  :class:`InjectedFault` for the next N calls, exercising the
  :class:`~repro.core.realtime.MaintenanceScheduler`'s exception containment
  and backoff.
* :meth:`tick` turns the injector into a schedule: call it once per query
  and every ``kill_every``-th call kills a (seeded) random live worker —
  the loop :mod:`benchmarks.bench_fault_tolerance` is built on.
* :meth:`fail_snapshot_commit` / :meth:`truncate_snapshot_file` /
  :meth:`corrupt_snapshot_checksum` attack the crash-safe snapshot store:
  a crash between tmp-write and atomic rename, a partially written segment,
  a flipped checksum — each must leave the previous committed generation
  loadable and make the damaged one fail loudly.
* :meth:`crash_wal_mid_append` / :meth:`torn_wal_tail` / :meth:`flip_wal_byte`
  / :meth:`fail_wal_fsync` attack the write-ahead log: a process killed
  halfway through a record write, a tail sheared off by a power cut, a bit
  flipped on disk, a disk that refuses to fsync — recovery must keep every
  record before the damage and drop everything at and after it.
* :meth:`crash_wal_writer` simulates the owning process dying outright:
  handles close without the final flush and the single-writer lock drops
  with them, so an in-process "restart" can take ownership and run
  recovery the way a real restart would.

Everything observable about the injector is derived from its ``seed``; two
injectors with the same seed attack the same shards in the same order.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, List, Optional

import numpy as np

__all__ = ["FaultInjector", "InjectedFault"]


class InjectedFault(RuntimeError):
    """Raised by patched components to simulate an internal failure."""


class _FlakyPipe:
    """Wrapper over a parent-side pipe end that drops or delays worker replies.

    Installed in place of a ``ProcessShardedIndex`` slot's ``conn``; the
    supervisor's ``poll``/``recv``/``send``/``close`` calls all land here.
    *Dropping* consumes a real reply off the wire and discards it — the
    parent sees silence, times out, and reaps a perfectly healthy worker
    (the lost-reply failure mode).  *Delaying* reports silence until a
    deadline without consuming anything — the reply then arrives late, and
    the sequence-number protocol must pair it with the right request or
    discard it.  The wrapper survives only until the supervisor replaces the
    slot's pipe on restart, which mirrors reality: a respawned worker gets a
    fresh, honest pipe.
    """

    def __init__(self, conn: Any) -> None:
        self._conn = conn
        self._drop_budget = 0
        self._delay_until = 0.0

    # -- fault programming ------------------------------------------------ #
    def drop_next(self, count: int) -> None:
        self._drop_budget += count

    def delay_for(self, seconds: float) -> None:
        self._delay_until = max(self._delay_until, time.monotonic() + seconds)

    # -- the Connection surface the supervisor uses ----------------------- #
    def poll(self, timeout: float = 0.0) -> bool:
        if time.monotonic() < self._delay_until:
            # Pretend silence (without consuming): sleep out the caller's
            # poll window so the supervisor's deadline keeps draining.
            if timeout:
                time.sleep(min(timeout, max(0.0, self._delay_until - time.monotonic())))
            if time.monotonic() < self._delay_until:
                return False
        while self._drop_budget > 0 and self._conn.poll(timeout):
            self._conn.recv()  # eat the real reply: it never happened
            self._drop_budget -= 1
        return self._conn.poll(timeout)

    def recv(self) -> Any:
        # Pure pass-through mirroring the Connection surface: the supervisor
        # only calls this after ITS poll() returned True, so the poll guard
        # RL006 wants lives at the call site, not in this shim.
        return self._conn.recv()  # repolint: disable=RL006

    def send(self, obj: object) -> None:
        self._conn.send(obj)

    def close(self) -> None:
        self._conn.close()

    def fileno(self) -> int:  # pragma: no cover — parity with Connection
        return self._conn.fileno()


class FaultInjector:
    """Seeded source of worker kills, pipe faults and maintenance failures.

    Parameters
    ----------
    seed:
        Seeds every random choice (which shard to kill next).  Two injectors
        with equal seeds produce identical fault schedules.
    kill_every:
        Cadence for :meth:`tick`: every ``kill_every``-th tick kills one
        random live worker.  ``None`` disables the schedule (``tick`` then
        never kills).
    """

    def __init__(self, seed: int = 0, kill_every: Optional[int] = None) -> None:
        if kill_every is not None and kill_every <= 0:
            raise ValueError("kill_every must be positive")
        self._rng = np.random.default_rng(seed)
        self.kill_every = kill_every
        #: ticks observed so far (one per query in a bench loop)
        self.ticks = 0
        #: total workers killed through this injector
        self.kills = 0
        #: shards killed, in order — the reproducible fault schedule
        self.kill_log: List[int] = []

    # ------------------------------------------------------------------ #
    # process faults
    # ------------------------------------------------------------------ #
    def _live_shards(self, index: Any) -> List[int]:
        return [
            shard
            for shard, slot in enumerate(index._slots)
            if slot.proc is not None and slot.proc.is_alive()
        ]

    def kill_worker(self, index: Any, shard: Optional[int] = None) -> Optional[int]:
        """SIGKILL one shard worker (seeded choice among the live ones).

        Returns the shard killed, or ``None`` when no worker is alive to
        kill.  The kill is synchronous — the process is joined — so on
        return the failure is certain to be *observable*; whether it has
        been *noticed* is the supervisor's job, which is exactly what chaos
        tests probe.
        """

        if shard is None:
            live = self._live_shards(index)
            if not live:
                return None
            shard = int(self._rng.choice(live))
        slot = index._slots[shard]
        if slot.proc is None or not slot.proc.is_alive():
            return None
        slot.proc.kill()
        slot.proc.join(timeout=10.0)
        self.kills += 1
        self.kill_log.append(shard)
        return shard

    def tick(self, index: Any) -> Optional[int]:
        """Advance the fault schedule by one query; maybe kill a worker.

        Returns the shard killed on a killing tick, else ``None``.  With
        ``kill_every=None`` this only counts ticks.
        """

        self.ticks += 1
        if self.kill_every is not None and self.ticks % self.kill_every == 0:
            return self.kill_worker(index)
        return None

    # ------------------------------------------------------------------ #
    # pipe faults
    # ------------------------------------------------------------------ #
    def _flaky_pipe(self, index: Any, shard: int) -> _FlakyPipe:
        slot = index._slots[shard]
        if slot.conn is None:
            raise RuntimeError(f"shard {shard} has no live pipe to tamper with")
        if not isinstance(slot.conn, _FlakyPipe):
            slot.conn = _FlakyPipe(slot.conn)
        return slot.conn

    def drop_replies(self, index: Any, shard: int, count: int = 1) -> None:
        """Silently discard the next ``count`` replies from ``shard``'s worker.

        The worker does its work; the parent never hears back — the
        lost-message failure mode.  The supervisor should time the request
        out and recycle the (innocent) worker.
        """

        if count <= 0:
            raise ValueError("count must be positive")
        self._flaky_pipe(index, shard).drop_next(count)

    def delay_replies(self, index: Any, shard: int, seconds: float) -> None:
        """Hold ``shard``'s replies back for ``seconds`` before delivery.

        A delay shorter than the index's ``response_timeout`` exercises slow
        but successful requests; a longer one drives the timeout → restart
        path with the late reply still in flight, which the sequence-number
        protocol must discard rather than mis-pair.
        """

        if seconds <= 0:
            raise ValueError("seconds must be positive")
        self._flaky_pipe(index, shard).delay_for(seconds)

    # ------------------------------------------------------------------ #
    # maintenance faults
    # ------------------------------------------------------------------ #
    def fail_maintenance(self, server: Any, times: int = 1) -> None:
        """Make the server's next ``times`` ``maintain()`` calls raise.

        Patches the *instance*, so the :class:`MaintenanceScheduler` (which
        calls ``self.server.maintain``) hits the fault while other servers
        stay healthy; after ``times`` failures the patch removes itself and
        the original method resumes.
        """

        if times <= 0:
            raise ValueError("times must be positive")
        original = server.maintain
        remaining = [times]

        def failing_maintain(*args: Any, **kwargs: Any) -> Any:
            if remaining[0] > 0:
                remaining[0] -= 1
                if remaining[0] == 0:
                    server.maintain = original
                raise InjectedFault("injected maintenance failure")
            return original(*args, **kwargs)  # pragma: no cover — patch removed first

        server.maintain = failing_maintain

    # ------------------------------------------------------------------ #
    # snapshot faults
    # ------------------------------------------------------------------ #
    def fail_snapshot_commit(self, times: int = 1, filename: Optional[str] = None) -> None:
        """Crash the next ``times`` snapshot file commits (tmp → final rename).

        Patches the snapshot module's atomic-rename seam so the tmp file is
        written but never published — exactly the state a power cut between
        write and rename leaves behind.  ``filename`` narrows the fault to
        commits of that file (e.g. ``"manifest.json"``, the generation's
        commit point); other files rename normally.  The patch removes
        itself after ``times`` injected failures.
        """

        if times <= 0:
            raise ValueError("times must be positive")
        from ..core import snapshot as snapshot_module

        original = snapshot_module._replace_file
        remaining = [times]

        def failing_replace(src: Path, dst: Path) -> None:
            if remaining[0] > 0 and (filename is None or dst.name == filename):
                remaining[0] -= 1
                if remaining[0] == 0:
                    snapshot_module._replace_file = original
                raise InjectedFault(f"injected crash before publishing {dst.name}")
            original(src, dst)

        snapshot_module._replace_file = failing_replace

    def truncate_snapshot_file(
        self, generation_dir: Any, filename: str, keep_bytes: int = 0
    ) -> None:
        """Chop a committed snapshot file down to ``keep_bytes`` bytes.

        Simulates a torn write / bad sector inside an already-committed
        generation; the loader must reject the generation (byte-length
        check) instead of deserializing garbage.
        """

        path = Path(generation_dir) / filename
        data = path.read_bytes()
        if not 0 <= keep_bytes < len(data):
            raise ValueError("keep_bytes must be shorter than the file")
        with open(path, "wb") as handle:  # repolint: disable=RL007 -- deliberate corruption
            handle.write(data[:keep_bytes])

    def corrupt_snapshot_checksum(self, generation_dir: Any, filename: str) -> None:
        """Flip ``filename``'s recorded checksum inside a committed manifest.

        Simulates silent content corruption that preserves byte length; the
        loader must reject the generation on checksum mismatch.
        """

        manifest_path = Path(generation_dir) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        entry = manifest["files"][filename]
        entry["sha256"] = hashlib.sha256(b"corrupt:" + entry["sha256"].encode()).hexdigest()
        with open(manifest_path, "w") as handle:  # repolint: disable=RL007 -- deliberate corruption
            json.dump(manifest, handle)

    # ------------------------------------------------------------------ #
    # write-ahead-log faults
    # ------------------------------------------------------------------ #
    def crash_wal_mid_append(self, times: int = 1, keep_bytes: Optional[int] = None) -> None:
        """Kill the process halfway through the next ``times`` record writes.

        Patches the WAL module's byte sink so it writes only a (seeded)
        prefix of the encoded record before raising — the on-disk state a
        SIGKILL or power cut leaves mid-``write``.  ``keep_bytes`` pins the
        prefix length; by default it is drawn uniformly from
        ``[0, len(record))``, so repeated faults tear headers and payloads
        alike.  The patch removes itself after ``times`` injected crashes;
        recovery (reopening the log) must truncate the torn record and keep
        everything before it.
        """

        if times <= 0:
            raise ValueError("times must be positive")
        from ..core import wal as wal_module

        original = wal_module._write_encoded
        remaining = [times]
        rng = self._rng

        def torn_write(handle: Any, data: bytes) -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                if remaining[0] == 0:
                    wal_module._write_encoded = original
                prefix = keep_bytes if keep_bytes is not None else int(rng.integers(0, len(data)))
                if not 0 <= prefix < len(data):
                    raise ValueError("keep_bytes must be shorter than the record")
                handle.write(data[:prefix])  # repolint: disable=RL008 -- deliberate torn write
                raise InjectedFault(
                    f"injected crash after {prefix}/{len(data)} bytes of a journal record"
                )
            original(handle, data)

        wal_module._write_encoded = torn_write

    def fail_wal_fsync(self, times: int = 1, after: int = 0) -> None:
        """Make journal fsyncs raise (disk refusing to flush).

        The first ``after`` fsyncs pass through untouched, then the next
        ``times`` raise — ``after`` lets a test land the failure on a
        specific flush (e.g. the group-commit fsync *after* a rotation's
        sync-before-rotate flush).  Patches the WAL module's fsync seam; the
        log must surface the lost durability guarantee as a
        :class:`~repro.core.wal.WALError`, count the failure, and roll the
        failed append call back.  Self-removing after ``times`` faults.
        """

        if times <= 0:
            raise ValueError("times must be positive")
        if after < 0:
            raise ValueError("after must be non-negative")
        from ..core import wal as wal_module

        original = wal_module._fsync_file
        skip = [after]
        remaining = [times]

        def failing_fsync(handle: Any) -> None:
            if skip[0] > 0:
                skip[0] -= 1
                original(handle)
                return
            if remaining[0] > 0:
                remaining[0] -= 1
                if remaining[0] == 0:
                    wal_module._fsync_file = original
                raise InjectedFault("injected fsync failure")
            original(handle)

        wal_module._fsync_file = failing_fsync

    def crash_wal_writer(self, wal: Any) -> None:
        """Simulate the journal's owning process dying (SIGKILL, power loss).

        Closes the write handle without the final flush a clean
        :meth:`~repro.core.wal.WriteAheadLog.close` performs and releases
        the single-writer ``wal.lock`` — exactly what process death leaves
        behind: written bytes survive in the OS cache, the advisory lock
        drops with the descriptor, and the next owning open must
        reopen-and-repair.  The crashed object refuses further appends.
        """

        wal._closed = True
        try:
            wal._handle.close()
        finally:
            wal._release_writer_lock()

    def torn_wal_tail(self, wal_dir: Any, drop_bytes: Optional[int] = None) -> int:
        """Shear bytes off the end of the journal's last segment (power cut).

        Drops ``drop_bytes`` from the tail — seeded in ``[1, size]`` when not
        given — and returns the number dropped.  Recovery must keep every
        record that still ends before the tear and discard the rest.
        """

        segments = self._wal_segments(wal_dir)
        tail = segments[-1]
        data = tail.read_bytes()
        if drop_bytes is None:
            drop_bytes = int(self._rng.integers(1, len(data) + 1))
        if not 1 <= drop_bytes <= len(data):
            raise ValueError("drop_bytes must be within the segment")
        with open(tail, "wb") as handle:
            handle.write(data[: len(data) - drop_bytes])  # repolint: disable=RL008 -- deliberate corruption
        return drop_bytes

    def flip_wal_byte(self, wal_dir: Any, offset: Optional[int] = None) -> int:
        """XOR one byte of the journal's last segment (silent bit rot).

        ``offset`` defaults to a seeded position; returns the offset flipped.
        The CRC must catch the damage: recovery and replay both stop at the
        record containing the flipped byte.
        """

        segments = self._wal_segments(wal_dir)
        tail = segments[-1]
        data = bytearray(tail.read_bytes())
        if offset is None:
            offset = int(self._rng.integers(0, len(data)))
        if not 0 <= offset < len(data):
            raise ValueError("offset must be within the segment")
        data[offset] ^= 0xFF
        with open(tail, "wb") as handle:
            handle.write(bytes(data))  # repolint: disable=RL008 -- deliberate corruption
        return offset

    def _wal_segments(self, wal_dir: Any) -> List[Path]:
        from ..core import wal as wal_module

        segments = wal_module._segment_files(Path(wal_dir))
        if not segments or segments[-1].stat().st_size == 0:
            raise RuntimeError(f"no journal bytes to corrupt under {wal_dir}")
        return segments
