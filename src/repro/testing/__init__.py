"""Test-support utilities shipped with the library (deterministic fault injection)."""

from .faults import FaultInjector, InjectedFault

__all__ = ["FaultInjector", "InjectedFault"]
