"""Test-support utilities shipped with the library (deterministic fault injection)."""

from __future__ import annotations

from .faults import FaultInjector, InjectedFault

__all__ = ["FaultInjector", "InjectedFault"]
