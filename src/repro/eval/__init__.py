"""Evaluation: ranking metrics, leave-one-out evaluator, latency measurement."""

from __future__ import annotations

from .evaluator import EvaluationResult, Evaluator
from .metrics import RankingMetrics, aggregate_ranks, hit_ratio_at_k, ndcg_at_k, rank_of_target
from .timing import Stopwatch, TimingResult, time_callable

__all__ = [
    "Evaluator",
    "EvaluationResult",
    "RankingMetrics",
    "rank_of_target",
    "hit_ratio_at_k",
    "ndcg_at_k",
    "aggregate_ranks",
    "TimingResult",
    "time_callable",
    "Stopwatch",
]
