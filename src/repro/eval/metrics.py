"""Ranking metrics: Hit Ratio and NDCG (Section IV-A2 of the paper).

Both metrics are defined for the leave-one-out, single-ground-truth-item
protocol the paper uses:

* ``HR@k`` — fraction of users whose held-out item appears in their top-k.
* ``NDCG@k`` — position-aware variant; a hit at rank r contributes
  ``1 / log2(r + 1)`` (with a single relevant item the ideal DCG is 1, so DCG
  equals NDCG).

Ranks are 1-based.  Helper functions compute the rank of a target item inside
a full score vector, breaking ties pessimistically (an item with the same
score as the target is counted as ranked above it), which avoids inflated
metrics for models that emit many identical scores (e.g. Pop).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["rank_of_target", "hit_ratio_at_k", "ndcg_at_k", "RankingMetrics", "aggregate_ranks"]


def rank_of_target(scores: np.ndarray, target: int, exclude: Optional[Iterable[int]] = None) -> int:
    """1-based rank of ``target`` among ``scores`` (full item-set evaluation).

    ``exclude`` items (the user's training interactions) are removed from the
    ranking entirely; the target itself is never excluded.
    """

    scores = np.asarray(scores, dtype=np.float64)
    if not 0 <= target < len(scores):
        raise IndexError("target item id out of range")
    target_score = scores[target]
    mask = np.ones(len(scores), dtype=bool)
    if exclude is not None:
        exclude_ids = [i for i in exclude if 0 <= i < len(scores) and i != target]
        if exclude_ids:
            mask[np.asarray(exclude_ids, dtype=np.int64)] = False
    considered = scores[mask]
    # Pessimistic tie handling: ties rank above the target.
    better_or_equal = int(np.sum(considered >= target_score))
    return max(better_or_equal, 1)


def hit_ratio_at_k(ranks: Sequence[int], k: int) -> float:
    """HR@k = fraction of ranks ≤ k."""

    ranks = np.asarray(list(ranks), dtype=np.int64)
    if len(ranks) == 0:
        return 0.0
    if k <= 0:
        raise ValueError("k must be positive")
    return float(np.mean(ranks <= k))


def ndcg_at_k(ranks: Sequence[int], k: int) -> float:
    """NDCG@k for single-relevant-item ranking: (2^1 - 1)/log2(rank+1) if rank ≤ k."""

    ranks = np.asarray(list(ranks), dtype=np.int64)
    if len(ranks) == 0:
        return 0.0
    if k <= 0:
        raise ValueError("k must be positive")
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(np.mean(gains))


class RankingMetrics:
    """Aggregate HR@k / NDCG@k for a set of cutoffs (20, 50, 100 in the paper)."""

    def __init__(self, cutoffs: Sequence[int] = (20, 50, 100)) -> None:
        if not cutoffs or any(k <= 0 for k in cutoffs):
            raise ValueError("cutoffs must be positive integers")
        self.cutoffs = tuple(sorted(set(int(k) for k in cutoffs)))
        self._ranks: List[int] = []

    def add(self, rank: int) -> None:
        if rank < 1:
            raise ValueError("rank must be 1-based (>= 1)")
        self._ranks.append(int(rank))

    def extend(self, ranks: Iterable[int]) -> None:
        for rank in ranks:
            self.add(rank)

    @property
    def num_users(self) -> int:
        return len(self._ranks)

    def compute(self) -> Dict[str, float]:
        """Return ``{"HR@20": ..., "NDCG@20": ..., ...}`` for all cutoffs."""

        results: Dict[str, float] = {}
        for k in self.cutoffs:
            results[f"HR@{k}"] = hit_ratio_at_k(self._ranks, k)
            results[f"NDCG@{k}"] = ndcg_at_k(self._ranks, k)
        return results


def aggregate_ranks(ranks: Sequence[int], cutoffs: Sequence[int] = (20, 50, 100)) -> Dict[str, float]:
    """Convenience wrapper: metrics dict straight from a rank list."""

    metrics = RankingMetrics(cutoffs)
    metrics.extend(ranks)
    return metrics.compute()
