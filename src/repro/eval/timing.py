"""Latency measurement utilities for the real-time comparison (Table III).

Production candidate generation lives or dies on tail latency; the paper's
Table III reports the *average* per-new-interaction cost of UserKNN versus
the SCCF user-based component, broken into "inferring time" and "identifying
time".  These helpers time arbitrary callables with warm-up iterations and
report mean / percentile statistics in milliseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

__all__ = ["TimingResult", "time_callable", "Stopwatch"]


@dataclass
class TimingResult:
    """Summary statistics (in milliseconds) of repeated timings."""

    label: str
    samples_ms: List[float]

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.samples_ms)) if self.samples_ms else 0.0

    @property
    def median_ms(self) -> float:
        return float(np.median(self.samples_ms)) if self.samples_ms else 0.0

    @property
    def p95_ms(self) -> float:
        return float(np.percentile(self.samples_ms, 95)) if self.samples_ms else 0.0

    @property
    def total_ms(self) -> float:
        return float(np.sum(self.samples_ms))

    def as_row(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "mean_ms": round(self.mean_ms, 3),
            "median_ms": round(self.median_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "samples": len(self.samples_ms),
        }


def time_callable(
    func: Callable[[], object],
    repetitions: int = 20,
    warmup: int = 2,
    label: str = "operation",
) -> TimingResult:
    """Time ``func`` ``repetitions`` times after ``warmup`` discarded runs."""

    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        func()
    samples: List[float] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        func()
        samples.append((time.perf_counter() - start) * 1000.0)
    return TimingResult(label=label, samples_ms=samples)


class Stopwatch:
    """Accumulate named timing samples across a streaming experiment."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def record(self, label: str, milliseconds: float) -> None:
        if milliseconds < 0:
            raise ValueError("milliseconds must be non-negative")
        self._samples.setdefault(label, []).append(float(milliseconds))

    def time(self, label: str, func: Callable[[], object]) -> object:
        """Run ``func`` once, record its duration under ``label``, return its result."""

        start = time.perf_counter()
        result = func()
        self.record(label, (time.perf_counter() - start) * 1000.0)
        return result

    def result(self, label: str) -> TimingResult:
        return TimingResult(label=label, samples_ms=list(self._samples.get(label, [])))

    def labels(self) -> Sequence[str]:
        return list(self._samples.keys())

    def summary(self) -> Dict[str, float]:
        """Mean milliseconds per label."""

        return {label: self.result(label).mean_ms for label in self._samples}
