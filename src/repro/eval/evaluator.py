"""Leave-one-out evaluation over the full item set (Section IV-A2).

For every user with a held-out item the evaluator asks the model to score the
whole catalog, computes the rank of the ground-truth item (excluding the
user's training interactions from the ranking, since the paper does not
re-recommend ``R⁺_u``), and aggregates HR@k / NDCG@k.

Two details mirror the paper's protocol:

* validation-split evaluation uses the training history only;
* test-split evaluation "adds all validation items and users back to the
  training set", i.e. the user's history passed to the model includes her
  validation item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datasets import RecDataset
from ..models.base import Recommender
from .metrics import RankingMetrics, rank_of_target

__all__ = ["EvaluationResult", "Evaluator"]


@dataclass
class EvaluationResult:
    """Metrics plus per-user ranks for one (model, dataset, split) evaluation."""

    model_name: str
    dataset_name: str
    split: str
    metrics: Dict[str, float]
    num_users: int
    ranks: List[int] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "split": self.split,
            "users": self.num_users,
        }
        row.update({name: round(value, 4) for name, value in self.metrics.items()})
        return row


class Evaluator:
    """Full-item-set, leave-one-out evaluator with the paper's cutoffs."""

    def __init__(
        self,
        cutoffs: Sequence[int] = (20, 50, 100),
        max_users: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.cutoffs = tuple(cutoffs)
        self.max_users = max_users
        self.seed = seed

    def _select_users(self, users: List[int]) -> List[int]:
        if self.max_users is None or len(users) <= self.max_users:
            return users
        rng = np.random.default_rng(self.seed)
        chosen = rng.choice(len(users), size=self.max_users, replace=False)
        return [users[i] for i in sorted(chosen)]

    def evaluate(
        self,
        model: Recommender,
        dataset: RecDataset,
        split: str = "test",
        model_name: Optional[str] = None,
        batch_size: Optional[int] = None,
    ) -> EvaluationResult:
        """Evaluate ``model`` on the given split of ``dataset``.

        ``batch_size`` switches on chunked scoring: users are scored
        ``batch_size`` at a time through the model's ``score_items_batch``
        (one matmul per chunk for the batched models) instead of one
        ``score_items`` call per user.  Scores agree between the two paths up
        to the floating-point rounding of the model's scoring dtype (BLAS
        kernels differ across batch shapes), so rankings and metrics match
        unless two items are tied to within that rounding; models scoring
        through a float64 pipeline agree to ~1e-15.
        """

        if split not in ("test", "validation"):
            raise ValueError("split must be 'test' or 'validation'")
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        targets = dataset.test_items if split == "test" else dataset.validation_items
        users = self._select_users(sorted(targets.keys()))

        evaluable: List[int] = []
        histories: List[List[int]] = []
        for user in users:
            history = dataset.full_sequence(user, include_validation=(split == "test"))
            if not history:
                continue
            evaluable.append(user)
            histories.append(history)

        metrics = RankingMetrics(self.cutoffs)
        ranks: List[int] = []
        if batch_size is None:
            for user, history in zip(evaluable, histories):
                scores = model.score_items(user, history=history)
                rank = rank_of_target(scores, targets[user], exclude=history)
                metrics.add(rank)
                ranks.append(rank)
        else:
            for start in range(0, len(evaluable), batch_size):
                chunk_users = evaluable[start:start + batch_size]
                chunk_histories = histories[start:start + batch_size]
                score_matrix = model.score_items_batch(chunk_users, histories=chunk_histories)
                for row, user in enumerate(chunk_users):
                    rank = rank_of_target(
                        score_matrix[row], targets[user], exclude=chunk_histories[row]
                    )
                    metrics.add(rank)
                    ranks.append(rank)

        return EvaluationResult(
            model_name=model_name or model.name,
            dataset_name=dataset.name,
            split=split,
            metrics=metrics.compute(),
            num_users=metrics.num_users,
            ranks=ranks,
        )

    def evaluate_many(
        self,
        models: Dict[str, Recommender],
        dataset: RecDataset,
        split: str = "test",
        batch_size: Optional[int] = None,
    ) -> List[EvaluationResult]:
        """Evaluate several named models on the same dataset/split."""

        return [
            self.evaluate(model, dataset, split=split, model_name=name, batch_size=batch_size)
            for name, model in models.items()
        ]
