"""Cross-request micro-batching front-end over :class:`RealTimeServer`.

The batched serving path is an order of magnitude faster per item than the
batch-of-one loop, but only callers that *arrive with* a batch can use it.
Live traffic arrives one request at a time from many concurrent clients —
so :class:`AsyncFrontend` manufactures the batches: every ``recommend`` /
``observe`` coroutine enqueues one request into a bounded per-operation
queue and awaits a future, while a drainer task per operation closes a
*window* over whatever is queued and executes it through the server's
batch canonicals (``recommend_batch`` / ``observe_batch``).

Window policy — a window closes on whichever comes first:

* ``max_batch`` requests have been collected, or
* ``max_wait_ms`` has elapsed since the window's first request.

``max_wait_ms`` is the latency the *first* request in a sparse window
donates to batching; under load windows fill to ``max_batch`` long before
the timer and the knob costs nothing.  ``max_wait_ms=0`` never waits — a
window is just whatever already sits in the queue (pure piggybacking).

Backpressure — the queues are bounded (``max_queue``); at capacity the
behaviour is the caller's choice: ``backpressure="wait"`` suspends the
caller until a slot frees (closed-loop clients), ``"reject"`` raises
:class:`QueueFull` immediately (open-loop clients that would rather shed
load than build an unbounded backlog).

Deadlines include queue wait.  Each request is stamped at *admission*; the
server's batched paths date latency samples and deadline checks from that
stamp, so a request that expired while queued short-circuits to the
stale/empty fallback tail instead of consuming a scoring slot, and the
p50/p99 surfaced through ``health()`` are honest end-to-end numbers.

Execution is deliberately synchronous on the event-loop thread: the window
body is CPU-bound NumPy, so handing it to a worker thread buys no
parallelism under the GIL but would cost a cross-thread round trip per
window and reorder windows against the queue.  Running it inline keeps
windows strictly ordered (no request can be lost, duplicated, or overtaken)
and the loop's unavailability *during* a window is itself backpressure.

Requests are validated eagerly at admission (through the same
``_admit_recommend`` / ``_validate_event`` hooks the server's own batch
paths use), so a malformed request raises in its caller and can never
poison a coalesced window of well-formed neighbours.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..core.realtime import RealTimeServer, RecommendRequest

__all__ = ["AsyncFrontend", "FrontendStats", "QueueFull"]


class QueueFull(RuntimeError):
    """The bounded request queue is at capacity (``backpressure="reject"`` only)."""


@dataclass
class FrontendStats:
    """Counters describing how well concurrency converted into batch width."""

    #: requests admitted into the queues (rejected ones are not included)
    recommend_requests: int = 0
    observe_requests: int = 0
    #: windows executed per operation
    recommend_windows: int = 0
    observe_windows: int = 0
    #: widest window seen per operation
    largest_recommend_window: int = 0
    largest_observe_window: int = 0
    #: admissions refused with QueueFull (``backpressure="reject"`` only)
    rejected_requests: int = 0

    def mean_recommend_window(self) -> Optional[float]:
        """Average coalesced width; 1.0 means batching never helped."""

        if self.recommend_windows == 0:
            return None
        return self.recommend_requests / self.recommend_windows

    def mean_observe_window(self) -> Optional[float]:
        if self.observe_windows == 0:
            return None
        return self.observe_requests / self.observe_windows


@dataclass
class _PendingRecommend:
    request: RecommendRequest
    future: "asyncio.Future[List[int]]"


@dataclass
class _PendingObserve:
    user_id: int
    item_id: int
    start: float
    future: "asyncio.Future[None]"


class AsyncFrontend:
    """Coalesces concurrent recommend/observe calls into batched windows.

    Use as an async context manager so the drainer tasks are started and
    torn down with the scope::

        async with AsyncFrontend(server, max_batch=64, max_wait_ms=2.0) as fe:
            results = await asyncio.gather(*(fe.recommend(u, k=10) for u in users))

    ``close()`` (and ``__aexit__``) drains both queues fully before
    cancelling the drainers — every admitted request is answered.
    """

    def __init__(
        self,
        server: RealTimeServer,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_queue: int = 1024,
        backpressure: str = "wait",
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if backpressure not in ("wait", "reject"):
            raise ValueError('backpressure must be "wait" or "reject"')
        self.server = server
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.backpressure = backpressure
        self.stats = FrontendStats()
        self._recommend_queue: Optional["asyncio.Queue[_PendingRecommend]"] = None
        self._observe_queue: Optional["asyncio.Queue[_PendingObserve]"] = None
        self._drainers: List["asyncio.Task[None]"] = []

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Create the queues and spawn one drainer task per operation."""

        if self._drainers:
            raise RuntimeError("frontend already started")
        self._recommend_queue = asyncio.Queue(maxsize=self.max_queue)
        self._observe_queue = asyncio.Queue(maxsize=self.max_queue)
        loop = asyncio.get_running_loop()
        self._drainers = [
            loop.create_task(
                self._drain(self._recommend_queue, self._execute_recommends)
            ),
            loop.create_task(self._drain(self._observe_queue, self._execute_observes)),
        ]

    async def close(self) -> None:
        """Flush both queues, then stop the drainers.

        Waits until every admitted request has been executed (``join``)
        before cancelling, so a clean shutdown never drops a request that
        was already accepted.  Idempotent.
        """

        if not self._drainers:
            return
        assert self._recommend_queue is not None and self._observe_queue is not None
        await self._recommend_queue.join()
        await self._observe_queue.join()
        # Every admitted observe has now been applied — but under a lazy
        # fsync policy ("batch"/"interval") the tail of the journal may
        # still sit in the OS cache.  Flush it before the drainers die:
        # an event we acknowledged to its caller must survive the shutdown.
        self.server.sync_wal()
        for task in self._drainers:
            task.cancel()
        await asyncio.gather(*self._drainers, return_exceptions=True)
        self._drainers = []
        self._recommend_queue = None
        self._observe_queue = None

    async def __aenter__(self) -> "AsyncFrontend":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # request coroutines
    # ------------------------------------------------------------------ #
    async def recommend(
        self,
        user_id: int,
        k: int = 50,
        exclude_seen: bool = True,
        deadline_ms: Optional[float] = None,
    ) -> List[int]:
        """Await a top-``k`` list served from a coalesced scoring window.

        Semantics are identical to :meth:`RealTimeServer.recommend`
        (validation, caching, the full → degraded → stale → empty fallback
        chain) — only the latency sample and the ``deadline_ms`` check
        additionally cover the time spent queued here.
        """

        start = time.perf_counter()
        request = RecommendRequest(
            user_id=user_id,
            k=k,
            exclude_seen=exclude_seen,
            deadline_ms=deadline_ms,
            start=start,
        )
        # Admission-time validation: raise in this caller, not in the window.
        self.server._admit_recommend(request, start)
        queue = self._started(self._recommend_queue)
        future: "asyncio.Future[List[int]]" = asyncio.get_running_loop().create_future()
        await self._enqueue(queue, _PendingRecommend(request=request, future=future))
        self.stats.recommend_requests += 1
        return await future

    async def observe(self, user_id: int, item_id: int) -> None:
        """Await ingestion of one event through a coalesced observe window."""

        start = time.perf_counter()
        user_id, item_id = self.server._validate_event(user_id, item_id)
        queue = self._started(self._observe_queue)
        future: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        await self._enqueue(
            queue,
            _PendingObserve(user_id=user_id, item_id=item_id, start=start, future=future),
        )
        self.stats.observe_requests += 1
        await future

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _started(self, queue: Optional["asyncio.Queue[Any]"]) -> "asyncio.Queue[Any]":
        if queue is None:
            raise RuntimeError("frontend not started (use `async with` or start())")
        return queue

    async def _enqueue(self, queue: "asyncio.Queue[Any]", item: object) -> None:
        try:
            queue.put_nowait(item)  # below capacity: no await round trip
        except asyncio.QueueFull:
            if self.backpressure == "reject":
                self.stats.rejected_requests += 1
                raise QueueFull(
                    f"request queue at capacity ({self.max_queue})"
                ) from None
            await queue.put(item)

    async def _drain(
        self,
        queue: "asyncio.Queue[Any]",
        execute: Callable[[List[Any]], None],
    ) -> None:
        """Collect windows off one queue forever (cancelled by :meth:`close`).

        Blocks on the first request, then keeps the window open until either
        ``max_batch`` is reached or ``max_wait_ms`` has elapsed since that
        first request.  ``task_done`` is called for every collected item even
        if execution fails, so ``close()``'s ``join`` cannot hang.
        """

        loop = asyncio.get_running_loop()
        while True:
            window: List[Any] = [await queue.get()]
            try:
                # Fast path: take everything already queued without yielding.
                # Under load windows fill right here, and the timed wait
                # below — whose wait_for spins up a task per call — never
                # runs; the coalescer's overhead stays O(1) per window
                # instead of O(1) per request.
                while len(window) < self.max_batch and not queue.empty():
                    window.append(queue.get_nowait())
                if len(window) < self.max_batch and self.max_wait_ms > 0:
                    deadline = loop.time() + self.max_wait_ms / 1000.0
                    while len(window) < self.max_batch:
                        remaining = deadline - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            window.append(
                                await asyncio.wait_for(queue.get(), timeout=remaining)
                            )
                        except asyncio.TimeoutError:
                            break
                        while len(window) < self.max_batch and not queue.empty():
                            window.append(queue.get_nowait())
                execute(window)
            finally:
                for _ in window:
                    queue.task_done()

    def _execute_recommends(self, window: List[_PendingRecommend]) -> None:
        """Serve one recommend window; every future resolves exactly once.

        ``recommend_batch`` absorbs scoring failures into its fallback chain,
        so an exception here is unexpected — it is fanned out to every
        waiter rather than swallowed, and no request is lost or retried
        (retrying could double-count telemetry and double-serve siblings).
        """

        self.stats.recommend_windows += 1
        self.stats.largest_recommend_window = max(
            self.stats.largest_recommend_window, len(window)
        )
        try:
            results = self.server.recommend_batch(
                [pending.request for pending in window]
            )
        except Exception as exc:
            for pending in window:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending, result in zip(window, results):
            if not pending.future.done():
                pending.future.set_result(result)

    def _execute_observes(self, window: List[_PendingObserve]) -> None:
        self.stats.observe_windows += 1
        self.stats.largest_observe_window = max(
            self.stats.largest_observe_window, len(window)
        )
        events = [(pending.user_id, pending.item_id) for pending in window]
        starts = [pending.start for pending in window]
        try:
            self.server.observe_batch(events, request_starts=starts)
        except Exception as exc:
            for pending in window:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        for pending in window:
            if not pending.future.done():
                pending.future.set_result(None)
