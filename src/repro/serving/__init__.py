"""Asyncio serving layer: cross-request micro-batching for live traffic.

:class:`AsyncFrontend` is the serve-side mirror of the ingest-side
``EventBuffer``: concurrent callers await ``recommend``/``observe``
coroutines, and a coalescer turns that concurrency into batch width by
draining bounded per-operation queues into
``RealTimeServer.recommend_batch`` / ``observe_batch`` windows.
"""

from .frontend import AsyncFrontend, FrontendStats, QueueFull

__all__ = ["AsyncFrontend", "FrontendStats", "QueueFull"]
