"""Sequence utilities for sequential recommenders (SASRec).

Implements the truncation rule of eq. (3) — keep the most recent ``L`` items
when a sequence exceeds the maximum length — plus left-padding to a fixed
length so batches can be stacked into rectangular arrays.  Item id 0 is
reserved as the padding token throughout the library; real item ids are
shifted by +1 when fed to sequence models (handled inside the models).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "PADDING_ID",
    "truncate_sequence",
    "pad_sequence",
    "pad_and_truncate",
    "batch_sequences",
    "recent_window",
]

PADDING_ID = 0


def truncate_sequence(sequence: Sequence[int], max_length: int) -> List[int]:
    """Keep only the last ``max_length`` items (eq. 3)."""

    if max_length <= 0:
        raise ValueError("max_length must be positive")
    sequence = list(sequence)
    if len(sequence) <= max_length:
        return sequence
    return sequence[-max_length:]


def pad_sequence(sequence: Sequence[int], length: int, pad_value: int = PADDING_ID) -> np.ndarray:
    """Left-pad ``sequence`` with ``pad_value`` up to ``length``."""

    if length <= 0:
        raise ValueError("length must be positive")
    sequence = list(sequence)
    if len(sequence) > length:
        raise ValueError("sequence longer than target length; truncate first")
    padded = np.full(length, pad_value, dtype=np.int64)
    if sequence:
        padded[length - len(sequence):] = np.asarray(sequence, dtype=np.int64)
    return padded


def pad_and_truncate(sequence: Sequence[int], max_length: int, pad_value: int = PADDING_ID) -> np.ndarray:
    """Truncate to the last ``max_length`` items, then left-pad to exactly that length."""

    return pad_sequence(truncate_sequence(sequence, max_length), max_length, pad_value)


def batch_sequences(
    sequences: Sequence[Sequence[int]],
    max_length: int,
    pad_value: int = PADDING_ID,
) -> np.ndarray:
    """Stack variable-length sequences into a ``(batch, max_length)`` array."""

    return np.stack([pad_and_truncate(seq, max_length, pad_value) for seq in sequences])


def recent_window(sequence: Sequence[int], window: int) -> List[int]:
    """The user's most recent ``window`` interactions.

    The paper infers FISM user embeddings from "the recent 15 items" and
    recommends "each user's latest 15 items to her/his similar users" in the
    user-based component; this helper expresses that recency window.
    """

    if window <= 0:
        raise ValueError("window must be positive")
    sequence = list(sequence)
    return sequence[-window:]
