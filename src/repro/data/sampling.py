"""Negative sampling and mini-batch construction.

The paper trains every model "with negative sampling and view[s] the task as
a binary classification problem" (eq. 9): observed user-item interactions are
positives and unobserved items are sampled as negatives.  Two batching
strategies are provided, matching the per-model training protocols:

* :class:`UserGroupedBatcher` — FISM-style batches "formed from all
  interactions of a randomly sampled user" (following He et al., NAIS).
* :class:`SequenceBatcher` — SASRec-style next-item batches where the target
  of ``[v₁, …, v_{L-1}]`` is the shifted sequence ``[v₂, …, v_L]`` and one
  negative is drawn per position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Set, Tuple

import numpy as np

from .datasets import RecDataset
from .sequences import PADDING_ID, pad_and_truncate

__all__ = [
    "NegativeSampler",
    "UserGroupedBatch",
    "UserGroupedBatcher",
    "SequenceBatch",
    "SequenceBatcher",
]


class NegativeSampler:
    """Uniformly sample unobserved items for a user.

    ``exclude`` sets are the user's observed items ``R⁺_u``; sampling retries
    until it finds an unobserved item (with a deterministic fallback scan for
    pathological cases where a user has consumed almost the whole catalog).
    """

    def __init__(self, num_items: int, rng: Optional[np.random.Generator] = None) -> None:
        if num_items <= 0:
            raise ValueError("num_items must be positive")
        self.num_items = num_items
        self._rng = rng or np.random.default_rng()

    def sample(self, exclude: Set[int], size: int = 1) -> np.ndarray:
        """Draw ``size`` negatives not contained in ``exclude``."""

        if size < 0:
            raise ValueError("size must be non-negative")
        if len(exclude) >= self.num_items:
            raise ValueError("cannot sample negatives: user has interacted with every item")
        negatives = np.empty(size, dtype=np.int64)
        for idx in range(size):
            candidate = int(self._rng.integers(0, self.num_items))
            attempts = 0
            while candidate in exclude:
                candidate = int(self._rng.integers(0, self.num_items))
                attempts += 1
                if attempts > 100:
                    # Deterministic fallback: first unobserved item.
                    for fallback in range(self.num_items):
                        if fallback not in exclude:
                            candidate = fallback
                            break
                    break
            negatives[idx] = candidate
        return negatives


@dataclass
class UserGroupedBatch:
    """All training instances of a single user (FISM protocol)."""

    user_id: int
    history: np.ndarray          # item ids the user interacted with (training split)
    positive_items: np.ndarray   # targets (== history items, each predicted from the others)
    negative_items: np.ndarray   # sampled negatives, shape (num_positives, negatives_per_positive)


class UserGroupedBatcher:
    """Yield one :class:`UserGroupedBatch` per user in shuffled order."""

    def __init__(
        self,
        dataset: RecDataset,
        negatives_per_positive: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        self.dataset = dataset
        self.negatives_per_positive = negatives_per_positive
        self._rng = rng or np.random.default_rng()
        self._sampler = NegativeSampler(dataset.num_items, self._rng)
        self._user_sequences = dataset.train.user_sequences()

    def __len__(self) -> int:
        return len(self._user_sequences)

    def epoch(self) -> Iterator[UserGroupedBatch]:
        users = list(self._user_sequences.keys())
        self._rng.shuffle(users)
        for user in users:
            sequence = self._user_sequences[user]
            if len(sequence) < 2:
                continue
            history = np.asarray(sequence, dtype=np.int64)
            positives = history.copy()
            exclude = set(int(i) for i in history)
            negatives = np.stack(
                [self._sampler.sample(exclude, self.negatives_per_positive) for _ in positives]
            )
            yield UserGroupedBatch(
                user_id=user,
                history=history,
                positive_items=positives,
                negative_items=negatives,
            )


@dataclass
class SequenceBatch:
    """A SASRec training batch of padded sequences and per-position targets."""

    user_ids: np.ndarray         # (batch,)
    input_sequences: np.ndarray  # (batch, max_length) — 0 is padding
    positive_targets: np.ndarray  # (batch, max_length)
    negative_targets: np.ndarray  # (batch, max_length)
    mask: np.ndarray             # (batch, max_length) — 1 where a real target exists


class SequenceBatcher:
    """Build shifted next-item training batches for sequential models.

    Item ids are offset by +1 inside the batch so that 0 can act as padding;
    the models undo the shift when looking up their embedding tables.
    """

    def __init__(
        self,
        dataset: RecDataset,
        max_length: int = 50,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_length <= 1:
            raise ValueError("max_length must be at least 2")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.max_length = max_length
        self.batch_size = batch_size
        self._rng = rng or np.random.default_rng()
        self._sampler = NegativeSampler(dataset.num_items, self._rng)
        self._user_sequences = {
            user: seq for user, seq in dataset.train.user_sequences().items() if len(seq) >= 2
        }

    def __len__(self) -> int:
        return (len(self._user_sequences) + self.batch_size - 1) // self.batch_size

    def num_users(self) -> int:
        return len(self._user_sequences)

    def _build_row(self, user: int, sequence: Sequence[int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        shifted = [item + 1 for item in sequence]  # reserve 0 for padding
        inputs = pad_and_truncate(shifted[:-1], self.max_length, PADDING_ID)
        positives = pad_and_truncate(shifted[1:], self.max_length, PADDING_ID)
        mask = (positives != PADDING_ID).astype(np.float64)
        exclude = set(int(i) for i in sequence)
        negatives = np.zeros(self.max_length, dtype=np.int64)
        for pos in range(self.max_length):
            if mask[pos]:
                negatives[pos] = int(self._sampler.sample(exclude, 1)[0]) + 1
        return inputs, positives, negatives, mask

    def epoch(self) -> Iterator[SequenceBatch]:
        users = list(self._user_sequences.keys())
        self._rng.shuffle(users)
        for start in range(0, len(users), self.batch_size):
            chunk = users[start:start + self.batch_size]
            rows = [self._build_row(user, self._user_sequences[user]) for user in chunk]
            yield SequenceBatch(
                user_ids=np.asarray(chunk, dtype=np.int64),
                input_sequences=np.stack([r[0] for r in rows]),
                positive_targets=np.stack([r[1] for r in rows]),
                negative_targets=np.stack([r[2] for r in rows]),
                mask=np.stack([r[3] for r in rows]),
            )
