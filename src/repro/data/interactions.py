"""Core interaction containers shared by every model and experiment.

An e-commerce candidate-generation system consumes a log of *implicit
feedback* events — ``(user, item, timestamp)`` clicks or purchases.  This
module provides:

* :class:`Interaction` — a single event (optionally carrying a category id,
  used by the Figure 1 interest-drift analysis).
* :class:`InteractionLog` — an append-friendly event log with chronological
  per-user views, conversion to a sparse user-item matrix, and the per-user
  item sets ``R⁺_u`` the paper's equations are written in terms of.

All ids are contiguous non-negative integers; re-indexing raw dataset ids is
the responsibility of :mod:`repro.data.preprocessing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np
from scipy import sparse

__all__ = ["Interaction", "InteractionLog"]


@dataclass(frozen=True)
class Interaction:
    """One implicit-feedback event."""

    user_id: int
    item_id: int
    timestamp: float = 0.0
    category_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.user_id < 0 or self.item_id < 0:
            raise ValueError("user_id and item_id must be non-negative")


class InteractionLog:
    """A chronological log of user-item interactions.

    The log keeps three synchronized NumPy arrays (users, items, timestamps)
    plus an optional category array, and lazily materializes derived views
    (per-user sequences, sparse matrix, item sets) that are invalidated on
    append.  This mirrors how an online system accumulates new events while
    models read consistent snapshots.
    """

    def __init__(
        self,
        users: Optional[Sequence[int]] = None,
        items: Optional[Sequence[int]] = None,
        timestamps: Optional[Sequence[float]] = None,
        categories: Optional[Sequence[int]] = None,
    ) -> None:
        users = [] if users is None else list(users)
        items = [] if items is None else list(items)
        if len(users) != len(items):
            raise ValueError("users and items must have the same length")
        if timestamps is None:
            timestamps = list(range(len(users)))
        if len(timestamps) != len(users):
            raise ValueError("timestamps must match the number of interactions")
        if categories is not None and len(categories) != len(users):
            raise ValueError("categories must match the number of interactions")

        self._users: List[int] = [int(u) for u in users]
        self._items: List[int] = [int(i) for i in items]
        self._timestamps: List[float] = [float(t) for t in timestamps]
        self._categories: Optional[List[int]] = (
            [int(c) for c in categories] if categories is not None else None
        )
        self._dirty = True
        self._user_sequences: Dict[int, List[int]] = {}
        self._user_item_sets: Dict[int, set] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_interactions(cls, interactions: Iterable[Interaction]) -> "InteractionLog":
        users, items, timestamps, categories = [], [], [], []
        has_category = False
        for event in interactions:
            users.append(event.user_id)
            items.append(event.item_id)
            timestamps.append(event.timestamp)
            categories.append(event.category_id if event.category_id is not None else -1)
            has_category = has_category or event.category_id is not None
        return cls(users, items, timestamps, categories if has_category else None)

    def copy(self) -> "InteractionLog":
        return InteractionLog(
            list(self._users),
            list(self._items),
            list(self._timestamps),
            list(self._categories) if self._categories is not None else None,
        )

    def append(self, interaction: Interaction) -> None:
        """Append a new event (online arrival of a click/purchase)."""

        self._users.append(interaction.user_id)
        self._items.append(interaction.item_id)
        self._timestamps.append(interaction.timestamp)
        if self._categories is not None:
            self._categories.append(
                interaction.category_id if interaction.category_id is not None else -1
            )
        elif interaction.category_id is not None:
            self._categories = [-1] * (len(self._users) - 1) + [interaction.category_id]
        self._dirty = True

    def extend(self, interactions: Iterable[Interaction]) -> None:
        for interaction in interactions:
            self.append(interaction)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self) -> Iterator[Interaction]:
        for idx in range(len(self)):
            yield Interaction(
                self._users[idx],
                self._items[idx],
                self._timestamps[idx],
                self._categories[idx] if self._categories is not None else None,
            )

    @property
    def users(self) -> np.ndarray:
        return np.asarray(self._users, dtype=np.int64)

    @property
    def items(self) -> np.ndarray:
        return np.asarray(self._items, dtype=np.int64)

    @property
    def timestamps(self) -> np.ndarray:
        return np.asarray(self._timestamps, dtype=np.float64)

    @property
    def categories(self) -> Optional[np.ndarray]:
        if self._categories is None:
            return None
        return np.asarray(self._categories, dtype=np.int64)

    @property
    def num_users(self) -> int:
        return int(max(self._users) + 1) if self._users else 0

    @property
    def num_items(self) -> int:
        return int(max(self._items) + 1) if self._items else 0

    def unique_users(self) -> np.ndarray:
        return np.unique(self.users)

    def unique_items(self) -> np.ndarray:
        return np.unique(self.items)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        if not self._dirty:
            return
        order = np.argsort(np.asarray(self._timestamps), kind="stable")
        sequences: Dict[int, List[int]] = {}
        item_sets: Dict[int, set] = {}
        users = self._users
        items = self._items
        for idx in order:
            user = users[idx]
            item = items[idx]
            sequences.setdefault(user, []).append(item)
            item_sets.setdefault(user, set()).add(item)
        self._user_sequences = sequences
        self._user_item_sets = item_sets
        self._dirty = False

    def user_sequence(self, user_id: int) -> List[int]:
        """Items the user interacted with, in chronological order (``S_u``)."""

        self._rebuild()
        return list(self._user_sequences.get(user_id, []))

    def user_item_set(self, user_id: int) -> set:
        """The set ``R⁺_u`` of items the user has interacted with."""

        self._rebuild()
        return set(self._user_item_sets.get(user_id, set()))

    def user_sequences(self) -> Dict[int, List[int]]:
        """All chronological sequences keyed by user id (copies)."""

        self._rebuild()
        return {user: list(seq) for user, seq in self._user_sequences.items()}

    def to_matrix(
        self,
        num_users: Optional[int] = None,
        num_items: Optional[int] = None,
    ) -> sparse.csr_matrix:
        """Binary user-item matrix ``R ∈ {0,1}^{n×m}`` in CSR form."""

        num_users = num_users if num_users is not None else self.num_users
        num_items = num_items if num_items is not None else self.num_items
        if len(self) == 0:
            return sparse.csr_matrix((num_users, num_items))
        data = np.ones(len(self), dtype=np.float64)
        matrix = sparse.coo_matrix(
            (data, (self.users, self.items)), shape=(num_users, num_items)
        ).tocsr()
        matrix.data[:] = 1.0  # collapse duplicate events into implicit feedback
        return matrix

    def interactions_per_user(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for user in self._users:
            counts[user] = counts.get(user, 0) + 1
        return counts

    def interactions_per_item(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for item in self._items:
            counts[item] = counts.get(item, 0) + 1
        return counts

    def item_popularity(self, num_items: Optional[int] = None) -> np.ndarray:
        """Interaction counts per item id as a dense vector."""

        num_items = num_items if num_items is not None else self.num_items
        popularity = np.zeros(num_items, dtype=np.int64)
        for item in self._items:
            if item < num_items:
                popularity[item] += 1
        return popularity

    def filter_users(self, user_ids: Iterable[int]) -> "InteractionLog":
        """Return a new log containing only events from ``user_ids``."""

        keep = set(int(u) for u in user_ids)
        mask = [u in keep for u in self._users]
        return self._filter(mask)

    def filter_items(self, item_ids: Iterable[int]) -> "InteractionLog":
        """Return a new log containing only events touching ``item_ids``."""

        keep = set(int(i) for i in item_ids)
        mask = [i in keep for i in self._items]
        return self._filter(mask)

    def _filter(self, mask: Sequence[bool]) -> "InteractionLog":
        users = [u for u, keep in zip(self._users, mask) if keep]
        items = [i for i, keep in zip(self._items, mask) if keep]
        timestamps = [t for t, keep in zip(self._timestamps, mask) if keep]
        categories = None
        if self._categories is not None:
            categories = [c for c, keep in zip(self._categories, mask) if keep]
        return InteractionLog(users, items, timestamps, categories)
