"""Data substrate: interaction logs, datasets, loaders, synthetic generators, sampling."""

from __future__ import annotations

from .datasets import DatasetStatistics, RecDataset
from .interactions import Interaction, InteractionLog
from .loaders import (
    load_amazon_ratings,
    load_csv_interactions,
    load_movielens_genres,
    load_movielens_ratings,
)
from .preprocessing import build_dataset, k_core_filter, leave_one_out_split, reindex_ids
from .sampling import (
    NegativeSampler,
    SequenceBatch,
    SequenceBatcher,
    UserGroupedBatch,
    UserGroupedBatcher,
)
from .sequences import (
    PADDING_ID,
    batch_sequences,
    pad_and_truncate,
    pad_sequence,
    recent_window,
    truncate_sequence,
)
from .synthetic import (
    PRESETS,
    SyntheticConfig,
    SyntheticWorld,
    generate_dataset,
    generate_interaction_log,
    generate_world,
    load_preset,
)

__all__ = [
    "Interaction",
    "InteractionLog",
    "RecDataset",
    "DatasetStatistics",
    "load_movielens_ratings",
    "load_movielens_genres",
    "load_amazon_ratings",
    "load_csv_interactions",
    "build_dataset",
    "k_core_filter",
    "leave_one_out_split",
    "reindex_ids",
    "NegativeSampler",
    "UserGroupedBatch",
    "UserGroupedBatcher",
    "SequenceBatch",
    "SequenceBatcher",
    "PADDING_ID",
    "truncate_sequence",
    "pad_sequence",
    "pad_and_truncate",
    "batch_sequences",
    "recent_window",
    "SyntheticConfig",
    "SyntheticWorld",
    "generate_world",
    "generate_interaction_log",
    "generate_dataset",
    "PRESETS",
    "load_preset",
]
