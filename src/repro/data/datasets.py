"""Dataset container and the Table I statistics.

A :class:`RecDataset` bundles a training :class:`InteractionLog` with the
held-out validation / test items produced by the paper's leave-one-out
protocol ("for each user, hold out the latest interaction as the test data,
treat the item just before the last as the validation set").

:class:`DatasetStatistics` reproduces the columns of Table I: #users, #items,
#actions, average sequence length and density.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .interactions import InteractionLog

__all__ = ["DatasetStatistics", "RecDataset"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The per-dataset summary reported in Table I of the paper."""

    name: str
    num_users: int
    num_items: int
    num_actions: int
    avg_sequence_length: float
    density: float

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as a printable Table I row."""

        return {
            "Dataset": self.name,
            "#users": self.num_users,
            "#items": self.num_items,
            "#actions": self.num_actions,
            "avg.length": round(self.avg_sequence_length, 1),
            "density": f"{self.density * 100:.2f}%",
        }


@dataclass
class RecDataset:
    """A fully preprocessed top-N recommendation dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name (e.g. ``"ml-1m-small"``).
    train:
        Interactions available for model fitting (everything except each
        user's last two items under leave-one-out).
    validation_items / test_items:
        For each user id, the held-out next item used for validation / test.
        Users with fewer than three interactions may be missing from these
        maps — they are skipped during evaluation, as in the paper's
        preprocessing which drops users with <5 actions.
    num_users / num_items:
        Sizes of the (contiguous) id spaces.
    item_categories:
        Optional item → category mapping used by the Figure 1 analysis and
        the online simulation.
    """

    name: str
    train: InteractionLog
    validation_items: Dict[int, int] = field(default_factory=dict)
    test_items: Dict[int, int] = field(default_factory=dict)
    num_users: int = 0
    num_items: int = 0
    item_categories: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.num_users == 0:
            self.num_users = self.train.num_users
        if self.num_items == 0:
            self.num_items = self.train.num_items
        self._validate()

    def _validate(self) -> None:
        if len(self.train) and int(self.train.users.max()) >= self.num_users:
            raise ValueError("train log references a user id outside num_users")
        if len(self.train) and int(self.train.items.max()) >= self.num_items:
            raise ValueError("train log references an item id outside num_items")
        for mapping, label in ((self.validation_items, "validation"), (self.test_items, "test")):
            for user, item in mapping.items():
                if not 0 <= user < self.num_users:
                    raise ValueError(f"{label} user id {user} out of range")
                if not 0 <= item < self.num_items:
                    raise ValueError(f"{label} item id {item} out of range")

    # ------------------------------------------------------------------ #
    # statistics (Table I)
    # ------------------------------------------------------------------ #
    def statistics(self) -> DatasetStatistics:
        """Compute the Table I row for this dataset.

        The counts include the held-out validation/test actions so they match
        the paper, which reports statistics *after preprocessing* but before
        splitting.
        """

        held_out = len(self.validation_items) + len(self.test_items)
        num_actions = len(self.train) + held_out
        active_users = max(len(self.train.unique_users()), 1)
        avg_length = num_actions / active_users
        density = num_actions / float(max(self.num_users, 1) * max(self.num_items, 1))
        return DatasetStatistics(
            name=self.name,
            num_users=self.num_users,
            num_items=self.num_items,
            num_actions=num_actions,
            avg_sequence_length=avg_length,
            density=density,
        )

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    def evaluation_users(self, split: str = "test") -> List[int]:
        """Users that have a held-out item for the given split."""

        mapping = self.test_items if split == "test" else self.validation_items
        return sorted(mapping.keys())

    def full_sequence(self, user_id: int, include_validation: bool = False) -> List[int]:
        """Training sequence for ``user_id``, optionally with the validation item appended.

        The paper measures test performance after "adding all validation items
        and users back to the training set"; passing
        ``include_validation=True`` reproduces that input.
        """

        sequence = self.train.user_sequence(user_id)
        if include_validation and user_id in self.validation_items:
            sequence.append(self.validation_items[user_id])
        return sequence

    def with_validation_merged(self) -> "RecDataset":
        """Return a copy whose train log includes every validation item."""

        merged = self.train.copy()
        if len(merged):
            base_time = float(merged.timestamps.max()) + 1.0
        else:
            base_time = 0.0
        from .interactions import Interaction

        for offset, (user, item) in enumerate(sorted(self.validation_items.items())):
            category = None
            if self.item_categories is not None and item < len(self.item_categories):
                category = int(self.item_categories[item])
            merged.append(Interaction(user, item, base_time + offset, category))
        return RecDataset(
            name=self.name,
            train=merged,
            validation_items={},
            test_items=dict(self.test_items),
            num_users=self.num_users,
            num_items=self.num_items,
            item_categories=self.item_categories,
        )
