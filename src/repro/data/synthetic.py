"""Synthetic dataset generators calibrated to the paper's public datasets.

The offline environment has no network access, so the four public datasets of
Table I (ML-1M, ML-20M, Amazon Games, Amazon Beauty) cannot be downloaded.
This module generates statistically matched *scaled-down analogs* that plant
exactly the structure the SCCF framework exploits, so that the relative
results of Tables II-IV and Figures 4-5 keep their shape:

* **Global structure** — items live in a latent space organized by category;
  users have latent preferences, so a UI model (FISM / SASRec) can learn
  meaningful embeddings.
* **Local structure** — users belong to *communities* with community-specific
  item co-consumption (the "beer and diapers for new parents" effect of the
  introduction).  Items co-consumed inside a community are *not* globally
  similar, which is precisely the signal the user-based component adds on top
  of a UI model.
* **Interest drift** — each user's preference vector drifts over time and
  occasionally jumps to a fresh category, reproducing the Figure 1
  observation that ~half of today's categories were not clicked in the
  previous two weeks.
* **Popularity skew** — item base popularity follows a Zipf-like law, as in
  real e-commerce catalogs.

Presets (``ml-1m-small``, ``ml-20m-small``, ``games-small``, ``beauty-small``)
scale the user/item counts down to laptop-CPU size while keeping the
qualitative profile of each dataset: MovieLens analogs are dense with long
sequences, Amazon analogs sparse with short sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from .datasets import RecDataset
from .interactions import InteractionLog
from .preprocessing import build_dataset

__all__ = [
    "SyntheticConfig",
    "SyntheticWorld",
    "generate_world",
    "generate_interaction_log",
    "generate_dataset",
    "PRESETS",
    "load_preset",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs controlling the synthetic e-commerce world."""

    name: str = "synthetic"
    num_users: int = 300
    num_items: int = 400
    num_categories: int = 12
    num_communities: int = 8
    latent_dim: int = 16
    avg_interactions: float = 25.0
    min_interactions: int = 5
    community_strength: float = 0.35
    community_items: int = 30
    drift_rate: float = 0.08
    category_jump_probability: float = 0.15
    popularity_exponent: float = 1.0
    candidate_pool_size: int = 80
    temperature: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if self.num_categories <= 0 or self.num_communities <= 0:
            raise ValueError("num_categories and num_communities must be positive")
        if not 0.0 <= self.community_strength <= 1.0:
            raise ValueError("community_strength must be in [0, 1]")
        if self.avg_interactions < self.min_interactions:
            raise ValueError("avg_interactions must be at least min_interactions")


@dataclass
class SyntheticWorld:
    """Ground-truth latent state of the generator (useful for analyses/tests)."""

    config: SyntheticConfig
    item_vectors: np.ndarray          # (num_items, latent_dim)
    item_categories: np.ndarray       # (num_items,)
    item_popularity: np.ndarray       # (num_items,) base sampling weights
    category_centers: np.ndarray      # (num_categories, latent_dim)
    user_base_vectors: np.ndarray     # (num_users, latent_dim)
    user_communities: np.ndarray      # (num_users,)
    community_item_sets: List[np.ndarray] = field(default_factory=list)


def generate_world(config: SyntheticConfig) -> SyntheticWorld:
    """Instantiate the latent world: items, categories, communities, users."""

    rng = np.random.default_rng(config.seed)
    centers = rng.normal(0.0, 1.0, size=(config.num_categories, config.latent_dim))

    # Item categories follow a mildly skewed distribution: popular categories
    # own more of the catalog, as in real stores.
    category_weights = 1.0 / np.arange(1, config.num_categories + 1) ** 0.6
    category_weights /= category_weights.sum()
    item_categories = rng.choice(config.num_categories, size=config.num_items, p=category_weights)
    item_vectors = centers[item_categories] + rng.normal(0.0, 0.45, size=(config.num_items, config.latent_dim))

    ranks = rng.permutation(config.num_items) + 1
    item_popularity = 1.0 / ranks.astype(np.float64) ** config.popularity_exponent
    item_popularity /= item_popularity.sum()

    user_base = rng.normal(0.0, 1.0, size=(config.num_users, config.latent_dim))
    user_communities = rng.integers(0, config.num_communities, size=config.num_users)

    community_item_sets: List[np.ndarray] = []
    # A community's co-consumed bundle deliberately spans categories and is
    # drawn from the less-popular part of the catalog, so its internal
    # co-occurrence is largely invisible to global (UI / item-item) models —
    # the "beer & diapers for new parents" structure the user-based component
    # is meant to pick up.
    popularity_rank = np.argsort(-item_popularity)
    eligible = popularity_rank[int(0.15 * config.num_items):]
    if len(eligible) < config.community_items:
        eligible = np.arange(config.num_items)
    for _ in range(config.num_communities):
        size = min(config.community_items, len(eligible))
        bundle = rng.choice(eligible, size=size, replace=False)
        community_item_sets.append(np.sort(bundle))

    return SyntheticWorld(
        config=config,
        item_vectors=item_vectors,
        item_categories=item_categories,
        item_popularity=item_popularity,
        category_centers=centers,
        user_base_vectors=user_base,
        user_communities=user_communities,
        community_item_sets=community_item_sets,
    )


def _sample_sequence_length(rng: np.random.Generator, config: SyntheticConfig) -> int:
    """Log-normal sequence lengths with the configured mean and a hard floor."""

    mean = np.log(max(config.avg_interactions, config.min_interactions + 1e-6))
    length = int(round(rng.lognormal(mean=mean, sigma=0.45)))
    return max(config.min_interactions, min(length, 4 * int(config.avg_interactions) + 10))


def _softmax(scores: np.ndarray, temperature: float) -> np.ndarray:
    scaled = scores / max(temperature, 1e-8)
    scaled = scaled - scaled.max()
    exp = np.exp(scaled)
    return exp / exp.sum()


def generate_interaction_log(
    world: SyntheticWorld,
    rng: Optional[np.random.Generator] = None,
) -> InteractionLog:
    """Simulate every user's clickstream through the latent world."""

    config = world.config
    rng = rng or np.random.default_rng(config.seed + 1)
    popularity_cdf = np.cumsum(world.item_popularity)
    popularity_cdf[-1] = 1.0  # guard against floating-point drift

    users: List[int] = []
    items: List[int] = []
    timestamps: List[float] = []
    categories: List[int] = []

    global_clock = 0.0
    for user in range(config.num_users):
        length = _sample_sequence_length(rng, config)
        preference = world.user_base_vectors[user].copy()
        community = int(world.user_communities[user])
        bundle = world.community_item_sets[community]
        seen: set = set()

        for step in range(length):
            global_clock += 1.0
            use_community = rng.random() < config.community_strength and len(bundle) > 0
            if use_community:
                weights = world.item_popularity[bundle]
                weights = weights / weights.sum()
                item = int(rng.choice(bundle, p=weights))
            else:
                pool_size = min(config.candidate_pool_size, config.num_items)
                # Popularity-weighted pool via inverse-CDF sampling (duplicates
                # are harmless and this is ~100x faster than weighted sampling
                # without replacement).
                pool = np.searchsorted(popularity_cdf, rng.random(pool_size))
                scores = world.item_vectors[pool] @ preference
                probs = _softmax(scores, config.temperature)
                item = int(pool[rng.choice(len(pool), p=probs)])

            # The public datasets the presets mimic (MovieLens ratings, Amazon
            # reviews) contain at most one event per (user, item) pair, so the
            # generated stream is strictly repeat-free as well: re-draws of an
            # already-seen item fall back to a random unseen one.
            if item in seen:
                for candidate in rng.integers(0, config.num_items, size=25):
                    if int(candidate) not in seen:
                        item = int(candidate)
                        break
                else:
                    unseen = np.setdiff1d(np.arange(config.num_items), np.fromiter(seen, dtype=np.int64))
                    if len(unseen) == 0:
                        break  # the user has consumed the entire catalog
                    item = int(rng.choice(unseen))
            seen.add(item)

            users.append(user)
            items.append(item)
            timestamps.append(global_clock)
            categories.append(int(world.item_categories[item]))

            # Interest drift: small random walk plus occasional category jump.
            preference = (1.0 - config.drift_rate) * preference + config.drift_rate * rng.normal(
                0.0, 1.0, size=config.latent_dim
            )
            if rng.random() < config.category_jump_probability:
                new_category = int(rng.integers(0, config.num_categories))
                preference = 0.5 * preference + 0.5 * world.category_centers[new_category]

    return InteractionLog(users, items, timestamps, categories)


def generate_dataset(config: SyntheticConfig, apply_k_core: bool = True) -> RecDataset:
    """End-to-end: world → clickstream → preprocessed leave-one-out dataset."""

    world = generate_world(config)
    log = generate_interaction_log(world)
    item_categories = {item: int(cat) for item, cat in enumerate(world.item_categories)}
    dataset = build_dataset(
        name=config.name,
        log=log,
        min_user_interactions=max(3, config.min_interactions),
        min_item_interactions=3,
        item_categories=item_categories,
        apply_k_core=apply_k_core,
    )
    return dataset


# --------------------------------------------------------------------------- #
# Presets mirroring Table I (scaled down for CPU execution).
# --------------------------------------------------------------------------- #
PRESETS: Dict[str, SyntheticConfig] = {
    # MovieLens analogs: dense, long sequences.
    "ml-1m-small": SyntheticConfig(
        name="ml-1m-small",
        num_users=400,
        num_items=700,
        num_categories=18,
        num_communities=10,
        avg_interactions=45.0,
        community_strength=0.45,
        community_items=110,
        drift_rate=0.06,
        category_jump_probability=0.10,
        seed=11,
    ),
    "ml-20m-small": SyntheticConfig(
        name="ml-20m-small",
        num_users=700,
        num_items=1000,
        num_categories=20,
        num_communities=14,
        avg_interactions=45.0,
        community_strength=0.45,
        community_items=130,
        drift_rate=0.06,
        category_jump_probability=0.10,
        seed=12,
    ),
    # Amazon analogs: sparse, short sequences.
    "games-small": SyntheticConfig(
        name="games-small",
        num_users=500,
        num_items=650,
        num_categories=15,
        num_communities=12,
        avg_interactions=10.0,
        community_strength=0.50,
        community_items=40,
        drift_rate=0.10,
        category_jump_probability=0.18,
        seed=13,
    ),
    "beauty-small": SyntheticConfig(
        name="beauty-small",
        num_users=550,
        num_items=800,
        num_categories=16,
        num_communities=12,
        avg_interactions=9.0,
        community_strength=0.50,
        community_items=40,
        drift_rate=0.10,
        category_jump_probability=0.18,
        seed=14,
    ),
    # A tiny preset used by unit tests and the quickstart example.
    "tiny": SyntheticConfig(
        name="tiny",
        num_users=60,
        num_items=80,
        num_categories=6,
        num_communities=4,
        avg_interactions=12.0,
        community_strength=0.4,
        community_items=15,
        seed=7,
    ),
}


def load_preset(preset: str, seed: Optional[int] = None, **overrides: object) -> RecDataset:
    """Generate the preset dataset ``preset``.

    ``seed`` and any other :class:`SyntheticConfig` field (including ``name``)
    can be overridden via keyword arguments, e.g.
    ``load_preset("tiny", seed=3, num_users=100, name="tiny-100")``.
    """

    if preset not in PRESETS:
        raise KeyError(f"unknown preset {preset!r}; available: {sorted(PRESETS)}")
    config = PRESETS[preset]
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = replace(config, **overrides)
    return generate_dataset(config)
