"""File-format loaders for the public datasets used in the paper.

The paper evaluates on MovieLens-1M, MovieLens-20M, Amazon Beauty and Amazon
Video Games.  The raw dumps cannot be downloaded in this offline environment,
but these loaders parse the standard distribution formats unchanged, so a
user with the files on disk can reproduce the experiments on the real data:

* MovieLens ``ratings.dat`` (``user::item::rating::timestamp``) and
  ``ratings.csv`` (``userId,movieId,rating,timestamp``), plus ``movies.dat`` /
  ``movies.csv`` for genres (used as categories).
* Amazon ratings-only CSV (``user,item,rating,timestamp``).

Every loader returns a raw :class:`InteractionLog` with original ids; pass it
through :func:`repro.data.preprocessing.build_dataset` to obtain the
k-core-filtered, leave-one-out dataset the experiments consume.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

from .interactions import InteractionLog

__all__ = [
    "load_movielens_ratings",
    "load_movielens_genres",
    "load_amazon_ratings",
    "load_csv_interactions",
]

PathLike = Union[str, Path]


def _open_lines(path: PathLike) -> TextIO:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    return open(path, "r", encoding="utf-8", errors="ignore")


def load_movielens_ratings(
    path: PathLike,
    min_rating: float = 0.0,
    implicit: bool = True,
) -> InteractionLog:
    """Parse a MovieLens ratings file (``.dat`` with ``::`` or ``.csv``).

    Ratings below ``min_rating`` are dropped; with ``implicit=True`` (the
    paper's setting) every remaining rating is treated as a positive
    interaction regardless of its value.
    """

    path = Path(path)
    users, items, timestamps = [], [], []
    with _open_lines(path) as handle:
        if path.suffix == ".csv":
            reader = csv.reader(handle)
            header = next(reader, None)
            if header and not header[0].isdigit():
                pass  # header skipped
            else:
                _consume_csv_row(header, users, items, timestamps, min_rating)
            for row in reader:
                _consume_csv_row(row, users, items, timestamps, min_rating)
        else:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                parts = line.split("::")
                if len(parts) < 4:
                    continue
                _consume_fields(parts[0], parts[1], parts[2], parts[3], users, items, timestamps, min_rating)
    if not implicit:
        raise ValueError("explicit-rating loading is not supported; the paper uses implicit feedback")
    return InteractionLog(users, items, timestamps)


def _consume_csv_row(
    row: Sequence[str],
    users: List[int],
    items: List[int],
    timestamps: List[float],
    min_rating: float,
) -> None:
    if not row or len(row) < 4:
        return
    _consume_fields(row[0], row[1], row[2], row[3], users, items, timestamps, min_rating)


def _consume_fields(
    user: str,
    item: str,
    rating: str,
    timestamp: str,
    users: List[int],
    items: List[int],
    timestamps: List[float],
    min_rating: float,
) -> None:
    try:
        rating_value = float(rating)
        user_id = int(user)
        item_id = int(item)
        timestamp_value = float(timestamp)
    except ValueError:
        return
    if rating_value < min_rating:
        return
    users.append(user_id)
    items.append(item_id)
    timestamps.append(timestamp_value)


def load_movielens_genres(path: PathLike) -> Dict[int, int]:
    """Parse ``movies.dat`` / ``movies.csv`` and map each movie to a genre id.

    Only the first listed genre is used; genre strings are mapped to integer
    category ids in order of first appearance.  These categories feed the
    Figure 1 interest-drift analysis when run on real MovieLens data.
    """

    path = Path(path)
    genre_ids: Dict[str, int] = {}
    item_to_category: Dict[int, int] = {}
    with _open_lines(path) as handle:
        if path.suffix == ".csv":
            reader = csv.reader(handle)
            next(reader, None)  # header
            rows = ((row[0], row[-1]) for row in reader if len(row) >= 3)
        else:
            rows = (
                (parts[0], parts[2])
                for parts in (line.strip().split("::") for line in handle if line.strip())
                if len(parts) >= 3
            )
        for item_id, genres in rows:
            try:
                item = int(item_id)
            except ValueError:
                continue
            first_genre = genres.split("|")[0].strip() or "unknown"
            if first_genre not in genre_ids:
                genre_ids[first_genre] = len(genre_ids)
            item_to_category[item] = genre_ids[first_genre]
    return item_to_category


def load_amazon_ratings(path: PathLike, min_rating: float = 0.0) -> InteractionLog:
    """Parse an Amazon ratings-only CSV: ``user,item,rating,timestamp``.

    Amazon user/item ids are alphanumeric strings; they are hashed to
    contiguous integers in order of first appearance (re-indexing later in
    preprocessing keeps them contiguous after filtering).
    """

    user_map: Dict[str, int] = {}
    item_map: Dict[str, int] = {}
    users, items, timestamps = [], [], []
    with _open_lines(path) as handle:
        reader = csv.reader(handle)
        for row in reader:
            if len(row) < 4:
                continue
            user_raw, item_raw, rating_raw, ts_raw = row[0], row[1], row[2], row[3]
            try:
                rating = float(rating_raw)
                timestamp = float(ts_raw)
            except ValueError:
                continue  # header or malformed row
            if rating < min_rating:
                continue
            if user_raw not in user_map:
                user_map[user_raw] = len(user_map)
            if item_raw not in item_map:
                item_map[item_raw] = len(item_map)
            users.append(user_map[user_raw])
            items.append(item_map[item_raw])
            timestamps.append(timestamp)
    return InteractionLog(users, items, timestamps)


def load_csv_interactions(
    path: PathLike,
    user_column: int = 0,
    item_column: int = 1,
    timestamp_column: Optional[int] = 2,
    category_column: Optional[int] = None,
    delimiter: str = ",",
    has_header: bool = True,
) -> InteractionLog:
    """Generic CSV loader for custom interaction logs (integer ids expected)."""

    users, items, timestamps, categories = [], [], [], []
    with _open_lines(path) as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if has_header:
            next(reader, None)
        for row in reader:
            if not row:
                continue
            try:
                users.append(int(row[user_column]))
                items.append(int(row[item_column]))
                timestamps.append(
                    float(row[timestamp_column]) if timestamp_column is not None else len(users)
                )
                if category_column is not None:
                    categories.append(int(row[category_column]))
            except (ValueError, IndexError):
                continue
    return InteractionLog(
        users,
        items,
        timestamps,
        categories if category_column is not None else None,
    )
