"""Dataset preprocessing: binarization, k-core filtering, leave-one-out splits.

Reproduces Section IV-A1 of the paper:

* "convert all numeric ratings or presence of a review to 1" — implicit
  binarization happens implicitly because :class:`InteractionLog` only stores
  events;
* "discards users and items with fewer than 5 related actions. And then to
  guarantee each user with enough interactions, we discard users with fewer
  than 5 actions once more" — :func:`k_core_filter` with a final user pass;
* "for each user, we hold out the latest interaction as the test data, treat
  the item just before the last as the validation set and utilize others for
  training" — :func:`leave_one_out_split`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .datasets import RecDataset
from .interactions import InteractionLog

__all__ = [
    "k_core_filter",
    "reindex_ids",
    "leave_one_out_split",
    "build_dataset",
]


def k_core_filter(
    log: InteractionLog,
    min_user_interactions: int = 5,
    min_item_interactions: int = 5,
    max_rounds: int = 50,
) -> InteractionLog:
    """Iteratively drop rare users/items until both constraints hold.

    The paper applies one item pass and two user passes; iterating to a fixed
    point is a strictly stronger guarantee and converges quickly on real data.
    ``max_rounds`` bounds pathological inputs.
    """

    if min_user_interactions < 1 or min_item_interactions < 1:
        raise ValueError("minimum interaction counts must be at least 1")
    current = log
    for _ in range(max_rounds):
        user_counts = current.interactions_per_user()
        item_counts = current.interactions_per_item()
        good_users = {u for u, c in user_counts.items() if c >= min_user_interactions}
        good_items = {i for i, c in item_counts.items() if c >= min_item_interactions}
        if len(good_users) == len(user_counts) and len(good_items) == len(item_counts):
            return current
        current = current.filter_users(good_users).filter_items(good_items)
        if len(current) == 0:
            return current
    return current


def reindex_ids(
    log: InteractionLog,
    item_categories: Optional[Dict[int, int]] = None,
) -> Tuple[InteractionLog, Dict[int, int], Dict[int, int], Optional[np.ndarray]]:
    """Map raw user/item ids to contiguous ranges starting at zero.

    Returns the re-indexed log, the ``raw → new`` user and item maps, and, if
    ``item_categories`` is given (raw item id → category), a dense per-new-item
    category array.
    """

    unique_users = sorted(set(int(u) for u in log.users)) if len(log) else []
    unique_items = sorted(set(int(i) for i in log.items)) if len(log) else []
    user_map = {raw: new for new, raw in enumerate(unique_users)}
    item_map = {raw: new for new, raw in enumerate(unique_items)}

    users = [user_map[int(u)] for u in log.users]
    items = [item_map[int(i)] for i in log.items]
    categories = log.categories
    reindexed = InteractionLog(
        users,
        items,
        list(log.timestamps),
        list(categories) if categories is not None else None,
    )

    category_array: Optional[np.ndarray] = None
    if item_categories is not None:
        category_array = np.zeros(len(unique_items), dtype=np.int64)
        for raw, new in item_map.items():
            category_array[new] = int(item_categories.get(raw, 0))
    return reindexed, user_map, item_map, category_array


def leave_one_out_split(
    log: InteractionLog,
    min_sequence_length: int = 3,
) -> Tuple[InteractionLog, Dict[int, int], Dict[int, int]]:
    """Split each user's chronological sequence into train / validation / test.

    The last item becomes the test target, the second-to-last the validation
    target and the remainder training data.  Users with fewer than
    ``min_sequence_length`` interactions keep all events in training and are
    excluded from evaluation (they would otherwise have an empty profile).
    """

    # Materialize the column arrays once (the properties rebuild them on each
    # access, which would make this loop quadratic for large logs).
    users_array = log.users
    items_array = log.items
    timestamps_array = log.timestamps
    categories = log.categories

    # Rebuild a per-user list of (timestamp, item, category) to preserve metadata.
    per_user_events: Dict[int, list] = {}
    for idx in np.argsort(timestamps_array, kind="stable"):
        user = int(users_array[idx])
        item = int(items_array[idx])
        ts = float(timestamps_array[idx])
        cat = int(categories[idx]) if categories is not None else None
        per_user_events.setdefault(user, []).append((ts, item, cat))

    train_users, train_items, train_ts, train_cats = [], [], [], []
    has_categories = categories is not None
    validation: Dict[int, int] = {}
    test: Dict[int, int] = {}

    for user, events in per_user_events.items():
        if len(events) < min_sequence_length:
            for ts, item, cat in events:
                train_users.append(user)
                train_items.append(item)
                train_ts.append(ts)
                train_cats.append(cat if cat is not None else -1)
            continue
        *history, val_event, test_event = events
        for ts, item, cat in history:
            train_users.append(user)
            train_items.append(item)
            train_ts.append(ts)
            train_cats.append(cat if cat is not None else -1)
        validation[user] = val_event[1]
        test[user] = test_event[1]

    train_log = InteractionLog(
        train_users,
        train_items,
        train_ts,
        train_cats if has_categories else None,
    )
    return train_log, validation, test


def build_dataset(
    name: str,
    log: InteractionLog,
    min_user_interactions: int = 5,
    min_item_interactions: int = 5,
    item_categories: Optional[Dict[int, int]] = None,
    apply_k_core: bool = True,
) -> RecDataset:
    """Full preprocessing pipeline: k-core filter → reindex → leave-one-out split."""

    filtered = k_core_filter(log, min_user_interactions, min_item_interactions) if apply_k_core else log
    reindexed, _, _, category_array = reindex_ids(filtered, item_categories)
    train, validation, test = leave_one_out_split(reindexed)
    num_users = reindexed.num_users
    num_items = reindexed.num_items
    return RecDataset(
        name=name,
        train=train,
        validation_items=validation,
        test_items=test,
        num_users=num_users,
        num_items=num_items,
        item_categories=category_array,
    )
