"""Online-behaviour simulation: drifting clickstreams and the A/B test harness."""

from __future__ import annotations

from .ab_test import ABTestConfig, ABTestHarness, ABTestResult, BucketOutcome
from .clickstream import ClickstreamConfig, ClickstreamSimulator, replay_log, simulate_clickstream

__all__ = [
    "ClickstreamConfig",
    "ClickstreamSimulator",
    "simulate_clickstream",
    "replay_log",
    "ABTestConfig",
    "ABTestHarness",
    "ABTestResult",
    "BucketOutcome",
]
