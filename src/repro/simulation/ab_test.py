"""Online A/B test simulator (Section IV-F, Table V).

The paper deploys SCCF in Taobao's "What You May Like" feed for one week:
bucket A is served by the production baseline (a YouTube-DNN-style deep
candidate generator), bucket B by SCCF, all downstream modules unchanged, and
the lift in total clicks (+2.5%) and trades (+2.3%) is reported.

Production traffic is unavailable, so this harness reproduces the experiment
against the :class:`~repro.simulation.clickstream.ClickstreamSimulator`:

1. a training period generates the history both candidate generators learn
   from;
2. users are randomly split into two equal buckets;
3. for each day of the test period, each bucket's candidate generator
   produces a fixed-size candidate list from the user's *current* history;
   the simulated user examines the list and clicks items proportionally to
   her ground-truth (drifting, community-influenced) affinity, and each click
   converts to a trade with a fixed probability scaled by affinity;
4. clicked items are appended to the user's history, so a generator that
   adapts to drift and exploits neighborhood structure compounds its
   advantage across the week, exactly the mechanism the paper credits.

The harness reports total clicks/trades per bucket and the relative lift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.datasets import RecDataset
from ..data.preprocessing import build_dataset
from ..models.base import Recommender
from .clickstream import ClickstreamConfig, ClickstreamSimulator

__all__ = ["ABTestConfig", "BucketOutcome", "ABTestResult", "ABTestHarness"]


@dataclass(frozen=True)
class ABTestConfig:
    """Knobs of the simulated online experiment."""

    training_days: int = 10
    test_days: int = 7
    candidate_set_size: int = 50
    examined_items: int = 10
    click_budget_per_day: int = 3
    trade_probability: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.training_days <= 0 or self.test_days <= 0:
            raise ValueError("training_days and test_days must be positive")
        if self.candidate_set_size <= 0 or self.examined_items <= 0:
            raise ValueError("candidate_set_size and examined_items must be positive")
        if not 0.0 <= self.trade_probability <= 1.0:
            raise ValueError("trade_probability must be in [0, 1]")


@dataclass
class BucketOutcome:
    """Accumulated engagement of one bucket over the test period."""

    name: str
    num_users: int
    clicks: int = 0
    trades: int = 0
    daily_clicks: List[int] = field(default_factory=list)
    daily_trades: List[int] = field(default_factory=list)

    @property
    def clicks_per_user(self) -> float:
        return self.clicks / max(self.num_users, 1)

    @property
    def trades_per_user(self) -> float:
        return self.trades / max(self.num_users, 1)


@dataclass
class ABTestResult:
    """Outcome of the simulated A/B test (the Table V analog)."""

    baseline: BucketOutcome
    treatment: BucketOutcome

    @property
    def click_lift(self) -> float:
        """Relative lift of treatment over baseline in clicks per user."""

        if self.baseline.clicks_per_user == 0:
            return 0.0
        return self.treatment.clicks_per_user / self.baseline.clicks_per_user - 1.0

    @property
    def trade_lift(self) -> float:
        """Relative lift of treatment over baseline in trades per user."""

        if self.baseline.trades_per_user == 0:
            return 0.0
        return self.treatment.trades_per_user / self.baseline.trades_per_user - 1.0

    def as_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "Metric": "#Clicks",
                "Baseline (bucket A)": self.baseline.clicks,
                "SCCF (bucket B)": self.treatment.clicks,
                "Lift Rate": f"{self.click_lift * 100:.1f}%",
            },
            {
                "Metric": "#Trades",
                "Baseline (bucket A)": self.baseline.trades,
                "SCCF (bucket B)": self.treatment.trades,
                "Lift Rate": f"{self.trade_lift * 100:.1f}%",
            },
        ]


class ABTestHarness:
    """Run the two-bucket online experiment on the clickstream simulator."""

    def __init__(
        self,
        clickstream_config: Optional[ClickstreamConfig] = None,
        ab_config: Optional[ABTestConfig] = None,
    ) -> None:
        self.clickstream_config = clickstream_config or ClickstreamConfig()
        self.config = ab_config or ABTestConfig()
        self._rng = np.random.default_rng(self.config.seed + 77)

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def build_training_dataset(self) -> Tuple[RecDataset, ClickstreamSimulator]:
        """Simulate the training period and package it as a RecDataset.

        Returns both the dataset and the *live* simulator so the online phase
        continues from the exact user state reached at the end of training.
        """

        simulator = ClickstreamSimulator(self.clickstream_config)
        log = simulator.simulate(self.config.training_days)
        item_categories = {
            item: int(cat) for item, cat in enumerate(simulator.world.item_categories)
        }
        dataset = build_dataset(
            name="ab-training",
            log=log,
            min_user_interactions=2,
            min_item_interactions=1,
            item_categories=item_categories,
            apply_k_core=False,
        )
        return dataset, simulator

    # ------------------------------------------------------------------ #
    # online phase
    # ------------------------------------------------------------------ #
    def run(
        self,
        baseline: Recommender,
        treatment: Recommender,
        dataset: RecDataset,
        simulator: ClickstreamSimulator,
    ) -> ABTestResult:
        """Serve both buckets for ``test_days`` and accumulate clicks / trades.

        ``baseline`` and ``treatment`` must already be fitted on ``dataset``.
        """

        num_users = dataset.num_users
        users = np.arange(num_users)
        self._rng.shuffle(users)
        half = num_users // 2
        buckets = {
            "A": (baseline, list(users[:half])),
            "B": (treatment, list(users[half:])),
        }
        outcomes = {
            "A": BucketOutcome(name="baseline", num_users=half),
            "B": BucketOutcome(name="sccf", num_users=num_users - half),
        }
        histories: Dict[str, Dict[int, List[int]]] = {
            bucket: {user: dataset.train.user_sequence(user) for user in members}
            for bucket, (_, members) in buckets.items()
        }

        for _ in range(self.config.test_days):
            day_clicks = {"A": 0, "B": 0}
            day_trades = {"A": 0, "B": 0}
            for bucket, (model, members) in buckets.items():
                for user in members:
                    history = histories[bucket][user]
                    clicked, traded = self._serve_user(model, simulator, user, history)
                    day_clicks[bucket] += len(clicked)
                    day_trades[bucket] += traded
                    history.extend(clicked)
            # Every simulated user drifts once per day regardless of bucket.
            for user in range(simulator.config.num_users):
                simulator._drift(user)
            for bucket in ("A", "B"):
                outcomes[bucket].clicks += day_clicks[bucket]
                outcomes[bucket].trades += day_trades[bucket]
                outcomes[bucket].daily_clicks.append(day_clicks[bucket])
                outcomes[bucket].daily_trades.append(day_trades[bucket])

        return ABTestResult(baseline=outcomes["A"], treatment=outcomes["B"])

    def _serve_user(
        self,
        model: Recommender,
        simulator: ClickstreamSimulator,
        user: int,
        history: List[int],
    ) -> Tuple[List[int], int]:
        """One serving round: candidates → simulated examination → clicks/trades."""

        config = self.config
        candidates = model.recommend(
            user, k=config.candidate_set_size, history=history, exclude=history
        )
        if not candidates:
            return [], 0
        examined = candidates[: config.examined_items]
        affinities = simulator.affinity(user, examined)

        # The user clicks at most `click_budget_per_day` of the examined items,
        # sampled by softmax over ground-truth affinity, but only items whose
        # affinity is positive are attractive at all.
        attractive = [i for i, a in zip(examined, affinities) if a > 0]
        if not attractive:
            return [], 0
        attractive_aff = np.asarray([a for a in affinities if a > 0])
        weights = np.exp(attractive_aff - attractive_aff.max())
        weights /= weights.sum()
        budget = min(config.click_budget_per_day, len(attractive))
        chosen_positions = self._rng.choice(len(attractive), size=budget, replace=False, p=weights)
        clicked = [int(attractive[p]) for p in chosen_positions]

        trades = 0
        for position in chosen_positions:
            conversion = config.trade_probability * min(1.0, max(attractive_aff[position], 0.0) / 3.0 + 0.5)
            if self._rng.random() < conversion:
                trades += 1
        return clicked, trades
