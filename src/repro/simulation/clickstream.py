"""Day-granular clickstream simulator with drifting user interests.

The paper motivates real-time recommendation with an analysis of Taobao
traffic (Figure 1): for the categories a user clicks *today*, how many days
ago did she first click that category within the last two weeks?  Around half
turn out to be brand new.  Production traffic is unavailable, so this module
simulates a comparable clickstream: users click several items per day, their
latent preference drifts day over day, and with some probability they jump to
an entirely fresh category — the knob that controls how "new" today's
interests are.

The same simulator powers the online A/B test harness (Table V): it exposes
the ground-truth user state needed to decide whether a served candidate gets
clicked or purchased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from ..data.interactions import Interaction, InteractionLog
from ..data.synthetic import SyntheticConfig, SyntheticWorld, generate_world

__all__ = [
    "ClickstreamConfig",
    "ClickstreamSimulator",
    "simulate_clickstream",
    "replay_log",
]


@dataclass(frozen=True)
class ClickstreamConfig:
    """Configuration of the day-by-day behaviour simulation."""

    num_users: int = 300
    num_items: int = 500
    num_categories: int = 20
    num_communities: int = 10
    latent_dim: int = 16
    num_days: int = 15
    min_clicks_per_day: int = 2
    max_clicks_per_day: int = 8
    daily_drift: float = 0.15
    category_jump_probability: float = 0.35
    community_strength: float = 0.3
    temperature: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_days <= 0:
            raise ValueError("num_days must be positive")
        if self.min_clicks_per_day <= 0 or self.max_clicks_per_day < self.min_clicks_per_day:
            raise ValueError("invalid clicks-per-day range")
        if not 0.0 <= self.category_jump_probability <= 1.0:
            raise ValueError("category_jump_probability must be in [0, 1]")

    def to_world_config(self) -> SyntheticConfig:
        return SyntheticConfig(
            name="clickstream-world",
            num_users=self.num_users,
            num_items=self.num_items,
            num_categories=self.num_categories,
            num_communities=self.num_communities,
            latent_dim=self.latent_dim,
            avg_interactions=max(
                float(self.min_clicks_per_day), (self.min_clicks_per_day + self.max_clicks_per_day) / 2.0
            )
            * self.num_days,
            community_strength=self.community_strength,
            drift_rate=self.daily_drift,
            category_jump_probability=self.category_jump_probability,
            seed=self.seed,
        )


class ClickstreamSimulator:
    """Stateful day-by-day simulator over a :class:`SyntheticWorld`."""

    #: Extra ground-truth affinity a user has for items in her community's
    #: co-consumption bundle — the "beer & diapers" effect the user-based
    #: component is designed to surface.
    community_affinity_bonus: float = 2.5

    def __init__(self, config: ClickstreamConfig) -> None:
        self.config = config
        self.world: SyntheticWorld = generate_world(config.to_world_config())
        self._rng = np.random.default_rng(config.seed + 101)
        # Per-user mutable preference state, drifting day over day.
        self._preferences = self.world.user_base_vectors.copy()
        self._popularity_cdf = np.cumsum(self.world.item_popularity)
        self._popularity_cdf[-1] = 1.0
        self.current_day = 0

    # ------------------------------------------------------------------ #
    # ground-truth affinity (used by the A/B harness)
    # ------------------------------------------------------------------ #
    def affinity(self, user_id: int, item_ids: Sequence[int]) -> np.ndarray:
        """Current latent affinity of ``user_id`` to each of ``item_ids``.

        Community bundle items receive a bonus, reflecting the locally shared
        taste that global models underestimate.
        """

        item_ids = np.asarray(item_ids, dtype=np.int64)
        base = self.world.item_vectors[item_ids] @ self._preferences[user_id]
        bundle = self.world.community_item_sets[int(self.world.user_communities[user_id])]
        bonus = np.isin(item_ids, bundle).astype(np.float64) * self.community_affinity_bonus
        return base + bonus

    def item_category(self, item_id: int) -> int:
        return int(self.world.item_categories[item_id])

    # ------------------------------------------------------------------ #
    # day simulation
    # ------------------------------------------------------------------ #
    def _drift(self, user_id: int) -> None:
        config = self.config
        preference = self._preferences[user_id]
        preference = (1.0 - config.daily_drift) * preference + config.daily_drift * self._rng.normal(
            0.0, 1.0, size=config.latent_dim
        )
        if self._rng.random() < config.category_jump_probability:
            category = int(self._rng.integers(0, config.num_categories))
            preference = 0.4 * preference + 0.6 * self.world.category_centers[category]
        self._preferences[user_id] = preference

    def simulate_day(self, users: Optional[Sequence[int]] = None) -> List[Interaction]:
        """Advance the clock one day and return every click generated that day."""

        config = self.config
        users = range(config.num_users) if users is None else users
        events: List[Interaction] = []
        for user in users:
            self._drift(user)
            clicks_today = int(
                self._rng.integers(config.min_clicks_per_day, config.max_clicks_per_day + 1)
            )
            for click in range(clicks_today):
                item = self._choose_item(user)
                timestamp = self.current_day + (click + 1) / (clicks_today + 1)
                events.append(
                    Interaction(
                        user_id=int(user),
                        item_id=item,
                        timestamp=float(timestamp),
                        category_id=self.item_category(item),
                    )
                )
        self.current_day += 1
        return events

    def _choose_item(self, user: int) -> int:
        config = self.config
        world = self.world
        if self._rng.random() < config.community_strength:
            bundle = world.community_item_sets[int(world.user_communities[user])]
            weights = world.item_popularity[bundle]
            return int(self._rng.choice(bundle, p=weights / weights.sum()))
        pool_size = min(100, config.num_items)
        # Popularity-weighted pool via inverse-CDF sampling (duplicates are harmless).
        pool = np.searchsorted(self._popularity_cdf, self._rng.random(pool_size))
        scores = world.item_vectors[pool] @ self._preferences[user]
        scaled = (scores - scores.max()) / max(config.temperature, 1e-8)
        probabilities = np.exp(scaled)
        probabilities /= probabilities.sum()
        return int(pool[self._rng.choice(len(pool), p=probabilities)])

    def simulate(self, num_days: Optional[int] = None) -> InteractionLog:
        """Run the full horizon and return the complete day-stamped log."""

        num_days = num_days if num_days is not None else self.config.num_days
        log = InteractionLog(categories=[])
        for _ in range(num_days):
            log.extend(self.simulate_day())
        return log


def simulate_clickstream(config: Optional[ClickstreamConfig] = None) -> InteractionLog:
    """Convenience wrapper: build a simulator and run its full horizon."""

    simulator = ClickstreamSimulator(config or ClickstreamConfig())
    return simulator.simulate()


def replay_log(log: InteractionLog, server: Any, flush_size: int = 256) -> List:
    """Replay a simulated clickstream through a server in micro-batches.

    Streams ``log``'s events in timestamp order through an
    :class:`~repro.core.realtime.EventBuffer` in front of ``server`` (a
    :class:`~repro.core.realtime.RealTimeServer`), flushing every
    ``flush_size`` events plus one final flush for the tail.  Events whose
    item ids fall outside the server's catalog are skipped (a fresh log can
    mention items the fitted model never saw).  Returns the list of
    per-flush :class:`~repro.core.realtime.LatencyBreakdown` records.
    """

    from ..core.realtime import EventBuffer

    breakdowns = []
    order = np.argsort(log.timestamps, kind="stable")
    users, items = log.users, log.items
    with EventBuffer(server, flush_size=flush_size) as buffer:
        for position in order:
            item = int(items[position])
            if not 0 <= item < server.num_items:
                continue
            flushed = buffer.push(int(users[position]), item)
            if flushed is not None:
                breakdowns.append(flushed)
        final = buffer.flush()
        if final is not None:
            breakdowns.append(final)
    return breakdowns
