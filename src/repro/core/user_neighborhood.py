"""The SCCF user-based component (Section III-C of the paper).

Given the user representations produced by an inductive UI model, this
component:

1. identifies each user's neighborhood ``N_u`` — the β most similar users by
   cosine similarity of their embeddings (eq. 11), with ``u ∉ N_u``;
2. scores items by the similarity-weighted votes of those neighbors
   (eq. 12): ``r̂^UU_{ui} = Σ_{v ∈ N_u} δ_{vi} · sim(u, v)``, where ``δ_{vi}``
   indicates that neighbor ``v`` recently interacted with item ``i``.

The paper's deployment recommends "each user's latest 15 items to her/his
similar users", so neighbor votes come from a recency window rather than the
full profile; the window is configurable.

No parameters are learned here — the component is a pure function of the UI
model's embeddings, which is what makes it a drop-in, real-time plugin.

Implementation: the recent-items table is kept both as per-user lists (the
mutable source of truth for real-time updates) and as a CSR-style pair of
``(indptr, indices)`` arrays over users.  Eq. 12 then reduces to one gather
plus one ``bincount`` — a sparse-matrix/dense-vector product — instead of a
Python double loop over neighbors × recent items, and
:meth:`score_for_users` amortizes neighborhood identification across a whole
batch of users through the index's ``search_batch``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import (
    BruteForceIndex,
    NeighborIndex,
    ProcessShardedIndex,
    ShardedIndex,
    search_batch,
    update_batch,
)
from ..data.datasets import RecDataset
from ..data.sequences import recent_window
from ..models.base import InductiveUIModel
from .cache import ServingCache, history_fingerprint, serve_batch

__all__ = ["UserNeighborhoodComponent"]


def _gather_slices(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[j]:starts[j]+counts[j]]`` without a Python loop."""

    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype)
    block_ends = np.cumsum(counts)
    offsets = np.arange(total) - np.repeat(block_ends - counts, counts)
    return values[np.repeat(starts, counts) + offsets]


class UserNeighborhoodComponent:
    """Real-time user-neighborhood scoring on top of an inductive UI model.

    Parameters
    ----------
    num_neighbors:
        Neighborhood size β (the paper sweeps {50, 100, 200}; 100 is the
        default best value).
    recency_window:
        How many of each neighbor's most recent items are eligible to be
        recommended to similar users (15 in the paper's deployment).
    index:
        A neighbor-search index implementing :class:`repro.ann.NeighborIndex`.
        Defaults to exact cosine search; pass an
        :class:`~repro.ann.ivf.IVFIndex` for the approximate variant.  Takes
        precedence over ``index_factory``/``num_shards``.
    index_factory:
        Zero-argument callable producing a fresh backend index.  With
        ``num_shards == 1`` it builds the index itself; with
        ``num_shards > 1`` it builds each shard of a
        :class:`~repro.ann.sharded.ShardedIndex`.
    num_shards:
        Partition the user index across this many scatter-gather shards
        (one worker per shard).  ``1`` (default) keeps the single-index
        layout.
    shard_backend:
        ``"thread"`` (default) fans the per-shard searches out over a
        :class:`~repro.ann.sharded.ShardedIndex` thread pool; ``"process"``
        serves them from persistent worker *processes* over a shared-memory
        vector store (:class:`~repro.ann.process_sharded.ProcessShardedIndex`)
        for true multi-core scaling.  Only consulted when ``num_shards > 1``;
        the process backend owns its shard layout, so it cannot be combined
        with ``index_factory``.  Call :meth:`close` (or let the owning
        ``SCCF`` / ``RealTimeServer`` cascade it) to release the workers.
    failure_policy:
        Forwarded to the sharded backends (only consulted when
        ``num_shards > 1``): ``"raise"`` propagates shard failures,
        ``"degrade"`` serves neighborhoods from the surviving shards while
        dead workers restart — degraded neighborhoods are never written to
        the serving cache.
    max_user_growth:
        Upper bound on how many rows a single :meth:`add_users` call may
        append (streamed ids are dense, so growth is backed by a dense zero
        block — an unboundedly large id would otherwise allocate unboundedly
        much memory from one malformed event).
    """

    def __init__(
        self,
        num_neighbors: int = 100,
        recency_window: int = 15,
        index: Optional[NeighborIndex] = None,
        max_user_growth: int = 10_000,
        index_factory: Optional[Callable[[], NeighborIndex]] = None,
        num_shards: int = 1,
        shard_backend: str = "thread",
        failure_policy: str = "raise",
    ) -> None:
        if num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        if recency_window <= 0:
            raise ValueError("recency_window must be positive")
        if max_user_growth <= 0:
            raise ValueError("max_user_growth must be positive")
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if shard_backend not in ("thread", "process"):
            raise ValueError("shard_backend must be 'thread' or 'process'")
        if failure_policy not in ("raise", "degrade"):
            raise ValueError("failure_policy must be 'raise' or 'degrade'")
        self.num_neighbors = num_neighbors
        self.recency_window = recency_window
        self.max_user_growth = max_user_growth
        if index is not None:
            self.index: NeighborIndex = index
        elif num_shards > 1 and shard_backend == "process":
            if index_factory is not None:
                raise ValueError(
                    "the process shard backend owns its shard layout; "
                    "index_factory cannot be combined with shard_backend='process'"
                )
            self.index = ProcessShardedIndex(
                num_shards=num_shards, failure_policy=failure_policy
            )
        elif num_shards > 1:
            self.index = ShardedIndex(
                num_shards=num_shards,
                shard_factory=index_factory,
                num_threads=num_shards,
                failure_policy=failure_policy,
            )
        elif index_factory is not None:
            self.index = index_factory()
        else:
            self.index = BruteForceIndex(metric="cosine")
        self.num_users: int = 0
        self.num_items: int = 0
        self._user_embeddings: Optional[np.ndarray] = None
        self._recent_items: Dict[int, List[int]] = {}
        self._recent_indptr: Optional[np.ndarray] = None
        self._recent_indices: Optional[np.ndarray] = None
        self._recent_dirty = True
        # Users whose recent list changed since the last full CSR build; their
        # rows are overlaid at scoring time so a real-time update stream never
        # pays an O(num_users) rebuild per event.
        self._recent_overrides: Dict[int, np.ndarray] = {}
        # Per-user embedding version counters: bumped by update_users/add_users
        # (and therefore by every RealTimeServer.observe), so serving caches
        # can validate anything derived from a user's state in O(1).
        self._user_versions: Dict[int, int] = {}
        # Active mutation journal for a blue-green shadow retrain: while set,
        # every index mutation is recorded so the maintenance path can replay
        # it onto the shadow before the publish swap.  Bounded by the shadow
        # build's duration — begin/end bracket one maintenance pass.
        self._mutation_journal: Optional[List[Tuple[str, np.ndarray, Optional[np.ndarray]]]] = None
        #: optional :class:`~repro.core.cache.ServingCache`; when set (SCCF
        #: attaches its own), :meth:`score_for_users` serves repeat
        #: neighborhoods from the cache's ``neighbors`` layer.
        self.cache: Optional[ServingCache] = None
        self._fitted = False

    # ------------------------------------------------------------------ #
    # fitting = embedding every user and indexing the embeddings
    # ------------------------------------------------------------------ #
    def fit(
        self,
        ui_model: InductiveUIModel,
        dataset: RecDataset,
        histories: Optional[Dict[int, Sequence[int]]] = None,
    ) -> "UserNeighborhoodComponent":
        """Index user embeddings inferred by ``ui_model`` from ``dataset``'s histories.

        ``histories`` optionally overrides the training histories (e.g. with
        validation items merged back in for final test-time evaluation).
        Embedding inference runs through the model's batched forward
        (``infer_user_embeddings_batch``) — one vectorized pass over all
        users instead of ``num_users`` single-history calls.
        """

        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        base_histories = dataset.train.user_sequences()
        if histories is not None:
            for user, sequence in histories.items():
                base_histories[user] = list(sequence)

        sequences = [list(base_histories.get(user, [])) for user in range(self.num_users)]
        embeddings = np.asarray(ui_model.infer_user_embeddings_batch(sequences), dtype=np.float64)
        self._recent_items = {
            user: recent_window(sequence, self.recency_window) if sequence else []
            for user, sequence in enumerate(sequences)
        }
        self._recent_dirty = True
        self._user_embeddings = embeddings
        self.index.build(embeddings)
        # A re-fit changes every user's embedding under reset version
        # counters, so any attached cache must start empty.
        self._user_versions = {}
        if self.cache is not None:
            self.cache.clear()
        self._fitted = True
        return self

    def user_version(self, user_id: int) -> int:
        """Monotonic per-user mutation counter (0 until the user is first updated).

        Bumped by :meth:`update_users` / :meth:`add_users`; cache entries
        derived from a user's history or embedding are validated against it.
        """

        return self._user_versions.get(int(user_id), 0)

    def _bump_versions(self, user_ids: Sequence[int]) -> None:
        for user in user_ids:
            self._user_versions[user] = self._user_versions.get(user, 0) + 1

    def _require_fitted(self) -> None:
        if not self._fitted or self._user_embeddings is None:
            raise RuntimeError("UserNeighborhoodComponent has not been fitted")

    def _ensure_recent_csr(self) -> None:
        """(Re)build the CSR view of the recent-items table when stale.

        Single-user updates do not mark the table stale — they land in
        ``_recent_overrides`` (consulted at scoring time) until enough of them
        accumulate to be worth folding into a fresh CSR build.
        """

        if not self._recent_dirty and self._recent_indptr is not None:
            return
        counts = np.zeros(self.num_users, dtype=np.int64)
        chunks: List[List[int]] = []
        for user in range(self.num_users):
            items = [
                item for item in self._recent_items.get(user, []) if 0 <= item < self.num_items
            ]
            counts[user] = len(items)
            if items:
                chunks.append(items)
        self._recent_indptr = np.zeros(self.num_users + 1, dtype=np.int64)
        np.cumsum(counts, out=self._recent_indptr[1:])
        self._recent_indices = (
            np.concatenate([np.asarray(chunk, dtype=np.int64) for chunk in chunks])
            if chunks
            else np.empty(0, dtype=np.int64)
        )
        self._recent_overrides = {}
        self._recent_dirty = False

    # ------------------------------------------------------------------ #
    # neighborhood identification (eq. 11)
    # ------------------------------------------------------------------ #
    def neighbors(
        self,
        user_embedding: np.ndarray,
        exclude_user: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, similarities)`` ordered by descending similarity."""

        self._require_fitted()
        exclude = np.asarray([exclude_user], dtype=np.int64) if exclude_user is not None else None
        ids, similarities = self.index.search(
            np.asarray(user_embedding, dtype=np.float64),
            k=self.num_neighbors,
            exclude=exclude,
        )
        return ids, similarities

    # ------------------------------------------------------------------ #
    # local scoring (eq. 12)
    # ------------------------------------------------------------------ #
    def _scores_from_neighbors(
        self, neighbor_ids: np.ndarray, similarities: np.ndarray
    ) -> np.ndarray:
        """Eq. (12) as one sparse product: gather recent-item rows, bincount votes."""

        self._ensure_recent_csr()
        positive = similarities > 0
        neighbor_ids = np.asarray(neighbor_ids, dtype=np.int64)[positive]
        weights = np.asarray(similarities, dtype=np.float64)[positive]
        scores = np.zeros(self.num_items, dtype=np.float64)
        if not len(neighbor_ids):
            return scores

        if self._recent_overrides:
            overridden = np.asarray(
                [int(user) in self._recent_overrides for user in neighbor_ids], dtype=bool
            )
            for user, weight in zip(neighbor_ids[overridden], weights[overridden]):
                items = self._recent_overrides[int(user)]
                if len(items):
                    np.add.at(scores, items, weight)
            neighbor_ids = neighbor_ids[~overridden]
            weights = weights[~overridden]
            if not len(neighbor_ids):
                return scores

        starts = self._recent_indptr[neighbor_ids]
        counts = self._recent_indptr[neighbor_ids + 1] - starts
        voted_items = _gather_slices(self._recent_indices, starts, counts)
        if len(voted_items):
            scores += np.bincount(
                voted_items, weights=np.repeat(weights, counts), minlength=self.num_items
            )
        return scores

    @staticmethod
    def _zero_excluded(scores: np.ndarray, exclude_items: Optional[Iterable[int]]) -> np.ndarray:
        if exclude_items is not None:
            exclude_list = [item for item in exclude_items if 0 <= item < len(scores)]
            if exclude_list:
                scores[np.asarray(exclude_list, dtype=np.int64)] = 0.0
        return scores

    def uu_scores(
        self,
        user_embedding: np.ndarray,
        exclude_user: Optional[int] = None,
        exclude_items: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Similarity-weighted neighbor votes for every item in the catalog."""

        self._require_fitted()
        neighbor_ids, similarities = self.neighbors(user_embedding, exclude_user)
        scores = self._scores_from_neighbors(neighbor_ids, similarities)
        return self._zero_excluded(scores, exclude_items)

    def score_for_user(
        self,
        user_id: int,
        user_embedding: np.ndarray,
        history: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """eq. (12) with the paper's convention of never re-recommending ``R⁺_u``."""

        exclude_items = history if history is not None else self._recent_items.get(user_id, [])
        return self.uu_scores(user_embedding, exclude_user=user_id, exclude_items=exclude_items)

    def score_for_users(
        self,
        user_ids: Sequence[int],
        user_embeddings: Optional[np.ndarray] = None,
        histories: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> np.ndarray:
        """Batched :meth:`score_for_user`; returns ``(B, num_items)``.

        Neighborhoods for the whole batch come from one ``search_batch`` call
        (a single query-matrix matmul on the default brute-force index), and
        each user's eq. (12) is a gather + ``bincount``.  ``user_embeddings``
        defaults to the fitted embeddings of ``user_ids``; ``histories``
        optionally overrides the per-user exclusion lists exactly like the
        ``history`` argument of :meth:`score_for_user`.
        """

        self._require_fitted()
        user_ids = [int(user) for user in user_ids]
        if histories is not None and len(histories) != len(user_ids):
            raise ValueError("histories must have one entry per user id")
        explicit_embeddings = user_embeddings is not None
        if user_embeddings is None:
            for user in user_ids:
                if not 0 <= user < self.num_users:
                    raise ValueError("user_id out of range")
            user_embeddings = self._user_embeddings[np.asarray(user_ids, dtype=np.int64)]
        else:
            user_embeddings = np.asarray(user_embeddings, dtype=np.float64)
            if user_embeddings.shape[0] != len(user_ids):
                raise ValueError("user_embeddings must have one row per user id")

        neighborhoods = self._batch_neighborhoods(
            user_ids, user_embeddings, histories, explicit_embeddings
        )

        scores = np.zeros((len(user_ids), self.num_items), dtype=np.float64)
        for row, (neighbor_ids, similarities) in enumerate(neighborhoods):
            scores[row] = self._scores_from_neighbors(neighbor_ids, similarities)
            if histories is not None and histories[row] is not None:
                exclude_items: Iterable[int] = histories[row]
            else:
                exclude_items = self._recent_items.get(user_ids[row], [])
            self._zero_excluded(scores[row], exclude_items)
        return scores

    def _batch_neighborhoods(
        self,
        user_ids: Sequence[int],
        user_embeddings: np.ndarray,
        histories: Optional[Sequence[Optional[Sequence[int]]]],
        explicit_embeddings: bool = False,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-user ``(neighbor_ids, similarities)`` with cache-aware batching.

        Without a cache this is one ``search_batch`` over the whole batch.
        With one, each user's stored result is keyed on the inputs the
        version counters cannot see — the history fingerprint and, when the
        caller supplied the query embeddings explicitly
        (``explicit_embeddings``), a hash of her query row — and validated
        against ``(user_version, index_epoch)``: any index mutation anywhere
        bumps the epoch and invalidates it.  Only the remaining rows pay the
        batched search.  Indexes without an ``epoch`` counter (third-party
        backends) disable this layer; results are then always recomputed.
        """

        epoch = getattr(self.index, "epoch", None)
        cache_layer = self.cache.neighbors if self.cache is not None and epoch is not None else None
        keys: List[Optional[Tuple]] = [None] * len(user_ids)
        tokens: List[Optional[Tuple]] = [None] * len(user_ids)
        if cache_layer is not None:  # keep the uncached path free of hashing
            for row, user in enumerate(user_ids):
                history = histories[row] if histories is not None else None
                query_key = (
                    hash(np.ascontiguousarray(user_embeddings[row]).tobytes())
                    if explicit_embeddings
                    else None
                )
                keys[row] = (user, history_fingerprint(history), query_key)
                tokens[row] = (self.user_version(user), epoch)

        def compute(missing: List[int]) -> List[Tuple[np.ndarray, np.ndarray]]:
            rows = np.asarray(missing, dtype=np.int64)
            exclusions = [np.asarray([user_ids[row]], dtype=np.int64) for row in missing]
            return search_batch(
                self.index, user_embeddings[rows], self.num_neighbors, exclude_per_query=exclusions
            )

        # Neighborhoods computed while the index was serving degraded (a
        # shard down under failure_policy="degrade") must be served but not
        # memoized: the epoch does not move when the shard heals, so a cached
        # survivors-only neighborhood would outlive the outage.
        degraded_before = getattr(self.index, "degraded_requests", 0)
        cacheable = lambda: (
            getattr(self.index, "degraded_requests", 0) == degraded_before
        )
        return serve_batch(cache_layer, keys, tokens, compute, cacheable=cacheable)

    # ------------------------------------------------------------------ #
    # real-time maintenance
    # ------------------------------------------------------------------ #
    def update_user(
        self,
        user_id: int,
        ui_model: InductiveUIModel,
        history: Sequence[int],
    ) -> np.ndarray:
        """Re-infer a user's embedding from a fresh history and refresh the index.

        Returns the new embedding.  This is the "infer user representations on
        the fly" step that distinguishes SCCF from transductive user-based
        methods: cost is one UI forward pass plus an index row update.  This
        is :meth:`update_users` with a batch of one, so the streaming and
        per-event maintenance paths cannot drift.
        """

        return self.update_users([user_id], ui_model, [history])[0]

    def update_users(
        self,
        user_ids: Sequence[int],
        ui_model: InductiveUIModel,
        histories: Sequence[Sequence[int]],
        embeddings: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched :meth:`update_user`: refresh many users' embeddings at once.

        One ``infer_user_embeddings_batch`` forward (skipped when the caller
        passes precomputed ``embeddings``), one batched index row replacement,
        and a bulk recent-item overlay.  Returns the ``(U, dim)`` embeddings.
        With duplicate user ids the last entry wins.
        """

        self._require_fitted()
        user_ids = [int(user) for user in user_ids]
        if len(histories) != len(user_ids):
            raise ValueError("histories must have one entry per user id")
        for user in user_ids:
            if not 0 <= user < self.num_users:
                raise ValueError("user_id out of range")
        embeddings = self._resolve_embeddings(user_ids, ui_model, histories, embeddings)
        if not user_ids:
            return embeddings
        positions = np.asarray(user_ids, dtype=np.int64)
        self._user_embeddings[positions] = embeddings
        update_batch(self.index, positions, embeddings)
        if self._mutation_journal is not None:
            self._mutation_journal.append(
                ("update", positions.copy(), np.array(embeddings, dtype=np.float64, copy=True))
            )
        self._set_recent_items(user_ids, histories)
        self._bump_versions(user_ids)
        return embeddings

    def add_users(
        self,
        user_ids: Sequence[int],
        ui_model: InductiveUIModel,
        histories: Sequence[Sequence[int]],
        embeddings: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Grow the neighborhood pool with users beyond the fitted id range.

        Cold-start users streamed in at serve time join the index instead of
        being silently excluded: the embedding matrix and the index are
        extended so the new users can serve as other users' neighbors.  Ids
        must be ``>= num_users``; gaps between ``num_users`` and the largest
        added id are filled with zero embeddings (an all-zero row has cosine
        similarity 0 with everything, so gap users are never voted neighbors),
        which assumes streamed ids stay reasonably dense.
        """

        self._require_fitted()
        user_ids = [int(user) for user in user_ids]
        if len(histories) != len(user_ids):
            raise ValueError("histories must have one entry per user id")
        for user in user_ids:
            if user < self.num_users:
                raise ValueError("add_users takes ids >= num_users; use update_users")
            if user >= self.num_users + self.max_user_growth:
                raise ValueError(
                    "user_id too far beyond the fitted range "
                    f"(growth capped at {self.max_user_growth} rows per call)"
                )
        embeddings = self._resolve_embeddings(user_ids, ui_model, histories, embeddings)
        if not user_ids:
            return embeddings
        dim = self._user_embeddings.shape[1]
        block = np.zeros((max(user_ids) + 1 - self.num_users, dim), dtype=np.float64)
        for row, user in enumerate(user_ids):
            block[user - self.num_users] = embeddings[row]
        self._user_embeddings = np.concatenate([self._user_embeddings, block])
        if hasattr(self.index, "add"):
            self.index.add(block)
            if self._mutation_journal is not None:
                self._mutation_journal.append(("add", block.copy(), None))
        else:
            # Third-party index without a grow path: rebuild from scratch.
            self.index.build(self._user_embeddings)
            if self._mutation_journal is not None:
                self._mutation_journal.append(("build", self._user_embeddings.copy(), None))
        self.num_users = len(self._user_embeddings)
        self._set_recent_items(user_ids, histories)
        self._bump_versions(user_ids)
        return embeddings

    def _resolve_embeddings(
        self,
        user_ids: Sequence[int],
        ui_model: InductiveUIModel,
        histories: Sequence[Sequence[int]],
        embeddings: Optional[np.ndarray],
    ) -> np.ndarray:
        dim = self._user_embeddings.shape[1]
        if embeddings is None:
            if not user_ids:
                return np.zeros((0, dim), dtype=np.float64)
            return np.asarray(
                ui_model.infer_user_embeddings_batch([list(history) for history in histories]),
                dtype=np.float64,
            )
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.shape != (len(user_ids), dim):
            raise ValueError("embeddings must have one row of width dim per user id")
        return embeddings

    def _set_recent_items(self, user_ids: Sequence[int], histories: Sequence[Sequence[int]]) -> None:
        """Refresh the recent-items table for a batch of users.

        Rows land in ``_recent_overrides`` (consulted at scoring time) instead
        of invalidating the whole CSR; the overlays are folded into a full
        rebuild only once they pile up — same policy as the original
        single-user path, applied per user in order.
        """

        for user, history in zip(user_ids, histories):
            recent = recent_window(list(history), self.recency_window)
            self._recent_items[user] = recent
            if not self._recent_dirty:
                self._recent_overrides[user] = np.asarray(
                    [item for item in recent if 0 <= item < self.num_items], dtype=np.int64
                )
                if len(self._recent_overrides) > max(64, self.num_users // 20):
                    self._recent_dirty = True

    # ------------------------------------------------------------------ #
    # blue-green maintenance: mutation journal + snapshot persistence
    # ------------------------------------------------------------------ #
    def begin_index_journal(self) -> None:
        """Start recording index mutations (one shadow build at a time)."""

        if self._mutation_journal is not None:
            raise RuntimeError("an index mutation journal is already active")
        self._mutation_journal = []

    @property
    def index_journal_active(self) -> bool:
        return self._mutation_journal is not None

    def end_index_journal(self) -> List[Tuple[str, np.ndarray, Optional[np.ndarray]]]:
        """Stop recording and hand the journal to the caller for replay."""

        if self._mutation_journal is None:
            raise RuntimeError("no index mutation journal is active")
        journal, self._mutation_journal = self._mutation_journal, None
        return journal

    @staticmethod
    def replay_index_journal(
        journal: List[Tuple[str, np.ndarray, Optional[np.ndarray]]],
        index: NeighborIndex,
    ) -> int:
        """Apply journaled mutations to ``index`` in arrival order.

        Entries carry the exact payloads the live index received, so after
        replay the shadow has seen the same mutation stream — the foundation
        of the publish-is-bit-identical contract.  Returns the entry count.
        """

        for op, payload, extra in journal:
            if op == "update":
                update_batch(index, payload, extra)
            elif op == "add":
                index.add(payload)
            elif op == "build":
                index.build(payload)
            else:  # pragma: no cover — journal writers emit only these ops
                raise ValueError(f"unknown journal op {op!r}")
        return len(journal)

    def snapshot_state(self) -> Dict[str, object]:
        """Serializable state tree for :mod:`repro.core.snapshot`.

        Recent-item lists and version counters are packed into flat arrays
        (users / offsets / values) so the snapshot stays JSON + ``.npy``.
        """

        self._require_fitted()
        recent_users = sorted(self._recent_items)
        recent_offsets = np.zeros(len(recent_users) + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for row, user in enumerate(recent_users):
            items = np.asarray(self._recent_items[user], dtype=np.int64)
            recent_offsets[row + 1] = recent_offsets[row] + len(items)
            chunks.append(items)
        recent_values = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        version_users = sorted(self._user_versions)
        return {
            "meta": {
                "num_neighbors": self.num_neighbors,
                "recency_window": self.recency_window,
                "max_user_growth": self.max_user_growth,
                "num_users": self.num_users,
                "num_items": self.num_items,
            },
            "arrays": {
                "user_embeddings": self._user_embeddings,
                "recent_users": np.asarray(recent_users, dtype=np.int64),
                "recent_offsets": recent_offsets,
                "recent_values": recent_values,
                "version_users": np.asarray(version_users, dtype=np.int64),
                "version_values": np.asarray(
                    [self._user_versions[user] for user in version_users], dtype=np.int64
                ),
            },
            "index": self.index.snapshot_state(),
        }

    def restore_snapshot_state(self, state: Dict[str, object]) -> None:
        """Overwrite this component's fitted state from a snapshot tree.

        The construction-time knobs (shard layout) stay whatever this
        instance was built with; the *data* — embeddings, recent items,
        version counters, and the index itself — comes back exactly as
        saved.  The previous index is closed after the swap.
        """

        from ..ann import restore_index

        meta = state["meta"]
        arrays = state["arrays"]
        self.num_neighbors = int(meta["num_neighbors"])
        self.recency_window = int(meta["recency_window"])
        self.max_user_growth = int(meta["max_user_growth"])
        self.num_users = int(meta["num_users"])
        self.num_items = int(meta["num_items"])
        self._user_embeddings = np.asarray(
            arrays["user_embeddings"], dtype=np.float64
        ).copy()
        recent_users = np.asarray(arrays["recent_users"], dtype=np.int64)
        recent_offsets = np.asarray(arrays["recent_offsets"], dtype=np.int64)
        recent_values = np.asarray(arrays["recent_values"], dtype=np.int64)
        self._recent_items = {
            int(user): recent_values[recent_offsets[row] : recent_offsets[row + 1]].tolist()
            for row, user in enumerate(recent_users)
        }
        self._recent_indptr = None
        self._recent_indices = None
        self._recent_dirty = True
        self._recent_overrides = {}
        self._user_versions = {
            int(user): int(version)
            for user, version in zip(arrays["version_users"], arrays["version_values"])
        }
        old_index = self.index
        self.index = restore_index(state["index"])
        if old_index is not None and old_index is not self.index:
            closer = getattr(old_index, "close", None)
            if closer is not None:
                closer()
        self._fitted = True

    def user_embedding(self, user_id: int) -> np.ndarray:
        self._require_fitted()
        if not 0 <= user_id < self.num_users:
            raise ValueError("user_id out of range")
        return self._user_embeddings[user_id].copy()

    def recent_items(self, user_id: int) -> List[int]:
        """Items this user currently contributes to her neighbors' candidates."""

        return list(self._recent_items.get(user_id, []))

    def close(self) -> None:
        """Release the index's workers, if it has any (thread pool / processes).

        Part of the lifecycle cascade: ``RealTimeServer.close()`` →
        ``SCCF.close()`` → here → ``index.close()``.  Safe on indexes with no
        close surface (brute force, IVF) and idempotent on the rest.
        """

        closer = getattr(self.index, "close", None)
        if closer is not None:
            closer()
