"""The SCCF user-based component (Section III-C of the paper).

Given the user representations produced by an inductive UI model, this
component:

1. identifies each user's neighborhood ``N_u`` — the β most similar users by
   cosine similarity of their embeddings (eq. 11), with ``u ∉ N_u``;
2. scores items by the similarity-weighted votes of those neighbors
   (eq. 12): ``r̂^UU_{ui} = Σ_{v ∈ N_u} δ_{vi} · sim(u, v)``, where ``δ_{vi}``
   indicates that neighbor ``v`` recently interacted with item ``i``.

The paper's deployment recommends "each user's latest 15 items to her/his
similar users", so neighbor votes come from a recency window rather than the
full profile; the window is configurable.

No parameters are learned here — the component is a pure function of the UI
model's embeddings, which is what makes it a drop-in, real-time plugin.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import BruteForceIndex, NeighborIndex
from ..data.datasets import RecDataset
from ..data.sequences import recent_window
from ..models.base import InductiveUIModel

__all__ = ["UserNeighborhoodComponent"]


class UserNeighborhoodComponent:
    """Real-time user-neighborhood scoring on top of an inductive UI model.

    Parameters
    ----------
    num_neighbors:
        Neighborhood size β (the paper sweeps {50, 100, 200}; 100 is the
        default best value).
    recency_window:
        How many of each neighbor's most recent items are eligible to be
        recommended to similar users (15 in the paper's deployment).
    index:
        A neighbor-search index implementing :class:`repro.ann.NeighborIndex`.
        Defaults to exact cosine search; pass an
        :class:`~repro.ann.ivf.IVFIndex` for the approximate variant.
    """

    def __init__(
        self,
        num_neighbors: int = 100,
        recency_window: int = 15,
        index: Optional[NeighborIndex] = None,
    ) -> None:
        if num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        if recency_window <= 0:
            raise ValueError("recency_window must be positive")
        self.num_neighbors = num_neighbors
        self.recency_window = recency_window
        self.index: NeighborIndex = index if index is not None else BruteForceIndex(metric="cosine")
        self.num_users: int = 0
        self.num_items: int = 0
        self._user_embeddings: Optional[np.ndarray] = None
        self._recent_items: Dict[int, List[int]] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    # fitting = embedding every user and indexing the embeddings
    # ------------------------------------------------------------------ #
    def fit(
        self,
        ui_model: InductiveUIModel,
        dataset: RecDataset,
        histories: Optional[Dict[int, Sequence[int]]] = None,
    ) -> "UserNeighborhoodComponent":
        """Index user embeddings inferred by ``ui_model`` from ``dataset``'s histories.

        ``histories`` optionally overrides the training histories (e.g. with
        validation items merged back in for final test-time evaluation).
        """

        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        base_histories = dataset.train.user_sequences()
        if histories is not None:
            for user, sequence in histories.items():
                base_histories[user] = list(sequence)

        embeddings = np.zeros((self.num_users, ui_model.embedding_dim), dtype=np.float64)
        recent: Dict[int, List[int]] = {}
        for user in range(self.num_users):
            sequence = base_histories.get(user, [])
            if sequence:
                embeddings[user] = ui_model.infer_user_embedding(sequence)
                recent[user] = recent_window(sequence, self.recency_window)
            else:
                recent[user] = []
        self._user_embeddings = embeddings
        self._recent_items = recent
        self.index.build(embeddings)
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted or self._user_embeddings is None:
            raise RuntimeError("UserNeighborhoodComponent has not been fitted")

    # ------------------------------------------------------------------ #
    # neighborhood identification (eq. 11)
    # ------------------------------------------------------------------ #
    def neighbors(
        self,
        user_embedding: np.ndarray,
        exclude_user: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, similarities)`` ordered by descending similarity."""

        self._require_fitted()
        exclude = np.asarray([exclude_user], dtype=np.int64) if exclude_user is not None else None
        ids, similarities = self.index.search(
            np.asarray(user_embedding, dtype=np.float64),
            k=self.num_neighbors,
            exclude=exclude,
        )
        return ids, similarities

    # ------------------------------------------------------------------ #
    # local scoring (eq. 12)
    # ------------------------------------------------------------------ #
    def uu_scores(
        self,
        user_embedding: np.ndarray,
        exclude_user: Optional[int] = None,
        exclude_items: Optional[Iterable[int]] = None,
    ) -> np.ndarray:
        """Similarity-weighted neighbor votes for every item in the catalog."""

        self._require_fitted()
        neighbor_ids, similarities = self.neighbors(user_embedding, exclude_user)
        scores = np.zeros(self.num_items, dtype=np.float64)
        for neighbor, similarity in zip(neighbor_ids, similarities):
            if similarity <= 0:
                continue
            for item in self._recent_items.get(int(neighbor), []):
                if 0 <= item < self.num_items:
                    scores[item] += float(similarity)
        if exclude_items is not None:
            exclude_list = [item for item in exclude_items if 0 <= item < self.num_items]
            if exclude_list:
                scores[np.asarray(exclude_list, dtype=np.int64)] = 0.0
        return scores

    def score_for_user(
        self,
        user_id: int,
        user_embedding: np.ndarray,
        history: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """eq. (12) with the paper's convention of never re-recommending ``R⁺_u``."""

        exclude_items = history if history is not None else self._recent_items.get(user_id, [])
        return self.uu_scores(user_embedding, exclude_user=user_id, exclude_items=exclude_items)

    # ------------------------------------------------------------------ #
    # real-time maintenance
    # ------------------------------------------------------------------ #
    def update_user(
        self,
        user_id: int,
        ui_model: InductiveUIModel,
        history: Sequence[int],
    ) -> np.ndarray:
        """Re-infer a user's embedding from a fresh history and refresh the index.

        Returns the new embedding.  This is the "infer user representations on
        the fly" step that distinguishes SCCF from transductive user-based
        methods: cost is one UI forward pass plus an index row update.
        """

        self._require_fitted()
        if not 0 <= user_id < self.num_users:
            raise ValueError("user_id out of range")
        embedding = ui_model.infer_user_embedding(history)
        self._user_embeddings[user_id] = embedding
        self.index.update(user_id, embedding)
        self._recent_items[user_id] = recent_window(list(history), self.recency_window)
        return embedding

    def user_embedding(self, user_id: int) -> np.ndarray:
        self._require_fitted()
        if not 0 <= user_id < self.num_users:
            raise ValueError("user_id out of range")
        return self._user_embeddings[user_id].copy()

    def recent_items(self, user_id: int) -> List[int]:
        """Items this user currently contributes to her neighbors' candidates."""

        return list(self._recent_items.get(user_id, []))
