"""The SCCF framework: Self-Complementary Collaborative Filtering.

This is the paper's primary contribution (Section III, Figure 2).  SCCF wraps
any *inductive* UI model and complements it with local information from the
user's neighborhood:

1. **UI component** — the wrapped model produces user/item embeddings and the
   global candidate list ``C^u_UI`` ranked by ``r̂^UI_{ui} = m_uᵀ q_i``.
2. **User-based component** — neighbors identified by cosine similarity of the
   inferred user embeddings vote for their recent items, producing the local
   candidate list ``C^u_UU`` ranked by ``r̂^UU`` (eqs. 11-12); no extra
   parameters are introduced.
3. **Integrating component** — a small MLP fuses ``[m_u ⊕ q_i ⊕ r̃^UI ⊕ r̃^UU]``
   into the final score over the union of the two candidate lists
   (eqs. 15-17).

Three scoring modes are exposed because the paper evaluates all three columns
per base model in Table II: ``"ui"`` (the base model alone), ``"uu"`` (the
user-based component alone, e.g. FISM_UU), and ``"sccf"`` (the full fused
framework, e.g. FISM_SCCF).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import NeighborIndex
from ..data.datasets import RecDataset
from ..models.base import InductiveUIModel, Recommender, exclude_seen_items
from .merger import CandidateFeatures, IntegratingMLP
from .user_neighborhood import UserNeighborhoodComponent

__all__ = ["SCCFConfig", "SCCF"]

_NEG_INF = -1e12


@dataclass(frozen=True)
class SCCFConfig:
    """Hyper-parameters of the SCCF framework.

    ``candidate_list_size`` is N, the length of each of the two candidate
    lists handed to the integrating component; the online deployment uses 500,
    offline evaluation needs at least the largest k reported (100).
    ``num_shards > 1`` partitions the user-neighbor index across that many
    scatter-gather shards with a threaded fan-out (bit-identical results,
    lower per-worker load — the in-process rehearsal of multi-worker serving).
    """

    num_neighbors: int = 100
    candidate_list_size: int = 100
    recency_window: int = 15
    merger_hidden_dims: Tuple[int, ...] = (64, 32)
    merger_epochs: int = 80
    merger_learning_rate: float = 0.003
    merger_batch_size: int = 256
    num_shards: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        if self.candidate_list_size <= 0:
            raise ValueError("candidate_list_size must be positive")
        if self.recency_window <= 0:
            raise ValueError("recency_window must be positive")
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")


class SCCF(Recommender):
    """Self-Complementary Collaborative Filtering on top of an inductive UI model."""

    def __init__(
        self,
        ui_model: InductiveUIModel,
        config: Optional[SCCFConfig] = None,
        neighbor_index: Optional[NeighborIndex] = None,
    ) -> None:
        if not isinstance(ui_model, InductiveUIModel):
            raise TypeError("SCCF requires an inductive UI model (FISM, SASRec, YouTubeDNN, ...)")
        self.ui_model = ui_model
        self.config = config or SCCFConfig()
        if neighbor_index is not None and self.config.num_shards > 1:
            raise ValueError(
                "pass either an explicit neighbor_index or num_shards > 1, not both "
                "(an explicit index would silently serve unsharded)"
            )
        self.neighborhood = UserNeighborhoodComponent(
            num_neighbors=self.config.num_neighbors,
            recency_window=self.config.recency_window,
            index=neighbor_index,
            num_shards=self.config.num_shards,
        )
        self.merger: Optional[IntegratingMLP] = None
        self.mode: str = "sccf"
        self._user_histories: Dict[int, List[int]] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, dataset: RecDataset, fit_ui_model: bool = True) -> "SCCF":
        """Fit the whole pipeline.

        ``fit_ui_model=False`` lets callers reuse an already-trained UI model
        (SCCF is "a post-processing plugin to any inductive UI models"), in
        which case only the neighborhood index and the integrating MLP are
        built.
        """

        if fit_ui_model:
            self.ui_model.fit(dataset)
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()

        self.neighborhood.fit(self.ui_model, dataset)
        self.merger = IntegratingMLP(
            embedding_dim=self.ui_model.embedding_dim,
            hidden_dims=self.config.merger_hidden_dims,
            num_epochs=self.config.merger_epochs,
            learning_rate=self.config.merger_learning_rate,
            batch_size=self.config.merger_batch_size,
            seed=self.config.seed,
        )
        self._train_merger(dataset)
        self._fitted = True
        return self

    def _train_merger(self, dataset: RecDataset) -> None:
        """Train the integrating MLP with each user's validation item as the label.

        Per Section IV-A4: "To train the integrating model, we utilize each
        user's item just before the last as the training label" — i.e. the
        validation item, predicted from the training-only history.
        """

        users: List[int] = []
        targets: List[int] = []
        histories: List[List[int]] = []
        for user, target in dataset.validation_items.items():
            history = self._user_histories.get(user, [])
            if not history:
                continue
            users.append(user)
            targets.append(target)
            histories.append(list(history))
        features_batch = self._candidate_features_batch(
            users, histories, item_embeddings=self.ui_model.item_embeddings()
        )
        examples: List[Tuple[CandidateFeatures, int]] = [
            (features, target)
            for features, target in zip(features_batch, targets)
            if features is not None
        ]
        self.merger.fit(examples)

    # ------------------------------------------------------------------ #
    # candidate construction shared by training and serving
    # ------------------------------------------------------------------ #
    def _candidate_features(
        self,
        user_id: int,
        history: Sequence[int],
        item_embeddings: Optional[np.ndarray] = None,
    ) -> Optional[CandidateFeatures]:
        features = self._candidate_features_batch(
            [user_id], [list(history)], item_embeddings=item_embeddings
        )
        return features[0]

    def _candidate_features_batch(
        self,
        user_ids: Sequence[int],
        histories: Sequence[Sequence[int]],
        item_embeddings: Optional[np.ndarray] = None,
        user_embeddings: Optional[np.ndarray] = None,
    ) -> List[Optional[CandidateFeatures]]:
        """Candidate construction for a batch of users.

        UI scores come from one ``(B×d)·(d×num_items)`` matmul and UU scores
        from one batched neighborhood query; only the per-user candidate merge
        and feature assembly stay row-wise.  Entries are ``None`` for users
        whose merged candidate set is empty.
        """

        if item_embeddings is None:
            item_embeddings = self.ui_model.item_embeddings()
        if user_embeddings is None:
            user_embeddings = self.ui_model.infer_user_embeddings_batch(histories)
        ui_matrix = user_embeddings @ item_embeddings.T
        uu_matrix = self.neighborhood.score_for_users(
            user_ids, user_embeddings=user_embeddings, histories=histories
        )

        features: List[Optional[CandidateFeatures]] = []
        for row, user in enumerate(user_ids):
            candidates = self._merge_candidates(ui_matrix[row], uu_matrix[row], histories[row])
            if len(candidates) == 0:
                features.append(None)
                continue
            features.append(
                self.merger.build_features(
                    user_id=user,
                    user_embedding=user_embeddings[row],
                    item_embeddings=item_embeddings,
                    candidate_items=candidates,
                    ui_scores=ui_matrix[row],
                    uu_scores=uu_matrix[row],
                )
            )
        return features

    def _merge_candidates(
        self,
        ui_scores: np.ndarray,
        uu_scores: np.ndarray,
        history: Sequence[int],
    ) -> np.ndarray:
        """C^u_I = C^u_UI ∪ C^u_UU (eq. 14), excluding already-seen items.

        The union is an unsorted dedup through a boolean membership table —
        O(N + k) and no sort, unlike ``np.union1d`` — keeping UI candidates
        first, then the UU candidates not already present.
        """

        size = min(self.config.candidate_list_size, self.num_items)
        ui_masked = exclude_seen_items(ui_scores, history)
        uu_masked = exclude_seen_items(uu_scores, history)
        ui_top = self._top_k(ui_masked, size)
        uu_top = self._top_k(uu_masked, size, positive_only=True)
        fresh = np.isin(uu_top, ui_top, assume_unique=True, invert=True)
        return np.concatenate([ui_top, uu_top[fresh]]).astype(np.int64)

    @staticmethod
    def _top_k(scores: np.ndarray, k: int, positive_only: bool = False) -> np.ndarray:
        k = min(k, len(scores))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        top = top[np.isfinite(scores[top])]
        if positive_only:
            top = top[scores[top] > 0]
        return top.astype(np.int64)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def set_mode(self, mode: str) -> "SCCF":
        """Switch between ``"ui"``, ``"uu"`` and ``"sccf"`` scoring (Table II columns)."""

        if mode not in ("ui", "uu", "sccf"):
            raise ValueError("mode must be one of 'ui', 'uu', 'sccf'")
        self.mode = mode
        return self

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        """Single-user scoring — the batch path with a batch of one."""

        return self.score_items_batch([user_id], histories=[history])[0]

    def score_items_batch(
        self,
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> np.ndarray:
        """Score the catalog for many users at once; returns ``(B, num_items)``.

        All three Table II modes are batched: ``"ui"`` is one scoring matmul,
        ``"uu"`` one batched neighborhood query, and ``"sccf"`` runs batched
        candidate construction with only the per-user merger forward left
        row-wise.
        """

        self._require_fitted()
        resolved = self._resolve_batch_histories(user_ids, histories)
        user_embeddings = self.ui_model.infer_user_embeddings_batch(resolved)
        if self.mode == "ui":
            return user_embeddings @ self.ui_model.item_embeddings().T
        if self.mode == "uu":
            return self.neighborhood.score_for_users(
                user_ids, user_embeddings=user_embeddings, histories=resolved
            )

        features_batch = self._candidate_features_batch(
            user_ids,
            resolved,
            item_embeddings=self.ui_model.item_embeddings(),
            user_embeddings=user_embeddings,
        )
        scores = np.full((len(user_ids), self.num_items), _NEG_INF, dtype=np.float64)
        for row, features in enumerate(features_batch):
            if features is None:
                continue
            scores[row, features.candidate_items] = self.merger.predict(features)
        return scores

    def candidate_lists(
        self, user_id: int, history: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The two ranked candidate lists (UI, UU) before fusion — used by Figure 4."""

        self._require_fitted()
        if history is None:
            history = self._user_histories.get(user_id, [])
        user_embedding = self.ui_model.infer_user_embedding(history)
        ui_scores = exclude_seen_items(self.ui_model.ui_scores(user_embedding), history)
        uu_scores = exclude_seen_items(
            self.neighborhood.score_for_user(user_id, user_embedding, history=history), history
        )
        size = min(self.config.candidate_list_size, self.num_items)
        ui_top = self._top_k(ui_scores, size)
        ui_top = ui_top[np.argsort(-ui_scores[ui_top], kind="stable")]
        uu_top = self._top_k(uu_scores, size, positive_only=True)
        uu_top = uu_top[np.argsort(-uu_scores[uu_top], kind="stable")]
        return ui_top, uu_top

    def _require_fitted(self) -> None:
        if not self._fitted or self.merger is None:
            raise RuntimeError("SCCF has not been fitted")

    @property
    def name(self) -> str:
        suffix = {"ui": "", "uu": "UU", "sccf": "SCCF"}[self.mode]
        return f"{self.ui_model.name}{suffix}" if suffix else self.ui_model.name
