"""The SCCF framework: Self-Complementary Collaborative Filtering.

This is the paper's primary contribution (Section III, Figure 2).  SCCF wraps
any *inductive* UI model and complements it with local information from the
user's neighborhood:

1. **UI component** — the wrapped model produces user/item embeddings and the
   global candidate list ``C^u_UI`` ranked by ``r̂^UI_{ui} = m_uᵀ q_i``.
2. **User-based component** — neighbors identified by cosine similarity of the
   inferred user embeddings vote for their recent items, producing the local
   candidate list ``C^u_UU`` ranked by ``r̂^UU`` (eqs. 11-12); no extra
   parameters are introduced.
3. **Integrating component** — a small MLP fuses ``[m_u ⊕ q_i ⊕ r̃^UI ⊕ r̃^UU]``
   into the final score over the union of the two candidate lists
   (eqs. 15-17).

Three scoring modes are exposed because the paper evaluates all three columns
per base model in Table II: ``"ui"`` (the base model alone), ``"uu"`` (the
user-based component alone, e.g. FISM_UU), and ``"sccf"`` (the full fused
framework, e.g. FISM_SCCF).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import NeighborIndex
from ..data.datasets import RecDataset
from ..models.base import InductiveUIModel, Recommender, exclude_seen_items
from .cache import CacheStats, ServingCache, history_fingerprint, serve_batch
from .merger import CandidateFeatures, IntegratingMLP
from .user_neighborhood import UserNeighborhoodComponent

__all__ = ["SCCFConfig", "SCCF"]

_NEG_INF = -1e12


@dataclass(frozen=True)
class SCCFConfig:
    """Hyper-parameters of the SCCF framework.

    ``candidate_list_size`` is N, the length of each of the two candidate
    lists handed to the integrating component; the online deployment uses 500,
    offline evaluation needs at least the largest k reported (100).
    ``num_shards > 1`` partitions the user-neighbor index across that many
    scatter-gather shards (bit-identical results, lower per-worker load);
    ``shard_backend`` picks the fan-out — ``"thread"`` (in-process pool) or
    ``"process"`` (persistent worker processes over shared memory, true
    multi-core scaling; remember to ``close()`` the stack).
    ``cache_capacity > 0`` attaches a versioned
    :class:`~repro.core.cache.ServingCache` of that per-layer capacity, so
    repeat requests skip recomputing embeddings, neighbor lists and fused
    scores whose version/epoch counters are unchanged.
    ``failure_policy`` governs what the sharded neighbor index does when a
    shard cannot answer: ``"raise"`` propagates the failure, ``"degrade"``
    serves from the surviving shards (partial answers are never cached — the
    stack snapshots the index's ``degraded_requests`` counter around every
    compute to keep them out of the serving cache).
    """

    num_neighbors: int = 100
    candidate_list_size: int = 100
    recency_window: int = 15
    merger_hidden_dims: Tuple[int, ...] = (64, 32)
    merger_epochs: int = 80
    merger_learning_rate: float = 0.003
    merger_batch_size: int = 256
    num_shards: int = 1
    shard_backend: str = "thread"
    failure_policy: str = "raise"
    cache_capacity: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        if self.candidate_list_size <= 0:
            raise ValueError("candidate_list_size must be positive")
        if self.recency_window <= 0:
            raise ValueError("recency_window must be positive")
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.shard_backend not in ("thread", "process"):
            raise ValueError("shard_backend must be 'thread' or 'process'")
        if self.failure_policy not in ("raise", "degrade"):
            raise ValueError("failure_policy must be 'raise' or 'degrade'")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative (0 disables the cache)")


class SCCF(Recommender):
    """Self-Complementary Collaborative Filtering on top of an inductive UI model."""

    def __init__(
        self,
        ui_model: InductiveUIModel,
        config: Optional[SCCFConfig] = None,
        neighbor_index: Optional[NeighborIndex] = None,
        cache: Optional[ServingCache] = None,
    ) -> None:
        if not isinstance(ui_model, InductiveUIModel):
            raise TypeError("SCCF requires an inductive UI model (FISM, SASRec, YouTubeDNN, ...)")
        self.ui_model = ui_model
        self.config = config or SCCFConfig()
        if neighbor_index is not None and self.config.num_shards > 1:
            raise ValueError(
                "pass either an explicit neighbor_index or num_shards > 1, not both "
                "(an explicit index would silently serve unsharded)"
            )
        self.neighborhood = UserNeighborhoodComponent(
            num_neighbors=self.config.num_neighbors,
            recency_window=self.config.recency_window,
            index=neighbor_index,
            num_shards=self.config.num_shards,
            shard_backend=self.config.shard_backend,
            failure_policy=self.config.failure_policy,
        )
        if cache is None and self.config.cache_capacity > 0:
            cache = ServingCache(self.config.cache_capacity)
        #: the versioned serving cache shared by the scoring stack (or None)
        self.cache: Optional[ServingCache] = None
        self.attach_cache(cache)
        self.merger: Optional[IntegratingMLP] = None
        self.mode: str = "sccf"
        self._user_histories: Dict[int, List[int]] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, dataset: RecDataset, fit_ui_model: bool = True) -> "SCCF":
        """Fit the whole pipeline.

        ``fit_ui_model=False`` lets callers reuse an already-trained UI model
        (SCCF is "a post-processing plugin to any inductive UI models"), in
        which case only the neighborhood index and the integrating MLP are
        built.
        """

        if fit_ui_model:
            self.ui_model.fit(dataset)
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()

        self.neighborhood.fit(self.ui_model, dataset)
        self.merger = IntegratingMLP(
            embedding_dim=self.ui_model.embedding_dim,
            hidden_dims=self.config.merger_hidden_dims,
            num_epochs=self.config.merger_epochs,
            learning_rate=self.config.merger_learning_rate,
            batch_size=self.config.merger_batch_size,
            seed=self.config.seed,
        )
        self._train_merger(dataset)
        self._fitted = True
        return self

    def _train_merger(self, dataset: RecDataset) -> None:
        """Train the integrating MLP with each user's validation item as the label.

        Per Section IV-A4: "To train the integrating model, we utilize each
        user's item just before the last as the training label" — i.e. the
        validation item, predicted from the training-only history.
        """

        users: List[int] = []
        targets: List[int] = []
        histories: List[List[int]] = []
        for user, target in dataset.validation_items.items():
            history = self._user_histories.get(user, [])
            if not history:
                continue
            users.append(user)
            targets.append(target)
            histories.append(list(history))
        features_batch = self._candidate_features_batch(
            users, histories, item_embeddings=self.ui_model.item_embeddings()
        )
        examples: List[Tuple[CandidateFeatures, int]] = [
            (features, target)
            for features, target in zip(features_batch, targets)
            if features is not None
        ]
        self.merger.fit(examples)

    # ------------------------------------------------------------------ #
    # candidate construction shared by training and serving
    # ------------------------------------------------------------------ #
    def _candidate_features(
        self,
        user_id: int,
        history: Sequence[int],
        item_embeddings: Optional[np.ndarray] = None,
    ) -> Optional[CandidateFeatures]:
        features = self._candidate_features_batch(
            [user_id], [list(history)], item_embeddings=item_embeddings
        )
        return features[0]

    def _candidate_features_batch(
        self,
        user_ids: Sequence[int],
        histories: Sequence[Sequence[int]],
        item_embeddings: Optional[np.ndarray] = None,
        user_embeddings: Optional[np.ndarray] = None,
    ) -> List[Optional[CandidateFeatures]]:
        """Candidate construction for a batch of users.

        UI scores come from one ``(B×d)·(d×num_items)`` matmul and UU scores
        from one batched neighborhood query; only the per-user candidate merge
        and feature assembly stay row-wise.  Entries are ``None`` for users
        whose merged candidate set is empty.
        """

        if item_embeddings is None:
            item_embeddings = self.ui_model.item_embeddings()
        if user_embeddings is None:
            user_embeddings = self.ui_model.infer_user_embeddings_batch(histories)
        ui_matrix = user_embeddings @ item_embeddings.T
        uu_matrix = self.neighborhood.score_for_users(
            user_ids, user_embeddings=user_embeddings, histories=histories
        )

        features: List[Optional[CandidateFeatures]] = []
        for row, user in enumerate(user_ids):
            candidates = self._merge_candidates(ui_matrix[row], uu_matrix[row], histories[row])
            if len(candidates) == 0:
                features.append(None)
                continue
            features.append(
                self.merger.build_features(
                    user_id=user,
                    user_embedding=user_embeddings[row],
                    item_embeddings=item_embeddings,
                    candidate_items=candidates,
                    ui_scores=ui_matrix[row],
                    uu_scores=uu_matrix[row],
                )
            )
        return features

    def _merge_candidates(
        self,
        ui_scores: np.ndarray,
        uu_scores: np.ndarray,
        history: Sequence[int],
    ) -> np.ndarray:
        """C^u_I = C^u_UI ∪ C^u_UU (eq. 14), excluding already-seen items.

        The union is an unsorted dedup through a boolean membership table —
        O(N + k) and no sort, unlike ``np.union1d`` — keeping UI candidates
        first, then the UU candidates not already present.
        """

        size = min(self.config.candidate_list_size, self.num_items)
        ui_masked = exclude_seen_items(ui_scores, history)
        uu_masked = exclude_seen_items(uu_scores, history)
        ui_top = self._top_k(ui_masked, size)
        uu_top = self._top_k(uu_masked, size, positive_only=True)
        fresh = np.isin(uu_top, ui_top, assume_unique=True, invert=True)
        return np.concatenate([ui_top, uu_top[fresh]]).astype(np.int64)

    @staticmethod
    def _top_k(scores: np.ndarray, k: int, positive_only: bool = False) -> np.ndarray:
        k = min(k, len(scores))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        top = top[np.isfinite(scores[top])]
        if positive_only:
            top = top[scores[top] > 0]
        return top.astype(np.int64)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def set_mode(self, mode: str) -> "SCCF":
        """Switch between ``"ui"``, ``"uu"`` and ``"sccf"`` scoring (Table II columns)."""

        if mode not in ("ui", "uu", "sccf"):
            raise ValueError("mode must be one of 'ui', 'uu', 'sccf'")
        self.mode = mode
        return self

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        """Single-user scoring — the batch path with a batch of one."""

        return self.score_items_batch([user_id], histories=[history])[0]

    def score_items_batch(
        self,
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> np.ndarray:
        """Score the catalog for many users at once; returns ``(B, num_items)``.

        All three Table II modes are batched: ``"ui"`` is one scoring matmul,
        ``"uu"`` one batched neighborhood query, and ``"sccf"`` runs batched
        candidate construction with only the per-user merger forward left
        row-wise.
        """

        self._require_fitted()
        resolved = self._resolve_batch_histories(user_ids, histories)
        if self.mode == "sccf":
            # Embeddings are fetched lazily inside the fused path: a request
            # served from the scores layer never needs them.
            return self._fused_scores_batch(user_ids, resolved)
        user_embeddings = self._batch_user_embeddings(user_ids, resolved)
        if self.mode == "ui":
            return user_embeddings @ self.ui_model.item_embeddings().T
        return self.neighborhood.score_for_users(
            user_ids, user_embeddings=user_embeddings, histories=resolved
        )

    # ------------------------------------------------------------------ #
    # versioned serving cache
    # ------------------------------------------------------------------ #
    def attach_cache(self, cache: Optional[ServingCache]) -> "SCCF":
        """Attach a serving cache to every layer of this stack (``None`` detaches).

        The one sanctioned wiring path: binds the cache to this SCCF (one
        stack per cache — entry keys carry no model discriminator, so a
        shared cache would cross-serve entries) and hands it to the
        neighborhood component.
        """

        if cache is not None:
            cache.bind(self)  # before the swap: a rejected bind changes nothing
        outgoing = getattr(self, "cache", None)
        if outgoing is not None and outgoing is not cache:
            outgoing.unbind(self)
        self.cache = cache
        self.neighborhood.cache = cache
        return self

    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss/invalidation counters of the serving cache (None when disabled)."""

        return self.cache.stats() if self.cache is not None else None

    def _serving_token(self, user_id: int, epoch: int) -> Tuple[int, int, int]:
        """The monotonic counter triple every fused-result cache entry validates against.

        One definition consumed by both the ``scores`` layer
        (:meth:`_fused_scores_batch`) and the server's ``recommendations``
        layer, so the invalidation contract cannot drift between them.
        """

        return (self.neighborhood.user_version(user_id), epoch, self.merger.generation)

    def _batch_user_embeddings(
        self, user_ids: Sequence[int], resolved: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Per-user embeddings with the cache's ``embeddings`` layer applied.

        An embedding is a pure function of the history (model weights only
        change through :meth:`fit`, which clears the cache), so entries are
        keyed on ``(user, history fingerprint)`` with a constant token: they
        survive every mutation elsewhere, including ``retrain``.  Only the
        cache misses pay the batched UI forward.
        """

        if self.cache is None or not len(user_ids):
            return self.ui_model.infer_user_embeddings_batch(resolved)
        keys = [
            (int(user), history_fingerprint(history))
            for user, history in zip(user_ids, resolved)
        ]

        def compute(missing: List[int]) -> List[np.ndarray]:
            fresh = np.asarray(
                self.ui_model.infer_user_embeddings_batch([resolved[i] for i in missing])
            )
            # copy(): caching a view would pin the whole batch array in
            # memory for the life of each entry
            return [row.copy() for row in fresh]

        # No cacheable= guard on purpose: user embeddings derive only from the
        # user's own history (no index scatter-gather is involved), so this
        # layer can never observe a degraded result.
        rows = serve_batch(  # repolint: disable=RL004
            self.cache.embeddings, keys, [0] * len(keys), compute
        )
        return np.stack(rows)

    def _fused_scores_batch(
        self,
        user_ids: Sequence[int],
        resolved: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """Fused ("sccf"-mode) score rows with the ``scores`` cache layer applied.

        Rows are keyed on ``(user, history fingerprint)`` and validated
        against ``(user_version, index_epoch, merger generation)`` — any
        mutation anywhere in the neighbor index bumps the epoch (other
        users' embeddings and recent items feed the fused scores), and a
        re-trained merger bumps its generation.  Misses run batched
        candidate construction as before, fetching their user embeddings
        (through the embeddings layer) only for the rows that need them.
        """

        item_embeddings = self.ui_model.item_embeddings()
        epoch = getattr(self.neighborhood.index, "epoch", None)
        cache_layer = self.cache.scores if self.cache is not None and epoch is not None else None
        keys: List[Optional[Tuple]] = [None] * len(user_ids)
        tokens: List[Optional[Tuple]] = [None] * len(user_ids)
        if cache_layer is not None:  # keep the uncached path free of hashing
            for row, (user, history) in enumerate(zip(user_ids, resolved)):
                keys[row] = (int(user), history_fingerprint(history))
                tokens[row] = self._serving_token(user, epoch)

        def compute(missing: List[int]) -> List[np.ndarray]:
            missing_users = [user_ids[row] for row in missing]
            missing_histories = [resolved[row] for row in missing]
            features_batch = self._candidate_features_batch(
                missing_users,
                missing_histories,
                item_embeddings=item_embeddings,
                user_embeddings=self._batch_user_embeddings(missing_users, missing_histories),
            )
            fresh: List[np.ndarray] = []
            for features in features_batch:
                row = np.full(self.num_items, _NEG_INF, dtype=np.float64)
                if features is not None:
                    row[features.candidate_items] = self.merger.predict(features)
                fresh.append(row)
            return fresh

        # Rows computed while the neighbor index was serving degraded (some
        # shard down) are valid to *serve* but must never be memoized: the
        # token counters do not change when the shard comes back, so a cached
        # partial row would outlive the outage.
        degraded_before = getattr(self.neighborhood.index, "degraded_requests", 0)
        cacheable = lambda: (
            getattr(self.neighborhood.index, "degraded_requests", 0) == degraded_before
        )
        rows = serve_batch(cache_layer, keys, tokens, compute, cacheable=cacheable)
        # stack() copies, so cached rows stay private to the cache.
        return np.stack(rows) if rows else np.empty((0, self.num_items), dtype=np.float64)

    def candidate_lists(
        self, user_id: int, history: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The two ranked candidate lists (UI, UU) before fusion — used by Figure 4."""

        self._require_fitted()
        if history is None:
            history = self._user_histories.get(user_id, [])
        user_embedding = self.ui_model.infer_user_embedding(history)
        ui_scores = exclude_seen_items(self.ui_model.ui_scores(user_embedding), history)
        uu_scores = exclude_seen_items(
            self.neighborhood.score_for_user(user_id, user_embedding, history=history), history
        )
        size = min(self.config.candidate_list_size, self.num_items)
        ui_top = self._top_k(ui_scores, size)
        ui_top = ui_top[np.argsort(-ui_scores[ui_top], kind="stable")]
        uu_top = self._top_k(uu_scores, size, positive_only=True)
        uu_top = uu_top[np.argsort(-uu_scores[uu_top], kind="stable")]
        return ui_top, uu_top

    def _require_fitted(self) -> None:
        if not self._fitted or self.merger is None:
            raise RuntimeError("SCCF has not been fitted")

    # ------------------------------------------------------------------ #
    # snapshot persistence
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> Dict[str, Any]:
        """Everything needed to rebuild this fitted stack, ndarray leaves intact.

        Covers the neighbor index (nested inside the neighborhood state), the
        integrating MLP (weights plus frozen predict state) and the serving
        cache's *configuration* — cache entries are derivable and are re-warmed
        after restore, never persisted.  The UI model is out of scope: it is
        immutable at serving time and is supplied separately on restore.
        """

        self._require_fitted()
        config = asdict(self.config)
        config["merger_hidden_dims"] = list(config["merger_hidden_dims"])
        return {
            "meta": {
                "mode": self.mode,
                "num_users": int(self.num_users),
                "num_items": int(self.num_items),
                "config": config,
            },
            "neighborhood": self.neighborhood.snapshot_state(),
            "merger": self.merger.snapshot_state(),
            "cache": self.cache.snapshot_config() if self.cache is not None else None,
        }

    def restore_snapshot_state(self, state: Dict[str, Any]) -> None:
        """Overwrite this stack's serving state from a :meth:`snapshot_state` tree.

        The caller constructs the SCCF with the *same config and UI model* the
        snapshot was taken from, then calls this instead of :meth:`fit`.  User
        histories are not part of the snapshot (they belong to the dataset) —
        the caller re-supplies them, as :meth:`RealTimeServer.load_snapshot`
        does.
        """

        meta = state["meta"]
        self.mode = str(meta["mode"])
        self.num_users = int(meta["num_users"])
        self.num_items = int(meta["num_items"])
        self.neighborhood.restore_snapshot_state(state["neighborhood"])
        self.merger = IntegratingMLP.restore_state(state["merger"])
        cache_config = state.get("cache")
        self.attach_cache(
            ServingCache.from_config(cache_config) if cache_config is not None else None
        )
        self._fitted = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the neighborhood's index workers (lifecycle cascade).

        Required when serving with ``shard_backend="process"`` — the shard
        worker processes and their shared-memory segments outlive garbage
        collection otherwise.  Safe and idempotent for every other index.
        """

        self.neighborhood.close()

    def __enter__(self) -> "SCCF":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    @property
    def name(self) -> str:
        suffix = {"ui": "", "uu": "UU", "sccf": "SCCF"}[self.mode]
        return f"{self.ui_model.name}{suffix}" if suffix else self.ui_model.name
