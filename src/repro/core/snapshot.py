"""Crash-safe snapshot persistence (generation directories + manifest commit).

A snapshot is a *generation directory* (``gen-000001``, ``gen-000002``, ...)
under a snapshot root.  Each generation holds:

* ``state.json`` — the structured state tree (server config, SCCF config,
  index metadata, merger hyperparameters, ...) with every ``ndarray`` leaf
  replaced by an ``{"__array__": "<name>.npy"}`` placeholder,
* one ``.npy`` file per extracted array (``np.save`` format,
  ``allow_pickle=False`` both ways — snapshots never execute pickle), and
* ``manifest.json`` — format version, index epoch, and per-file byte length
  + SHA-256 — written **last**, as the commit point.

Every file lands via :func:`_atomic_write`: same-directory tmp file →
``flush`` → ``os.fsync`` → :func:`_replace_file` (the ``os.replace`` seam
:class:`repro.testing.FaultInjector` patches to simulate crashes) → directory
fsync.  A crash at any point therefore leaves either (a) a stray ``.tmp``
file, (b) a generation directory without a manifest, or (c) a fully committed
generation — never a manifest that endorses half-written content.  The
``CURRENT`` pointer at the root is updated only after the manifest commits,
so readers resolving the root always land on the last *complete* generation.

:func:`read_snapshot` re-verifies byte lengths and checksums against the
manifest and raises :class:`SnapshotError` with a reason (missing file,
truncation, checksum mismatch, version skew) instead of loading corrupt
state; earlier generations stay on disk (``keep`` newest are retained) so a
rejected newest generation still leaves the previous one loadable.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotNotFoundError",
    "SnapshotPayload",
    "list_generations",
    "read_snapshot",
    "write_snapshot",
]

#: Bump on any incompatible change to the layout above.
SNAPSHOT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_STATE = "state.json"
_CURRENT = "CURRENT"
_GENERATION_RE = re.compile(r"^gen-(\d{6})$")


class SnapshotError(RuntimeError):
    """A snapshot cannot be written, or fails its integrity verification."""


class SnapshotNotFoundError(SnapshotError):
    """No committed generation exists where one was expected.

    Raised when a snapshot root does not exist, holds no committed
    generation, or its ``CURRENT`` pointer names a generation that is gone
    (pruned, or lost with its directory) — the "nothing to load" cases a
    caller may want to handle by bootstrapping fresh state, as opposed to
    the integrity failures a plain :class:`SnapshotError` reports (which
    mean data *exists* but cannot be trusted).
    """


@dataclass
class SnapshotPayload:
    """What :func:`read_snapshot` returns: verified state plus provenance."""

    state: Dict[str, Any]
    epoch: int
    generation: int
    path: Path
    #: highest WAL sequence the snapshot covers (0: no journal was attached)
    wal_seq: int = 0


# ---------------------------------------------------------------------- #
# atomic file plumbing
# ---------------------------------------------------------------------- #


def _replace_file(src: Path, dst: Path) -> None:
    """Atomic rename seam — fault injection patches this to simulate crashes."""

    os.replace(src, dst)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover — some filesystems refuse dir fsync
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """The only sanctioned way to create a snapshot file (RL007 clause A).

    Same-directory tmp → write → flush → fsync → rename → directory fsync:
    after a crash the target either has its complete old content or its
    complete new content, never a prefix.
    """

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    _replace_file(tmp, path)
    _fsync_dir(path.parent)


# ---------------------------------------------------------------------- #
# array extraction / restoration
# ---------------------------------------------------------------------- #


def _array_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _array_from_bytes(data: bytes, name: str) -> np.ndarray:
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except Exception as exc:
        raise SnapshotError(f"snapshot array {name!r} is unreadable: {exc}") from exc


def _strip_arrays(node: Any, prefix: str, arrays: Dict[str, np.ndarray]) -> Any:
    """Replace every ndarray leaf with a placeholder, collecting the arrays."""

    if isinstance(node, np.ndarray):
        name = f"{prefix}.npy"
        if name in arrays:
            raise SnapshotError(f"duplicate array path {name!r} in snapshot state")
        arrays[name] = node
        return {"__array__": name}
    if isinstance(node, dict):
        out: Dict[str, Any] = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise SnapshotError(
                    f"snapshot state keys must be strings, got {key!r} under {prefix!r}"
                )
            out[key] = _strip_arrays(value, f"{prefix}.{key}" if prefix else key, arrays)
        return out
    if isinstance(node, (list, tuple)):
        return [
            _strip_arrays(value, f"{prefix}.{position}", arrays)
            for position, value in enumerate(node)
        ]
    return node


def _graft_arrays(node: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_strip_arrays`: resolve placeholders back to arrays."""

    if isinstance(node, dict):
        if set(node) == {"__array__"}:
            name = node["__array__"]
            if name not in arrays:
                raise SnapshotError(f"state references array {name!r} absent from manifest")
            return arrays[name]
        return {key: _graft_arrays(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_graft_arrays(value, arrays) for value in node]
    return node


def _json_default(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(f"snapshot state contains non-serializable {type(value).__name__}")


# ---------------------------------------------------------------------- #
# generation management
# ---------------------------------------------------------------------- #


def list_generations(root: Union[str, Path]) -> List[Path]:
    """Generation directories under ``root``, oldest first (committed or not)."""

    root = Path(root)
    if not root.is_dir():
        return []
    found = [
        entry
        for entry in root.iterdir()
        if entry.is_dir() and _GENERATION_RE.match(entry.name)
    ]
    return sorted(found, key=lambda entry: entry.name)


def _generation_number(path: Path) -> int:
    match = _GENERATION_RE.match(path.name)
    if match is None:
        raise SnapshotError(f"{path} is not a snapshot generation directory")
    return int(match.group(1))


def _resolve_generation(path: Path) -> Path:
    """Map a root or generation directory to the generation to read."""

    if (path / _MANIFEST).is_file():
        return path
    if _GENERATION_RE.match(path.name):
        if path.is_dir():
            raise SnapshotError(f"snapshot {path} has no manifest (interrupted write?)")
        raise SnapshotNotFoundError(
            f"snapshot generation {path} does not exist (pruned, or never written)"
        )
    if not path.is_dir():
        raise SnapshotNotFoundError(f"snapshot directory {path} does not exist")
    current = path / _CURRENT
    if current.is_file():
        name = current.read_text().strip()
        candidate = path / name
        if (candidate / _MANIFEST).is_file():
            return candidate
        if not candidate.is_dir():
            raise SnapshotNotFoundError(
                f"CURRENT points at generation {name!r} but it no longer exists "
                f"under {path} (pruned, or lost with its directory)"
            )
        raise SnapshotError(
            f"CURRENT points at {name!r} but {candidate / _MANIFEST} is missing"
        )
    committed = [
        entry for entry in list_generations(path) if (entry / _MANIFEST).is_file()
    ]
    if not committed:
        raise SnapshotNotFoundError(f"no committed snapshot generation under {path}")
    return committed[-1]


def _prune(root: Path, keep: int, protect: Path) -> None:
    """Drop all but the ``keep`` newest committed generations (never ``protect``)."""

    committed = [
        entry for entry in list_generations(root) if (entry / _MANIFEST).is_file()
    ]
    for entry in committed[: max(0, len(committed) - keep)]:
        if entry == protect:  # pragma: no cover — keep >= 1 always protects it
            continue
        shutil.rmtree(entry, ignore_errors=True)


# ---------------------------------------------------------------------- #
# write / read
# ---------------------------------------------------------------------- #


def write_snapshot(
    root: Union[str, Path],
    state: Dict[str, Any],
    epoch: int = 0,
    keep: int = 2,
    wal_seq: int = 0,
) -> Path:
    """Commit ``state`` as a new generation under ``root``; returns its path.

    ``state`` is an arbitrarily nested tree of JSON-safe values and
    ``ndarray`` leaves.  ``epoch`` (the serving index epoch at save time) is
    recorded in the manifest for observability.  ``wal_seq`` — the highest
    write-ahead-log sequence whose effects ``state`` includes — is recorded
    so recovery knows where snapshot coverage ends and journal replay must
    begin (0 means no journal was involved).  The ``keep`` newest committed
    generations are retained, older ones pruned.
    """

    if keep < 1:
        raise ValueError("keep must be at least 1")
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    existing = list_generations(root)
    number = _generation_number(existing[-1]) + 1 if existing else 1
    generation = root / f"gen-{number:06d}"
    generation.mkdir()

    arrays: Dict[str, np.ndarray] = {}
    tree = _strip_arrays(state, "", arrays)
    try:
        state_bytes = json.dumps(
            tree, sort_keys=True, separators=(",", ":"), default=_json_default
        ).encode("utf-8")
    except TypeError as exc:
        raise SnapshotError(str(exc)) from exc

    files: Dict[str, bytes] = {_STATE: state_bytes}
    for name, array in arrays.items():
        files[name] = _array_bytes(array)

    entries: Dict[str, Dict[str, Any]] = {}
    for name, data in sorted(files.items()):
        _atomic_write(generation / name, data)
        entries[name] = {
            "bytes": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
        }
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "epoch": int(epoch),
        "generation": number,
        "wal_seq": int(wal_seq),
        "files": entries,
    }
    # The manifest is the commit point: it lands last, so its existence
    # certifies every file above it.
    _atomic_write(
        generation / _MANIFEST,
        json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8"),
    )
    _atomic_write(root / _CURRENT, generation.name.encode("utf-8"))
    _prune(root, keep, generation)
    return generation


def read_snapshot(path: Union[str, Path]) -> SnapshotPayload:
    """Load and verify a snapshot from a root (resolving ``CURRENT``) or a
    generation directory; :class:`SnapshotError` on any integrity failure."""

    generation = _resolve_generation(Path(path))
    manifest_path = generation / _MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot manifest {manifest_path}: {exc}") from exc
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {generation} has format version {version!r}; "
            f"this build reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    entries = manifest.get("files")
    if not isinstance(entries, dict) or _STATE not in entries:
        raise SnapshotError(f"snapshot manifest {manifest_path} lists no state file")

    contents: Dict[str, bytes] = {}
    for name, entry in entries.items():
        target = generation / name
        try:
            data = target.read_bytes()
        except OSError as exc:
            raise SnapshotError(f"snapshot file {target} is missing: {exc}") from exc
        if len(data) != entry.get("bytes"):
            raise SnapshotError(
                f"snapshot file {target} is truncated "
                f"({len(data)} bytes, manifest says {entry.get('bytes')})"
            )
        digest = hashlib.sha256(data).hexdigest()
        if digest != entry.get("sha256"):
            raise SnapshotError(
                f"snapshot file {target} fails its checksum "
                f"(content {digest[:12]}..., manifest {str(entry.get('sha256'))[:12]}...)"
            )
        contents[name] = data

    tree = json.loads(contents[_STATE].decode("utf-8"))
    arrays = {
        name: _array_from_bytes(data, name)
        for name, data in contents.items()
        if name != _STATE
    }
    state = _graft_arrays(tree, arrays)
    if not isinstance(state, dict):
        raise SnapshotError(f"snapshot {generation} state root is not an object")
    return SnapshotPayload(
        state=state,
        epoch=int(manifest.get("epoch", 0)),
        generation=_generation_number(generation),
        path=generation,
        wal_seq=int(manifest.get("wal_seq", 0)),
    )


def previous_generation(root: Union[str, Path], before: Union[str, Path]) -> Optional[Path]:
    """Newest committed generation older than ``before`` (None if there is none)."""

    cutoff = _generation_number(Path(before))
    committed = [
        entry
        for entry in list_generations(root)
        if (entry / _MANIFEST).is_file() and _generation_number(entry) < cutoff
    ]
    return committed[-1] if committed else None
