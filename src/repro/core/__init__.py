"""SCCF core: user-based component, integrating MLP, framework, real-time server."""

from __future__ import annotations

from .cache import CacheStats, LayerStats, LRUCache, ServingCache
from .merger import CandidateFeatures, IntegratingMLP, normalize_scores
from .realtime import (
    EventBuffer,
    HealthReport,
    LatencyBreakdown,
    MaintenanceReport,
    MaintenanceScheduler,
    RealTimeServer,
)
from .sccf import SCCF, SCCFConfig
from .snapshot import SnapshotError, SnapshotNotFoundError, SnapshotPayload
from .user_neighborhood import UserNeighborhoodComponent
from .wal import WALError, WALStats, WriteAheadLog, replay_wal

__all__ = [
    "UserNeighborhoodComponent",
    "IntegratingMLP",
    "CandidateFeatures",
    "normalize_scores",
    "SCCF",
    "SCCFConfig",
    "RealTimeServer",
    "HealthReport",
    "LatencyBreakdown",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "EventBuffer",
    "ServingCache",
    "CacheStats",
    "LayerStats",
    "LRUCache",
    "SnapshotError",
    "SnapshotNotFoundError",
    "SnapshotPayload",
    "WALError",
    "WALStats",
    "WriteAheadLog",
    "replay_wal",
]
