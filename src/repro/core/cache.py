"""Versioned serving cache for the SCCF recommend hot path.

The online deployment story (Table III) hinges on per-request latency, and
real traffic is heavily skewed toward *repeat visitors*: the same user asks
for recommendations again and again with nothing about her state — or her
neighborhood — having changed in between.  Recomputing the full pipeline
(user-embedding inference, neighbor search, candidate union, merger feature
assembly, MLP forward) for every such request is pure waste.

This module provides the cache as a proper *invalidation-correct* subsystem
rather than an ad-hoc memo.  Correctness rests on two families of
monotonically increasing counters maintained at the mutation points:

* **per-user embedding versions** — bumped by
  :meth:`~repro.core.user_neighborhood.UserNeighborhoodComponent.update_users`
  / ``add_users`` (and therefore by every ``RealTimeServer.observe`` /
  ``observe_batch``), so anything derived from a user's history or embedding
  can be validated in O(1);
* **index epochs** — bumped by any ``build`` / ``add`` / ``update`` /
  ``update_batch`` / ``retrain`` on the neighbor index
  (:class:`~repro.ann.brute_force.BruteForceIndex`,
  :class:`~repro.ann.ivf.IVFIndex`,
  :class:`~repro.ann.sharded.ShardedIndex`), so anything derived from *other
  users'* state (neighbor lists, fused scores, full recommendation lists) is
  invalidated by any mutation anywhere — a ``retrain`` invalidates
  everything epoch-keyed.

Every cache entry stores the ``(key, token, value)`` triple where ``token``
encodes the counters the value was computed under; a lookup whose stored
token no longer matches the current counters drops the entry and counts an
*invalidation*.  Token components are strictly monotonic (versions, epochs,
the merger generation), so a dropped entry could never have become valid
again; validation is a pure O(1) tuple comparison and a stale entry can
never be served.  Inputs the counters cannot see — caller-supplied
histories (:func:`history_fingerprint` embeds ``hash(tuple(history))``) and
caller-supplied query embeddings (``hash(embedding.tobytes())``) — are
fingerprinted into the *key* instead, so distinct explicit inputs for one
user coexist as separate entries (interleaving two flows never thrashes the
cache).  A 64-bit fingerprint collision would make two different explicit
inputs share a key — negligible in practice, but worth knowing when
reasoning about the invalidation model.  No *index or model* state is ever
hashed.  Re-fitting a component behind a fitted SCCF's back is covered for
the merger by its ``generation`` counter; re-fitting the UI model requires
``SCCF.fit`` (which rebuilds the neighborhood and clears the cache) to
produce a coherent stack at all, cached or not.

Layers (all bounded LRU, one capacity knob):

* ``embeddings``   — user id → inferred user embedding (survives index
  mutations: it depends only on the user's own history);
* ``neighbors``    — user id → ``(neighbor_ids, similarities)`` search
  result, keyed on ``(user_version, index_epoch, history fingerprint)``;
* ``scores``       — user id → full fused score row over the catalog;
* ``recommendations`` — ``(user id, k, exclude_seen)`` → final top-k list.

Enable it with ``SCCFConfig(cache_capacity=...)`` / ``make_sccf(...,
cache_capacity=...)`` or by passing a :class:`ServingCache` to ``SCCF``
directly; hit/miss/invalidation/eviction counters are surfaced through
:meth:`ServingCache.stats`.

Precision note: within the serving flow (``RealTimeServer.observe`` /
``recommend``) every scoring call is a batch of one, so a cache hit is
*bit-identical* to recomputing — the property suite pins this over random
interleaved workloads.  When the same cached SCCF also serves large
evaluation batches, an entry cached under one batch shape can differ from a
fresh computation under another by a few ulps of the narrowest dtype
involved: BLAS dispatches different kernels by batch shape (gemv at batch 1
vs gemm), so a float32 neighbor-index search answers a 1-row batch ~1e-7
apart from a 10-row batch, and deep-model inference (SASRec) shows the same
effect at float64 scale.  The values are equally valid rounding of the same
mathematical result; only cross-shape *comparisons* see it.
"""

from __future__ import annotations

import copy
import sys
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "MISS",
    "LayerStats",
    "CacheStats",
    "LRUCache",
    "ServingCache",
    "history_fingerprint",
    "serve_batch",
]


class _Miss:
    """Sentinel distinguishing "no entry" from a cached ``None`` value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<cache miss>"

    def __bool__(self) -> bool:
        return False


#: Returned by :meth:`LRUCache.get` when no valid entry exists.
MISS = _Miss()


@dataclass
class LayerStats:
    """Hit/miss accounting for one cache layer.

    ``invalidations`` counts entries dropped because their version/epoch
    token went stale (every invalidation is also a miss: the caller must
    recompute).  ``evictions`` counts entries pushed out by the LRU capacity
    bound.
    """

    name: str
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never consulted)."""

        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class CacheStats:
    """Per-layer :class:`LayerStats` plus aggregate totals (one report object)."""

    layers: List[LayerStats] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(layer.hits for layer in self.layers)

    @property
    def misses(self) -> int:
        return sum(layer.misses for layer in self.layers)

    @property
    def invalidations(self) -> int:
        return sum(layer.invalidations for layer in self.layers)

    @property
    def evictions(self) -> int:
        return sum(layer.evictions for layer in self.layers)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def layer(self, name: str) -> LayerStats:
        for entry in self.layers:
            if entry.name == name:
                return entry
        raise KeyError(f"no cache layer named {name!r}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "layers": [layer.as_dict() for layer in self.layers],
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def summary(self) -> str:
        """Aligned per-layer report (hit rates, invalidations, evictions)."""

        header = f"{'layer':<16}{'hits':>10}{'misses':>10}{'stale':>8}{'evicted':>9}{'hit rate':>10}"
        lines = [header, "-" * len(header)]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<16}{layer.hits:>10}{layer.misses:>10}"
                f"{layer.invalidations:>8}{layer.evictions:>9}{layer.hit_rate:>10.1%}"
            )
        lines.append(
            f"{'total':<16}{self.hits:>10}{self.misses:>10}"
            f"{self.invalidations:>8}{self.evictions:>9}{self.hit_rate:>10.1%}"
        )
        return "\n".join(lines)


def _value_nbytes(value: Any) -> int:
    """Approximate heap footprint of a cached value, in bytes.

    NumPy arrays report their buffer exactly (``nbytes``); containers sum
    their elements; everything else falls back to ``sys.getsizeof``.  Used
    only by byte-budgeted layers, so unbudgeted layers never pay the walk.
    """

    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(entry) for entry in value)
    return sys.getsizeof(value)


class LRUCache:
    """Bounded LRU mapping ``key → (token, value)`` with token validation.

    ``token`` is the tuple of version counters the value was computed under
    (e.g. ``(user_version, index_epoch)``) — monotonic by contract; anything
    non-monotonic an entry depends on (a history fingerprint, a query hash)
    belongs in the *key*.  :meth:`get` only returns a value whose stored
    token equals the caller's current token; a mismatch drops the entry (it
    can never become valid again — counters are monotonic) and reports a
    miss.  Capacity 0 disables the layer: every ``put`` is a no-op and every
    ``get`` a miss.

    ``max_bytes`` adds a *memory* budget on top of the entry-count bound:
    each stored value's footprint (``value.nbytes`` for arrays) is tracked
    and the LRU tail is evicted until the layer fits the budget — an entry
    count says nothing about memory when values are full catalog-width score
    rows, so large catalogs bound the layer by bytes instead.  A single
    value bigger than the whole budget is simply not stored (storing it
    would evict everything else *and* still bust the budget).
    """

    def __init__(self, name: str, capacity: int, max_bytes: Optional[int] = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (omit it for no byte budget)")
        self.name = name
        self.capacity = capacity
        self.max_bytes = max_bytes
        #: bytes currently held (0 unless the layer is byte-budgeted)
        self.total_bytes = 0
        self.stats = LayerStats(name=name)
        self._entries: "OrderedDict[Hashable, Tuple[Hashable, Any, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, token: Hashable) -> Any:
        """Return the cached value for ``key`` if its token is current, else :data:`MISS`."""

        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return MISS
        stored_token, value, nbytes = entry
        if stored_token != token:
            del self._entries[key]
            self.total_bytes -= nbytes
            self.stats.invalidations += 1
            self.stats.misses += 1
            return MISS
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: Hashable) -> Any:
        """Return the stored value for ``key`` ignoring token freshness.

        The *stale-serve* escape hatch: when recomputation is impossible
        (every shard worker down, a deadline blown), a possibly-outdated
        answer beats an empty one.  No recency bump and no stats churn — a
        peek is not a lookup, and serving stale is the caller's explicit,
        counted decision (see ``RealTimeServer.recommend``'s fallback chain),
        never something the cache does silently.
        """

        entry = self._entries.get(key)
        return MISS if entry is None else entry[1]

    def put(self, key: Hashable, token: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``/``token``, evicting LRU entries while
        either bound (entry count, byte budget) is exceeded."""

        if self.capacity == 0:
            return
        nbytes = _value_nbytes(value) if self.max_bytes is not None else 0
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return  # oversized: would evict the whole layer and still not fit
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.total_bytes -= previous[2]
        elif len(self._entries) >= self.capacity:
            self._evict_lru()
        self._entries[key] = (token, value, nbytes)
        self.total_bytes += nbytes
        if self.max_bytes is not None:
            while self.total_bytes > self.max_bytes:
                self._evict_lru()

    def _evict_lru(self) -> None:
        _, (_, _, nbytes) = self._entries.popitem(last=False)
        self.total_bytes -= nbytes
        self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved — they describe the lifetime)."""

        self._entries.clear()
        self.total_bytes = 0

    def reset_stats(self) -> None:
        self.stats = LayerStats(name=self.name)


class ServingCache:
    """The layered cache spanning the whole recommend hot path.

    One ``capacity`` bounds every layer independently (each layer keeps at
    most ``capacity`` entries).  Memory is dominated by the ``scores`` layer,
    whose values are full ``(num_items,)`` float64 rows — at a 1M-item
    catalog a single row is 8 MB, so a fixed entry count can blow memory no
    matter how small.  ``max_score_bytes`` bounds that layer by *tracked
    bytes* instead: the LRU tail is evicted whenever the stored rows exceed
    the budget, independent of the entry count.
    """

    def __init__(self, capacity: int = 1024, max_score_bytes: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive (omit the cache to disable it)")
        self.capacity = capacity
        self.max_score_bytes = max_score_bytes
        self.embeddings = LRUCache("embeddings", capacity)
        self.neighbors = LRUCache("neighbors", capacity)
        self.scores = LRUCache("scores", capacity, max_bytes=max_score_bytes)
        self.recommendations = LRUCache("recommendations", capacity)
        self._owner: Optional[weakref.ref] = None

    def snapshot_config(self) -> Dict[str, Any]:
        """Cache-free configuration for snapshot persistence.

        Snapshots never persist cache *entries* — they are derivable state
        that the restored server re-warms (``prefill_cache``) — only the
        shape needed to rebuild an equivalent empty cache.
        """

        return {"capacity": self.capacity, "max_score_bytes": self.max_score_bytes}

    @classmethod
    def from_config(cls, config: Dict[str, Any]) -> "ServingCache":
        """Rebuild an empty cache from :meth:`snapshot_config` output."""

        return cls(
            capacity=int(config["capacity"]),
            max_score_bytes=config.get("max_score_bytes"),
        )

    def bind(self, owner: object) -> None:
        """Claim this cache for ``owner`` (one SCCF stack per cache).

        Entry keys carry no model discriminator — two SCCF instances sharing
        one cache would serve each other's embeddings and scores — so the
        cache refuses a second live owner.  A cache whose previous owner is
        gone can be re-bound; its entries are dropped first (they encode the
        dead owner's model state).
        """

        current = self._owner() if self._owner is not None else None
        if current is owner:
            return
        if current is not None:
            raise ValueError(
                "this ServingCache is already attached to another SCCF; "
                "caches cannot be shared between stacks (entry keys carry "
                "no model discriminator)"
            )
        if len(self):
            self.clear()
        self._owner = weakref.ref(owner)

    def unbind(self, owner: object) -> None:
        """Release ownership if held by ``owner`` (no-op otherwise).

        Called when a stack detaches or replaces its cache, so the cache can
        be attached elsewhere afterwards; any leftover entries are dropped by
        the next :meth:`bind`.
        """

        current = self._owner() if self._owner is not None else None
        if current is owner:
            self._owner = None

    def __deepcopy__(self, memo: Dict[int, Any]) -> "ServingCache":
        """Deep copy that follows the owner into the copied object graph.

        ``weakref.ref`` is deepcopy-atomic, so without this the copy of a
        cache-attached SCCF would hold a cache still bound to the *original*
        stack — unbindable for as long as the original lives.  Re-pointing
        through ``memo`` makes the copied cache belong to the copied owner
        (deepcopying a bare owned cache copies its owner too — caches and
        stacks travel together).
        """

        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        for name, value in self.__dict__.items():
            if name == "_owner":
                owner = value() if value is not None else None
                clone._owner = (
                    None if owner is None else weakref.ref(copy.deepcopy(owner, memo))
                )
            else:
                setattr(clone, name, copy.deepcopy(value, memo))
        return clone

    @property
    def layers(self) -> List[LRUCache]:
        return [self.embeddings, self.neighbors, self.scores, self.recommendations]

    def stats(self) -> CacheStats:
        """A snapshot of the per-layer counters (a :class:`CacheStats` report).

        The returned report holds *copies* of the counters, so it can be kept
        for before/after comparisons while traffic keeps flowing; the live
        counters stay on each layer's ``stats`` attribute.
        """

        return CacheStats(layers=[replace(layer.stats) for layer in self.layers])

    def clear(self) -> None:
        """Drop every entry in every layer (used when the model is re-fitted)."""

        for layer in self.layers:
            layer.clear()

    def reset_stats(self) -> None:
        for layer in self.layers:
            layer.reset_stats()

    def __len__(self) -> int:
        return sum(len(layer) for layer in self.layers)


def serve_batch(
    layer: Optional["LRUCache"],
    keys: List[Hashable],
    tokens: List[Any],
    compute: "Callable[[List[int]], List[Any]]",
    cacheable: "Optional[Callable[[], bool]]" = None,
) -> List[Any]:
    """Batched cache-through: probe ``layer`` per key, recompute misses in one call.

    The one scaffold every cached layer shares — probe, collect the missing
    positions, recompute them together, store the fresh values — lives here
    so the invalidation logic cannot drift between call sites.
    ``compute(missing_positions)`` returns one fresh value per missing
    position (values are stored by reference: pass private copies for
    mutable values).  ``layer=None`` (cache disabled, or the index exposes
    no epoch) computes everything and stores nothing.  ``cacheable`` is an
    optional zero-argument predicate consulted *after* ``compute``: when it
    returns False the fresh values are served but **not stored** — the hook
    degraded serving uses to keep partial answers out of the cache (callers
    snapshot their index's ``degraded_requests`` counter before the call and
    compare after).  Returns the values aligned with ``keys``.
    """

    values: List[Any] = [MISS] * len(keys)
    if layer is not None:
        for position, (key, token) in enumerate(zip(keys, tokens)):
            values[position] = layer.get(key, token)
    missing = [position for position, value in enumerate(values) if value is MISS]
    if missing:
        fresh = compute(missing)
        store = layer is not None and (cacheable is None or cacheable())
        for position, value in zip(missing, fresh):
            values[position] = value
            if store:
                layer.put(keys[position], tokens[position], value)
    return values


def history_fingerprint(history: Optional[Sequence[int]]) -> Tuple[int, int, int]:
    """Fingerprint of a history: ``(length, last item, content hash)``.

    The per-user version counter alone pins the history for version-tracked
    flows (server state is append-only within a version), but the public
    ``history``/``histories`` parameters let callers score *any* sequence
    for a user — two different explicit histories must land on different
    cache entries, so the fingerprint is part of the *key* (keys are where
    non-monotonic inputs belong; tokens hold only monotonic counters).
    Hashing a tuple of ints is O(len(history)) but it only runs on paths
    that would otherwise run model inference over the same history (never
    on the O(1) recommendation-layer fast path), and no index or model
    state is ever hashed.
    """

    if history is None:
        return (-1, -1, 0)
    length = len(history)
    last = int(history[length - 1]) if length else -1
    return (length, last, hash(tuple(history)))
