"""Durable ingestion: an append-only, segment-rotated write-ahead log.

PR 9's snapshot store made the *index* crash-safe at snapshot points, but the
stream itself was not durable — every ``observe`` since the last
``save_snapshot`` lived only in process memory.  This module supplies the
classic database answer: :class:`WriteAheadLog`, an event journal the server
appends to *before* applying a batch, so recovery is snapshot + journal
replay, bit-identical to the pre-crash server.

Record format — every record is length-prefixed and checksummed::

    <u32 payload length> <u32 crc32(seq || payload)> <u64 seq> <payload bytes>

Sequence numbers are monotonic from 1 and never reused.  The CRC covers the
sequence number *and* the payload, so a record can neither be truncated nor
bit flipped without failing verification — and because the scan additionally
enforces that sequences run contiguously from the segment's base (the
``<first-seq>`` in its filename), a valid record duplicated or spliced into
another position fails the scan too: it is damage, not data.  Records land
in segment files (``wal-<first-seq>.seg``) rotated at ``segment_bytes``;
:meth:`WriteAheadLog.prune` deletes segments wholly covered by a snapshot so
the journal stays bounded.

Torn tails are expected, not fatal: a crash mid-append leaves a partial
record at the end of the last segment.  Opening the log scans forward,
verifies every record, and truncates at the *first* corrupt one — everything
before it is kept, everything after it (torn bytes, or records written after
a corrupted middle) is discarded.  The same forward scan backs
:func:`replay_wal`, the **read-only** variant a replica uses to tail a live
primary's journal without ever truncating it.

One directory has one writer, and the rule is machine-enforced: the owning
open takes an advisory ``flock`` on ``wal.lock`` and a second
:class:`WriteAheadLog` over the same directory fails fast instead of running
recovery against a live writer's tail.  The lock dies with the process, so a
crashed writer never wedges its own restart; replicas tail the directory
read-only through :func:`replay_wal` and never need the lock.

Durability is a policy, not a boolean (``fsync=``):

* ``"always"`` — fsync on every append call: nothing acknowledged is ever
  lost, at one disk flush per call.
* ``"batch"`` — group commit: fsync once every ``batch_records`` appended
  records, amortizing the flush across calls; a crash can lose at most the
  last un-synced group (still a clean prefix — replay is always consistent).
* ``"interval"`` — flush on a wall-clock cadence (``interval_ms``), the
  bounded-staleness policy; loss window is time-shaped instead of
  count-shaped.

An append call whose group-commit fsync fails is rolled back whole before
the :class:`WALError` surfaces: the records it wrote are truncated away and
the sequence counter rewinds, so the journal never keeps a record its caller
was told failed — recovery replays exactly the acknowledged stream, and a
retry re-journals under the next sequence instead of leaving a duplicate.
Records acknowledged by *earlier* calls are untouched; their durability
window is whatever the policy already promised.

All journal bytes reach disk through :func:`encode_record` and the
module-level :func:`_write_encoded` sink, and every append path ends in the
:meth:`WriteAheadLog._maybe_sync` policy hook — both machine-enforced by
repolint's RL008 (``wal-record-codec``).  :func:`_write_encoded` and
:func:`_fsync_file` are deliberate seams: :class:`repro.testing.FaultInjector`
patches them to simulate crash-mid-append and fsync failure.
"""

from __future__ import annotations

import fcntl
import json
import os
import re
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "FSYNC_POLICIES",
    "MAX_RECORD_BYTES",
    "WALError",
    "WALStats",
    "WriteAheadLog",
    "decode_payload",
    "encode_events",
    "encode_maintain",
    "encode_record",
    "replay_wal",
    "scan_segment",
]

#: The three group-commit durability policies.
FSYNC_POLICIES = ("always", "batch", "interval")

#: ``<u32 length> <u32 crc32> <u64 seq>`` — 16 bytes before every payload.
_HEADER = struct.Struct("<IIQ")

#: Upper bound on one payload; a corrupt length prefix must never make the
#: scanner allocate gigabytes or walk past a plausible record.
MAX_RECORD_BYTES = 64 * 1024 * 1024

#: Default rotation threshold for segment files.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.seg$")

#: Payload kind tags (first byte of every payload).
_KIND_EVENTS = 1
_KIND_MAINTAIN = 2


class WALError(RuntimeError):
    """The journal cannot be appended to, synced, or decoded."""


@dataclass
class WALStats:
    """One point-in-time view of a journal — what ``health()`` surfaces."""

    #: highest sequence number ever appended (0 for an empty journal)
    last_seq: int
    #: highest sequence number covered by a snapshot (see :meth:`prune`)
    checkpoint_seq: int
    #: records a recovery would replay: ``last_seq - checkpoint_seq``
    lag: int
    #: live segment files on disk
    segments: int
    #: records appended through this process's handle
    records: int
    #: append calls (one group-commit decision each)
    appends: int
    #: fsyncs actually issued — the observable group-commit cadence
    fsyncs: int
    #: fsyncs that raised (each one also raised a :class:`WALError`)
    fsync_failures: int
    #: payload+header bytes written through this process's handle
    bytes_written: int
    #: bytes discarded at open time recovering from a torn/corrupt tail
    truncated_bytes: int
    #: records appended since the last successful fsync
    pending: int


# ---------------------------------------------------------------------- #
# record codec
# ---------------------------------------------------------------------- #


def encode_record(seq: int, payload: bytes) -> bytes:
    """Frame one payload: length + CRC32(seq || payload) + seq + payload."""

    if seq <= 0:
        raise WALError("sequence numbers start at 1")
    if len(payload) > MAX_RECORD_BYTES:
        raise WALError(
            f"payload of {len(payload)} bytes exceeds MAX_RECORD_BYTES ({MAX_RECORD_BYTES})"
        )
    crc = zlib.crc32(payload, zlib.crc32(seq.to_bytes(8, "little")))
    return _HEADER.pack(len(payload), crc, seq) + payload


def _decode_at(data: bytes, offset: int) -> Optional[Tuple[int, bytes, int]]:
    """Decode the record starting at ``offset``; ``None`` if torn or corrupt."""

    if offset + _HEADER.size > len(data):
        return None
    length, crc, seq = _HEADER.unpack_from(data, offset)
    end = offset + _HEADER.size + length
    if length > MAX_RECORD_BYTES or end > len(data) or seq <= 0:
        return None
    payload = data[offset + _HEADER.size : end]
    if zlib.crc32(payload, zlib.crc32(seq.to_bytes(8, "little"))) != crc:
        return None
    return seq, payload, end


def scan_segment(
    path: Path, expected_first: Optional[int] = None
) -> Tuple[List[Tuple[int, bytes, int, int]], int]:
    """Verify one segment front to back.

    Returns ``(records, good_bytes)`` where each record is
    ``(seq, payload, start, end)`` and ``good_bytes`` is the offset of the
    first byte *not* covered by a verified record.  The scan stops at the
    first torn or corrupt record — exactly the truncation point crash
    recovery uses — so ``good_bytes < file size`` means a damaged tail.

    Verification covers position, not just bytes: the first record must
    carry the sequence the segment's filename advertises (overridable via
    ``expected_first`` — the cross-segment continuation a multi-segment scan
    threads through) and every later record must be exactly its
    predecessor + 1.  A CRC-valid record sitting at the wrong sequence (a
    duplicated or relocated record) therefore stops the scan like any other
    damage.
    """

    if expected_first is None:
        match = _SEGMENT_RE.match(path.name)
        if match:
            expected_first = int(match.group(1))
    data = path.read_bytes()
    records: List[Tuple[int, bytes, int, int]] = []
    offset = 0
    expected = expected_first
    while offset < len(data):
        decoded = _decode_at(data, offset)
        if decoded is None:
            break
        seq, payload, end = decoded
        if expected is not None and seq != expected:
            break
        records.append((seq, payload, offset, end))
        offset = end
        expected = seq + 1
    return records, offset


# ---------------------------------------------------------------------- #
# payload codec (what the server journals)
# ---------------------------------------------------------------------- #


def encode_events(events: Sequence[Tuple[int, int]]) -> bytes:
    """Pack an ``observe_batch`` payload: kind tag + little-endian (n, 2) int64."""

    array = np.asarray(list(events), dtype="<i8").reshape(len(events), 2)
    return bytes([_KIND_EVENTS]) + array.tobytes()


def encode_maintain(threshold: float, shadow: bool) -> bytes:
    """Pack a ``maintain`` pass that retrained (threshold resolved at run time)."""

    body = json.dumps({"threshold": float(threshold), "shadow": bool(shadow)})
    return bytes([_KIND_MAINTAIN]) + body.encode("utf-8")


def decode_payload(payload: bytes) -> Tuple[str, Any]:
    """Inverse of the two encoders: ``("events", [(u, i), ...])`` or
    ``("maintain", {"threshold": ..., "shadow": ...})``."""

    if not payload:
        raise WALError("empty WAL payload")
    kind = payload[0]
    body = payload[1:]
    if kind == _KIND_EVENTS:
        if len(body) % 16 != 0:
            raise WALError("malformed events payload (not a whole number of pairs)")
        pairs = np.frombuffer(body, dtype="<i8").reshape(-1, 2)
        return "events", [(int(user), int(item)) for user, item in pairs]
    if kind == _KIND_MAINTAIN:
        return "maintain", json.loads(body.decode("utf-8"))
    raise WALError(f"unknown WAL payload kind {kind}")


# ---------------------------------------------------------------------- #
# fault-injection seams
# ---------------------------------------------------------------------- #


def _write_encoded(handle: IO[bytes], data: bytes) -> None:
    """The only sanctioned byte sink for journal records (RL008 clause A).

    A module-level seam so :class:`repro.testing.FaultInjector` can patch it
    to tear a record mid-write — the crash-mid-append fault.
    """

    handle.write(data)


def _fsync_file(handle: IO[bytes]) -> None:
    """Flush one journal handle to stable storage (fault-injection seam)."""

    os.fsync(handle.fileno())


# ---------------------------------------------------------------------- #
# read-only replay (replicas tailing a live primary)
# ---------------------------------------------------------------------- #


def _segment_files(directory: Path) -> List[Path]:
    if not directory.is_dir():
        return []
    found = [entry for entry in directory.iterdir() if _SEGMENT_RE.match(entry.name)]
    return sorted(found, key=lambda entry: entry.name)


def replay_wal(
    directory: Union[str, Path], after_seq: int = 0
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(seq, payload)`` for every committed record with ``seq > after_seq``.

    Purely read-only — this is how a replica tails the primary's journal:
    the scan stops at the first torn or corrupt record (a record the primary
    is mid-way through writing looks exactly like a torn tail) and **never**
    truncates anything; the next call simply sees further.  Only the owning
    :class:`WriteAheadLog` (the append-side open) repairs damage.
    """

    expected: Optional[int] = None
    for segment in _segment_files(Path(directory)):
        records, good = scan_segment(segment, expected_first=expected)
        for seq, payload, _, _ in records:
            if seq > after_seq:
                yield seq, payload
        if records:
            expected = records[-1][0] + 1
        if good < segment.stat().st_size:
            return  # damaged or in-flight tail: nothing beyond it is trusted


# ---------------------------------------------------------------------- #
# the journal
# ---------------------------------------------------------------------- #


class WriteAheadLog:
    """Append-only, segment-rotated, CRC-verified event journal.

    Parameters
    ----------
    directory:
        Where the segment files live; created if absent.  One directory, one
        writer — replicas read it through :func:`replay_wal`, never by
        constructing their own :class:`WriteAheadLog` over it.  The rule is
        enforced with an advisory ``flock`` on ``wal.lock``: a second
        construction over a live writer's directory raises :class:`WALError`
        instead of truncating the writer's in-flight tail as "torn".
    fsync:
        Durability policy — ``"always"``, ``"batch"`` or ``"interval"``
        (see the module docstring for the loss-window trade-off).
    batch_records:
        Group size for ``fsync="batch"``: flush once every this many
        appended records.
    interval_ms:
        Flush cadence for ``fsync="interval"``.
    segment_bytes:
        Rotation threshold; a segment that reaches it is synced, closed, and
        succeeded by a fresh one named after the next sequence number.

    Opening an existing directory *recovers* it: every segment is scanned
    forward, the first torn or corrupt record truncates its segment there,
    and any later segments are discarded (they are beyond the first damage,
    so nothing in them is trustworthy).  Appends then resume at the next
    sequence number, so a crashed-and-restarted writer continues the same
    monotonic stream.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "batch",
        batch_records: int = 32,
        interval_ms: float = 50.0,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_records <= 0:
            raise ValueError("batch_records must be positive")
        if interval_ms < 0:
            raise ValueError("interval_ms must be non-negative")
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.batch_records = batch_records
        self.interval_ms = interval_ms
        self.segment_bytes = segment_bytes
        #: lifetime counters for this process's handle (see :class:`WALStats`)
        self.appends_total = 0
        self.records_total = 0
        self.fsyncs_total = 0
        self.fsync_failures = 0
        self.bytes_written = 0
        #: bytes discarded by torn-tail recovery at open time
        self.truncated_bytes = 0
        #: highest sequence covered by a snapshot (advanced by :meth:`prune`)
        self.checkpoint_seq = 0
        self._pending_records = 0
        self._dirty = False
        self._last_sync = time.monotonic()
        self._closed = False
        self._lock_handle: Optional[IO[bytes]] = None
        self._acquire_writer_lock()
        self.last_seq = self._recover()
        self._handle, self._active = self._open_active()

    def _acquire_writer_lock(self) -> None:
        """Fail fast if another live writer owns this directory.

        Owning recovery (:meth:`_recover`) truncates whatever looks like a
        torn tail — run against a *live* writer's directory it would shear
        the record that writer is mid-way through appending.  The advisory
        ``flock`` on ``wal.lock`` turns that mistake into an immediate
        :class:`WALError`; it is released by :meth:`close` and vanishes with
        the process, so a crashed writer never blocks its own restart.
        """

        handle = open(self.directory / "wal.lock", "ab")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            handle.close()
            raise WALError(
                f"another writer holds {self.directory / 'wal.lock'}; one "
                "directory has one writer — tail a live journal read-only "
                "via replay_wal/catch_up instead"
            ) from exc
        self._lock_handle = handle

    def _release_writer_lock(self) -> None:
        if self._lock_handle is not None and not self._lock_handle.closed:
            self._lock_handle.close()  # closing the descriptor drops the flock

    # -- open-time recovery ------------------------------------------------ #
    def _recover(self) -> int:
        """Scan all segments, truncate at the first damage, return last seq."""

        last_seq = 0
        expected: Optional[int] = None
        segments = _segment_files(self.directory)
        for position, segment in enumerate(segments):
            records, good = scan_segment(segment, expected_first=expected)
            size = segment.stat().st_size
            if records:
                last_seq = records[-1][0]
                expected = last_seq + 1
            if good == size:
                continue
            # Torn or corrupt record: keep the verified prefix, drop the rest
            # and every later segment (nothing beyond the first damage is
            # trustworthy — later records may depend on the lost one).
            self.truncated_bytes += size - good
            with open(segment, "r+b") as handle:
                handle.truncate(good)
            if good == 0:
                segment.unlink()
            for later in segments[position + 1 :]:
                self.truncated_bytes += later.stat().st_size
                later.unlink()
            break
        return last_seq

    def _open_active(self) -> Tuple[IO[bytes], Path]:
        """(Re)open the tail segment for appends, rotating if it is full.

        ``buffering=0`` keeps every written byte immediately visible to
        read-side scans (``replay_wal`` on the same directory), so a replica
        tailing a live writer never waits on Python's userspace buffer.
        """

        segments = _segment_files(self.directory)
        active = segments[-1] if segments else None
        if active is None or active.stat().st_size >= self.segment_bytes:
            active = self.directory / f"wal-{self.last_seq + 1:016d}.seg"
        return open(active, "ab", buffering=0), active

    # -- appending --------------------------------------------------------- #
    def append(self, payload: bytes) -> int:
        """Journal one payload; returns its sequence number.

        One group-commit decision per call: the record is written through
        the codec, then :meth:`_maybe_sync` applies the fsync policy.  If
        that policy's fsync fails, the call is rolled back whole (see
        :meth:`_rollback`) before the :class:`WALError` propagates — the
        journal never keeps a record whose caller was told it failed.
        """

        if self._closed:
            raise WALError("write-ahead log is closed")
        position = self._tail_position()
        try:
            seq = self._write_record(payload)
            self.appends_total += 1
            self._maybe_sync()
        except WALError:
            self._rollback(position)
            raise
        return seq

    def append_batch(self, payloads: Sequence[bytes]) -> int:
        """Journal several payloads under one group-commit decision.

        Returns the last sequence number assigned.  Like :meth:`append`,
        the fsync policy runs once at the end — the whole batch shares one
        durability decision, which is the point of group commit — and a
        failed commit rolls the whole batch back before raising.
        """

        if not payloads:
            raise ValueError("append_batch requires at least one payload")
        if self._closed:
            raise WALError("write-ahead log is closed")
        position = self._tail_position()
        try:
            seq = 0
            for payload in payloads:
                seq = self._write_record(payload)
            self.appends_total += 1
            self._maybe_sync()
        except WALError:
            self._rollback(position)
            raise
        return seq

    def _tail_position(self) -> Tuple[int, Path, int, int, int, int]:
        """Everything :meth:`_rollback` needs to unwind a failed append call."""

        return (
            self.last_seq,
            self._active,
            self._handle.tell(),
            self.records_total,
            self.bytes_written,
            self._pending_records,
        )

    def _rollback(self, position: Tuple[int, Path, int, int, int, int]) -> None:
        """Unwind one failed append call back to its pre-call tail.

        A failed group-commit fsync leaves this call's record bytes in the
        OS cache with an unknown fate.  Keeping them would break the
        recovery == acknowledged-prefix invariant twice over: replay would
        apply an event the live server refused (journal-first means a failed
        append is never applied), and a caller's retry would journal a
        duplicate copy under a fresh sequence.  So the call is erased:
        segments it created are unlinked, the pre-call active segment is
        truncated back to its pre-call length, and the sequence counter
        rewinds.  Records acknowledged by earlier calls are untouched.  The
        truncate is re-flushed best-effort — if the disk refuses that fsync
        too, a crash can at worst recover a *shorter* committed prefix,
        never a longer one.
        """

        last_seq, active, offset, records_total, bytes_written, pending = position
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close on a wedged handle
            pass
        for segment in _segment_files(self.directory):
            if segment.name > active.name:
                segment.unlink()
        if active.exists() and active.stat().st_size > offset:
            with open(active, "r+b") as handle:
                handle.truncate(offset)
                try:
                    _fsync_file(handle)
                except Exception:
                    pass  # best effort: the fsync path may still be down
        self.last_seq = last_seq
        self.records_total = records_total
        self.bytes_written = bytes_written
        self._pending_records = pending
        self._dirty = pending > 0
        # Reopen the same tail segment even if it is full: the next append's
        # rotation syncs it first, preserving the sync-before-rotate rule.
        self._active = active
        self._handle = open(active, "ab", buffering=0)

    def _write_record(self, payload: bytes) -> int:
        if self._closed:
            raise WALError("write-ahead log is closed")
        self._maybe_rotate()
        seq = self.last_seq + 1
        data = encode_record(seq, payload)
        _write_encoded(self._handle, data)
        self.last_seq = seq
        self.records_total += 1
        self.bytes_written += len(data)
        self._pending_records += 1
        self._dirty = True
        return seq

    def _maybe_rotate(self) -> None:
        if self._handle.tell() < self.segment_bytes:
            return
        # The outgoing segment is synced before rotation so prune can delete
        # it later without ever endorsing unsynced bytes as "covered".
        self._do_fsync()
        self._handle.close()
        self._active = self.directory / f"wal-{self.last_seq + 1:016d}.seg"
        self._handle = open(self._active, "ab", buffering=0)

    # -- durability policy ------------------------------------------------- #
    def _maybe_sync(self, force: bool = False) -> None:
        """The fsync-policy hook every append path ends in (RL008 clause B)."""

        if not self._dirty:
            return
        if force or self.fsync == "always":
            self._do_fsync()
        elif self.fsync == "batch":
            if self._pending_records >= self.batch_records:
                self._do_fsync()
        elif (time.monotonic() - self._last_sync) * 1000.0 >= self.interval_ms:
            self._do_fsync()

    def sync(self) -> None:
        """Force an fsync of everything appended so far (any policy).

        Unlike the append path, a failure here does *not* roll anything
        back: every pending record was already acknowledged by an earlier
        call, so the :class:`WALError` surfaces the degraded durability
        while the records stay journaled.
        """

        self._maybe_sync(force=True)

    def _do_fsync(self) -> None:
        try:
            _fsync_file(self._handle)
        except Exception as exc:
            # The bytes sit in the OS cache, fate unknown; surface the loss
            # of the durability guarantee to the caller instead of lying.
            self.fsync_failures += 1
            raise WALError(f"journal fsync failed: {exc}") from exc
        self.fsyncs_total += 1
        self._pending_records = 0
        self._dirty = False
        self._last_sync = time.monotonic()

    # -- reading ----------------------------------------------------------- #
    def replay(self, after_seq: int = 0) -> Iterator[Tuple[int, bytes]]:
        """Yield committed ``(seq, payload)`` records newer than ``after_seq``."""

        return replay_wal(self.directory, after_seq)

    # -- checkpointing ----------------------------------------------------- #
    def prune(self, upto_seq: int) -> int:
        """Drop segments wholly covered by a snapshot at ``upto_seq``.

        A segment named ``wal-<first>.seg`` holds records ``first`` through
        the next segment's ``first - 1``; it is deleted only when that whole
        range is ``<= upto_seq``.  The active (tail) segment always survives.
        Returns the number of segments removed and advances
        ``checkpoint_seq`` (the lag baseline) either way.
        """

        self.checkpoint_seq = max(self.checkpoint_seq, int(upto_seq))
        segments = _segment_files(self.directory)
        removed = 0
        for position, segment in enumerate(segments[:-1]):
            match = _SEGMENT_RE.match(segments[position + 1].name)
            assert match is not None  # _segment_files only returns matches
            last_in_segment = int(match.group(1)) - 1
            if last_in_segment > upto_seq or segment == self._active:
                break
            segment.unlink()
            removed += 1
        return removed

    # -- observability ----------------------------------------------------- #
    def stats(self) -> WALStats:
        return WALStats(
            last_seq=self.last_seq,
            checkpoint_seq=self.checkpoint_seq,
            lag=max(0, self.last_seq - self.checkpoint_seq),
            segments=len(_segment_files(self.directory)),
            records=self.records_total,
            appends=self.appends_total,
            fsyncs=self.fsyncs_total,
            fsync_failures=self.fsync_failures,
            bytes_written=self.bytes_written,
            truncated_bytes=self.truncated_bytes,
            pending=self._pending_records,
        )

    # -- lifecycle --------------------------------------------------------- #
    def close(self) -> None:
        """Flush pending records, then close the handle.  Idempotent.

        The final sync runs even under lazy policies — a clean shutdown must
        not silently forfeit the tail of the group-commit window.  If that
        sync fails the handle is still closed before the error propagates.
        """

        if self._closed:
            return
        self._closed = True
        try:
            if self._dirty:
                self._do_fsync()
        finally:
            self._handle.close()
            self._release_writer_lock()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()
