"""The SCCF integrating component (Section III-D of the paper).

The integrating component fuses the global (UI) and local (user-based)
candidate lists.  For every item in the union of the two candidate sets it
builds the feature vector of eq. (16),

    input_ui = [ m_u ⊕ q_i ⊕ r̃^UI_ui ⊕ r̃^UU_ui ],

where the two preference scores are normalized per user (mean / standard
deviation over that user's candidate set), and feeds it through a stack of
fully-connected layers producing the fused score ``r̂^fi_ui`` (eq. 15).  The
network is trained with the objective of eq. (17): for each user the item she
actually clicked next (the validation item, per Section IV-A4) is the positive
instance, every other candidate is a negative, and users whose next item does
not appear in either candidate list are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["CandidateFeatures", "IntegratingMLP", "normalize_scores"]

_EPS = 1e-8


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Per-user standardization r̃ = (r − mean(r)) / std(r) from eq. (16).

    A constant score vector (zero standard deviation) normalizes to zeros,
    which happens for users whose neighbors contributed no votes.
    """

    scores = np.asarray(scores, dtype=np.float64)
    std = scores.std()
    if std < _EPS:
        return np.zeros_like(scores)
    return (scores - scores.mean()) / std


@dataclass
class CandidateFeatures:
    """Features of one user's candidate set, ready for the integrating MLP."""

    user_id: int
    candidate_items: np.ndarray       # (C,)
    features: np.ndarray              # (C, 2d + 2)
    ui_scores: np.ndarray             # raw r^UI over the candidates
    uu_scores: np.ndarray             # raw r^UU over the candidates


class IntegratingMLP:
    """Multi-layer fully connected fusion network over the four features of eq. (16).

    The fused score is ``r̂^fi = MLP([m_u ⊕ q_i ⊕ r̃^UI ⊕ r̃^UU]) + w_ui·r̃^UI + w_uu·r̃^UU``.
    The linear skip path on the two normalized preference scores (with the
    MLP's last layer zero-initialized) means the network *starts* as the
    sensible interpolation of the two components and gradient descent can
    only move away from it if that improves the validation ranking — a
    safeguard the paper does not need at Taobao scale (hundreds of millions
    of training users) but that keeps the merger from underperforming its own
    inputs when trained on a few hundred users.  Set ``score_skip=False`` to
    recover the paper's plain MLP head (the merger ablation bench compares
    both).
    """

    def __init__(
        self,
        embedding_dim: int,
        hidden_dims: Sequence[int] = (64, 32),
        dropout: float = 0.0,
        learning_rate: float = 0.003,
        weight_decay: float = 1e-6,
        num_epochs: int = 80,
        batch_size: int = 256,
        negatives_per_positive: int = 50,
        validation_fraction: float = 0.2,
        patience: int = 15,
        score_skip: bool = True,
        seed: int = 0,
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        self.embedding_dim = embedding_dim
        self.input_dim = 2 * embedding_dim + 2
        self.hidden_dims = tuple(hidden_dims)
        self.dropout = dropout
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.negatives_per_positive = negatives_per_positive
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.score_skip = score_skip
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.network = nn.MLP(
            input_dim=self.input_dim,
            hidden_dims=self.hidden_dims,
            output_dim=1,
            dropout=dropout,
            rng=self._rng,
        )
        #: learnable weights of the skip path over [r̃^UI, r̃^UU]
        self.skip_weights = nn.Parameter(np.array([1.0, 0.5]), name="skip_weights")
        if score_skip:
            # Zero the final projection so the initial fused score is exactly
            # the skip interpolation; the MLP learns residual corrections.
            final_layer = list(self.network.network)[-1]
            final_layer.weight.data[:] = 0.0
        # Frozen weight snapshot for the pure-NumPy serving forward; rebuilt
        # after every fit and lazily on first predict (see :meth:`freeze`).
        self._frozen: Optional[
            Tuple[List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]], Optional[np.ndarray]]
        ] = None
        #: monotonic weight-change counter, bumped by :meth:`fit` and
        #: :meth:`freeze`; serving caches fold it into their tokens so a
        #: merger re-trained behind a fitted SCCF's back invalidates every
        #: fused score/recommendation entry.
        self.generation = 0
        # Remembers that freeze() met a module it cannot mirror, so predict()
        # settles on the tensor path instead of retrying (and bumping the
        # generation) on every call.
        self._freeze_failed = False
        self.loss_history: List[float] = []
        self.validation_history: List[float] = []

    def _trainable_parameters(self) -> List[nn.Parameter]:
        parameters = list(self.network.parameters())
        if self.score_skip:
            parameters.append(self.skip_weights)
        return parameters

    def _forward_tensor(self, features: nn.Tensor) -> nn.Tensor:
        """Fused logits for a feature matrix (differentiable path)."""

        logits = self.network(features).reshape(-1)
        if self.score_skip:
            score_block = features[:, self.input_dim - 2:]
            logits = logits + (score_block * self.skip_weights).sum(axis=1)
        return logits

    # ------------------------------------------------------------------ #
    # feature construction (eq. 16)
    # ------------------------------------------------------------------ #
    def build_features(
        self,
        user_id: int,
        user_embedding: np.ndarray,
        item_embeddings: np.ndarray,
        candidate_items: np.ndarray,
        ui_scores: np.ndarray,
        uu_scores: np.ndarray,
    ) -> CandidateFeatures:
        """Assemble ``[m_u ⊕ q_i ⊕ r̃^UI ⊕ r̃^UU]`` for one user's candidates."""

        candidate_items = np.asarray(candidate_items, dtype=np.int64)
        if candidate_items.ndim != 1 or len(candidate_items) == 0:
            raise ValueError("candidate_items must be a non-empty 1-d array")
        ui_candidate = np.asarray(ui_scores, dtype=np.float64)[candidate_items]
        uu_candidate = np.asarray(uu_scores, dtype=np.float64)[candidate_items]
        ui_norm = normalize_scores(ui_candidate)
        uu_norm = normalize_scores(uu_candidate)

        user_block = np.tile(np.asarray(user_embedding, dtype=np.float64), (len(candidate_items), 1))
        item_block = np.asarray(item_embeddings, dtype=np.float64)[candidate_items]
        features = np.concatenate(
            [user_block, item_block, ui_norm[:, None], uu_norm[:, None]], axis=1
        )
        return CandidateFeatures(
            user_id=user_id,
            candidate_items=candidate_items,
            features=features,
            ui_scores=ui_candidate,
            uu_scores=uu_candidate,
        )

    # ------------------------------------------------------------------ #
    # training (eq. 17)
    # ------------------------------------------------------------------ #
    def fit(self, examples: Sequence[Tuple[CandidateFeatures, int]]) -> "IntegratingMLP":
        """Train on ``(features, target_item)`` pairs.

        Pairs whose target item is absent from the candidate set are skipped,
        matching the paper: "If i⁺_u ∉ C^u_I, we will not calculate its two
        preference scores. Therefore, we do not use this instance to train our
        integrating model."

        Implementation note: the paper trains the integrating network with a
        pointwise sigmoid cross-entropy over all candidates (eq. 17).  With
        millions of Taobao users that objective has plenty of signal; at the
        scaled-down size of this reproduction it is dominated by the many
        easy negatives and converges too slowly to beat the UI ordering.  We
        therefore use the *listwise* sampled-softmax form of the same
        discrimination task: each user contributes one softmax over
        ``[positive, sampled negatives]`` rows from her candidate set.  The
        features, the network and the positive/negative definitions are
        unchanged; only the loss aggregation differs (documented in
        EXPERIMENTS.md).  The full candidate sets of the held-out validation
        users drive early stopping, mirroring the paper's "randomly split ten
        percent of the whole users as the validation set to tune the
        integrating model".
        """

        self.generation += 1
        usable: List[Tuple[np.ndarray, int]] = []
        for features, target in examples:
            position = np.where(features.candidate_items == target)[0]
            if len(position) == 0:
                continue
            usable.append((features.features, int(position[0])))
        if not usable:
            # Nothing to learn from (e.g. extremely small candidate lists);
            # the untrained network then behaves as a random-ish but harmless
            # re-ranker and SCCF falls back towards its UI ordering.
            return self

        self._rng.shuffle(usable)
        num_validation = int(len(usable) * self.validation_fraction)
        validation = usable[:num_validation]
        training = usable[num_validation:] or usable

        optimizer = nn.Adam(
            self._trainable_parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
        )
        # Calibrate the skip interpolation before gradient training: the
        # relative usefulness of the user-based component varies by dataset
        # and base model (strong for FISM, weaker for SASRec in the paper's
        # Table II), so the initial weight on r̃^UU is chosen by the same
        # validation criterion used for early stopping.  The selected state is
        # the state to beat — gradient steps are only kept if they improve it.
        if self.score_skip and validation:
            candidate_weights = [np.array([1.0, w]) for w in (0.0, 0.25, 0.5, 0.75, 1.0)]
            scores = []
            for weights in candidate_weights:
                self.skip_weights.data = weights.copy()
                scores.append(self._validation_loss(validation))
            self.skip_weights.data = candidate_weights[int(np.argmin(scores))].copy()
        best_validation = self._validation_loss(validation)
        self.validation_history.append(best_validation)
        best_state = (self.network.state_dict(), self.skip_weights.data.copy())
        epochs_without_improvement = 0
        users_per_step = max(1, self.batch_size // (self.negatives_per_positive + 1))

        for _ in range(self.num_epochs):
            self.network.train()
            self._rng.shuffle(training)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(training), users_per_step):
                chunk = training[start:start + users_per_step]
                feature_matrix = self._sample_listwise_rows(chunk)
                list_size = self.negatives_per_positive + 1
                logits = self._forward_tensor(nn.Tensor(feature_matrix)).reshape(len(chunk), list_size)
                log_probabilities = F.log_softmax(logits, axis=-1)
                # Column 0 of every block is the positive row.
                loss = -(log_probabilities[:, 0:1]).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))

            validation_loss = self._validation_loss(validation)
            self.validation_history.append(validation_loss)
            if validation_loss < best_validation - 1e-6:
                best_validation = validation_loss
                best_state = (self.network.state_dict(), self.skip_weights.data.copy())
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break  # early stopping, as in the paper
        if best_state is not None:
            self.network.load_state_dict(best_state[0])
            self.skip_weights.data = best_state[1]
        self.network.eval()
        self.freeze()
        return self

    def _sample_listwise_rows(self, chunk: List[Tuple[np.ndarray, int]]) -> np.ndarray:
        """Stack fixed-size ``[positive, negatives...]`` blocks for each user.

        Every block has exactly ``negatives_per_positive + 1`` rows (negatives
        are re-sampled with replacement when a candidate set is small), so the
        batch reshapes cleanly into per-user softmax groups.
        """

        blocks: List[np.ndarray] = []
        for feature_matrix, positive_row in chunk:
            num_candidates = feature_matrix.shape[0]
            negative_pool = np.delete(np.arange(num_candidates), positive_row)
            if len(negative_pool) == 0:
                negative_pool = np.asarray([positive_row])
            replace = len(negative_pool) < self.negatives_per_positive
            chosen = self._rng.choice(negative_pool, size=self.negatives_per_positive, replace=replace)
            rows = np.concatenate([[positive_row], chosen])
            blocks.append(feature_matrix[rows])
        return np.concatenate(blocks, axis=0)

    def _validation_loss(self, validation: List[Tuple[np.ndarray, int]]) -> float:
        """Early-stopping criterion: negative mean DCG gain of the positive row.

        For each held-out validation user the positive's rank within her full
        candidate set is converted to the NDCG-style gain ``1 / log2(rank+1)``
        and the criterion is the negated mean (lower is better).  This
        position-aware criterion tracks the reported metrics much more closely
        than a likelihood would: it is dominated by how the fused scores order
        the *top* of each candidate list rather than by how badly the hardest
        positives are ranked.
        """

        if not validation:
            return float(self.loss_history[-1]) if self.loss_history else 0.0
        self.network.eval()
        gains: List[float] = []
        with nn.no_grad():
            for feature_matrix, positive_row in validation:
                logits = self._forward_tensor(nn.Tensor(feature_matrix)).data
                rank = int(np.sum(logits >= logits[positive_row]))
                gains.append(1.0 / np.log2(rank + 1.0))
        return -float(np.mean(gains))

    # ------------------------------------------------------------------ #
    # fused scoring (eq. 15)
    # ------------------------------------------------------------------ #
    def freeze(self, _lazy: bool = False) -> bool:
        """Snapshot the weights for the pure-NumPy serving forward.

        Serving never needs gradients, yet :meth:`_forward_tensor` still
        builds an ``nn.Tensor`` autograd graph per request; on the small
        candidate matrices of a single user that graph construction dominates
        the arithmetic.  ``freeze`` copies the layer weights (and the skip
        weights) into plain arrays that :meth:`predict` runs through
        :meth:`_forward_frozen` instead.  Returns ``False`` — leaving the
        tensor path in charge — when the network contains a module the frozen
        forward does not know (a custom activation).

        The snapshot is rebuilt at the end of every :meth:`fit`; call
        ``freeze`` again (or :meth:`thaw`) after mutating weights by hand.
        Either way the ``generation`` counter advances, so serving caches
        drop entries computed under the old weights.  (``_lazy`` marks the
        snapshot :meth:`predict` builds on first use: the weights are
        unchanged since the last generation bump, and a mid-request bump
        would store that request's cache entries under an already-stale
        token.)
        """

        if not _lazy:
            self.generation += 1
        layers: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]] = []
        for module in self.network.network:
            if isinstance(module, nn.Linear):
                bias = None if module.bias is None else module.bias.data.copy()
                layers.append(("linear", module.weight.data.copy(), bias))
            elif isinstance(module, nn.ReLU):
                layers.append(("relu", None, None))
            elif isinstance(module, nn.Sigmoid):
                layers.append(("sigmoid", None, None))
            elif isinstance(module, nn.Tanh):
                layers.append(("tanh", None, None))
            elif isinstance(module, nn.Dropout):
                continue  # inactive in eval mode — nothing to snapshot
            else:
                self._frozen = None
                self._freeze_failed = True
                return False
        skip = self.skip_weights.data.copy() if self.score_skip else None
        self._frozen = (layers, skip)
        self._freeze_failed = False
        return True

    def thaw(self) -> None:
        """Drop the frozen snapshot; :meth:`predict` re-freezes lazily.

        Like :meth:`freeze`, advances the ``generation`` counter: thaw is a
        documented hook after hand-mutating weights, and a cache hit would
        otherwise short-circuit the lazy re-freeze that records the change.
        """

        self.generation += 1
        self._frozen = None
        self._freeze_failed = False

    def _forward_frozen(self, features: np.ndarray) -> np.ndarray:
        """Pure-NumPy mirror of :meth:`_forward_tensor` over the snapshot.

        Runs the same operations in the same order on the same float64
        arrays, so outputs match the tensor path to float precision without
        constructing any autograd graph.
        """

        layers, skip = self._frozen
        x = np.asarray(features, dtype=np.float64)
        for kind, weight, bias in layers:
            if kind == "linear":
                x = x @ weight
                if bias is not None:
                    x = x + bias
            elif kind == "relu":
                x = np.maximum(x, 0.0)
            elif kind == "sigmoid":
                # Mirror Tensor.sigmoid exactly, including its overflow clip.
                x = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
            else:
                x = np.tanh(x)
        logits = x.reshape(-1)
        if skip is not None:
            score_block = np.asarray(features, dtype=np.float64)[:, self.input_dim - 2:]
            logits = logits + (score_block * skip).sum(axis=1)
        return logits

    # ------------------------------------------------------------------ #
    # snapshot persistence
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """Serializable state tree for :mod:`repro.core.snapshot`.

        Covers the trained weights (network + skip path), every constructor
        hyperparameter, the ``generation`` counter, and whether a frozen
        serving snapshot was active — :meth:`restore_state` rebuilds the
        frozen NumPy fast path from the restored weights.
        """

        arrays = {
            f"network.{name}": value for name, value in self.network.state_dict().items()
        }
        arrays["skip_weights"] = self.skip_weights.data.copy()
        return {
            "meta": {
                "embedding_dim": self.embedding_dim,
                "hidden_dims": list(self.hidden_dims),
                "dropout": self.dropout,
                "learning_rate": self.learning_rate,
                "weight_decay": self.weight_decay,
                "num_epochs": self.num_epochs,
                "batch_size": self.batch_size,
                "negatives_per_positive": self.negatives_per_positive,
                "validation_fraction": self.validation_fraction,
                "patience": self.patience,
                "score_skip": self.score_skip,
                "seed": self.seed,
                "generation": self.generation,
                "frozen": self._frozen is not None,
            },
            "arrays": arrays,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "IntegratingMLP":
        """Rebuild a trained merger from :meth:`snapshot_state` output.

        The restored instance serves bit-identically: the exact saved
        weights land in the network, the skip path, and (when the saved
        merger was frozen) a rebuilt frozen snapshot, without bumping
        ``generation`` past its saved value.
        """

        meta = state["meta"]
        merger = cls(
            embedding_dim=int(meta["embedding_dim"]),
            hidden_dims=tuple(meta["hidden_dims"]),
            dropout=meta["dropout"],
            learning_rate=meta["learning_rate"],
            weight_decay=meta["weight_decay"],
            num_epochs=int(meta["num_epochs"]),
            batch_size=int(meta["batch_size"]),
            negatives_per_positive=int(meta["negatives_per_positive"]),
            validation_fraction=meta["validation_fraction"],
            patience=int(meta["patience"]),
            score_skip=bool(meta["score_skip"]),
            seed=int(meta["seed"]),
        )
        arrays = state["arrays"]
        merger.network.load_state_dict(
            {
                name[len("network."):]: value
                for name, value in arrays.items()
                if name.startswith("network.")
            }
        )
        merger.skip_weights.data = np.asarray(arrays["skip_weights"], dtype=np.float64).copy()
        merger.network.eval()
        if bool(meta["frozen"]):
            merger.freeze(_lazy=True)
        merger.generation = int(meta["generation"])
        return merger

    def predict(self, features: CandidateFeatures) -> np.ndarray:
        """Fused scores ``r̂^fi`` for one user's candidate items (same order).

        Serves through the frozen NumPy fast path (building it lazily on the
        first call); falls back to the differentiable tensor forward only
        when the network cannot be frozen.
        """

        if self._frozen is None and not self._freeze_failed:
            self.freeze(_lazy=True)
        if self._frozen is not None:
            return self._forward_frozen(features.features)
        self.network.eval()
        with nn.no_grad():
            logits = self._forward_tensor(nn.Tensor(features.features))
        return logits.data.copy()
