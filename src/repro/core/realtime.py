"""Real-time serving engine for SCCF (Section III-C2 and Table III).

A deployed candidate generator must react to every new click within
milliseconds.  :class:`RealTimeServer` maintains, per user:

* the live interaction history (training history plus streamed events),
* the current user embedding, refreshed by *inference* through the wrapped
  inductive UI model whenever a new event arrives,
* the neighbor index entry, updated in place so subsequent neighborhood
  queries see the new embedding.

Two ingestion routes are exposed:

* :meth:`RealTimeServer.observe` — the per-event hot path the paper times in
  Table III; it reports "inferring time" (the UI forward pass) and
  "identifying time" (the similarity search) separately so the latency
  benchmark can print the same rows as the paper.
* :meth:`RealTimeServer.observe_batch` — micro-batched ingestion: a whole
  slice of the click stream is coalesced per user, all touched users'
  embeddings are refreshed in one batched forward, the index rows are
  replaced in one vectorized write, and the neighborhoods are re-identified
  through one batched search.  ``observe`` is ``observe_batch`` with a batch
  of one, so the two paths cannot drift.

:class:`EventBuffer` sits in front of the server and turns an event-at-a-time
producer (a clickstream, a message queue consumer) into micro-batches,
flushing automatically every ``flush_size`` events.

Cold-start users streamed in at serve time are *added* to the neighborhood
pool (the index grows) instead of being silently excluded, so a brand-new
user becomes retrievable as other users' neighbor after her first click.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import DEFAULT_RETRAIN_THRESHOLD, search_batch
from ..data.datasets import RecDataset
from ..models.base import exclude_seen_items
from .sccf import SCCF, _NEG_INF

__all__ = ["LatencyBreakdown", "MaintenanceReport", "RealTimeServer", "EventBuffer"]


@dataclass
class LatencyBreakdown:
    """Timing of one ingestion call (milliseconds).

    For the per-event path this is one event's breakdown; for a micro-batch
    flush it is the total over the whole batch, with ``num_events`` recording
    how many events the batch coalesced (so per-event averages stay
    comparable across the two paths).
    """

    inferring_ms: float
    identifying_ms: float
    num_events: int = 1

    @property
    def total_ms(self) -> float:
        return self.inferring_ms + self.identifying_ms


@dataclass
class MaintenanceReport:
    """Outcome of one :meth:`RealTimeServer.maintain` pass.

    ``supported`` is ``False`` when the neighbor index has no maintenance
    surface (e.g. a plain brute-force index — nothing to re-cluster);
    imbalance fields are then ``None``.
    """

    supported: bool
    retrained: bool = False
    imbalance_before: Optional[float] = None
    imbalance_after: Optional[float] = None
    threshold: Optional[float] = None
    duration_ms: float = 0.0


@dataclass
class _UserState:
    history: List[int] = field(default_factory=list)
    embedding: Optional[np.ndarray] = None


class RealTimeServer:
    """Streaming wrapper that keeps SCCF's user state fresh event by event.

    Parameters
    ----------
    sccf:
        A fitted :class:`~repro.core.sccf.SCCF` instance.
    dataset:
        The dataset the model was fitted on; its training histories seed the
        per-user state.
    latency_window:
        Number of most recent ingestion breakdowns kept for
        :meth:`average_latency`.  A long-running server observes an unbounded
        stream, so the window is bounded (a plain list would be a memory
        leak).
    """

    def __init__(self, sccf: SCCF, dataset: RecDataset, latency_window: int = 4096) -> None:
        if not getattr(sccf, "_fitted", False):
            raise ValueError("SCCF must be fitted before serving")
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self.sccf = sccf
        self.num_items = dataset.num_items
        self._states: Dict[int, _UserState] = {}
        for user, sequence in dataset.train.user_sequences().items():
            self._states[user] = _UserState(history=list(sequence))
        self.latencies: Deque[LatencyBreakdown] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def observe(self, user_id: int, item_id: int) -> LatencyBreakdown:
        """Ingest one new interaction and refresh the user's neighborhood state.

        Returns the latency breakdown of the two real-time steps.  The
        neighborhood *query* itself (identifying similar users) is measured
        here because the paper's Table III reports "identifying time" — the
        cost of finding the β neighbors with the refreshed embedding.  This
        is :meth:`observe_batch` with a batch of one.
        """

        breakdown = self.observe_batch([(user_id, item_id)])
        assert breakdown is not None  # non-empty batch always returns a breakdown
        return breakdown

    def observe_batch(
        self, events: Sequence[Tuple[int, int]]
    ) -> Optional[LatencyBreakdown]:
        """Ingest a micro-batch of ``(user_id, item_id)`` events at once.

        Events are coalesced per user (preserving each user's arrival order),
        then every touched user's state is refreshed with batched kernels:

        1. one ``infer_user_embeddings_batch`` forward over the touched users,
        2. one batched index row replacement (``update_users``), growing the
           index first for users streamed in beyond the fitted id range
           (``add_users``),
        3. one batched neighborhood search over the fresh embeddings.

        The final state is identical to feeding the same events one at a time
        through :meth:`observe` — only the amortized cost differs.  Returns
        the batch's latency breakdown, or ``None`` for an empty batch.
        """

        # The cold-start grow path backs streamed ids with a dense block, so a
        # single huge id would allocate unboundedly much memory; reject it
        # here, before any state is touched.
        max_user_id = self.sccf.neighborhood.num_users + self.sccf.neighborhood.max_user_growth
        validated: List[Tuple[int, int]] = []
        for user_id, item_id in events:
            user_id, item_id = int(user_id), int(item_id)
            if user_id < 0:
                raise ValueError("user_id must be non-negative")
            if user_id >= max_user_id:
                raise ValueError(
                    "user_id too far beyond the fitted range "
                    f"(cold-start growth capped at {self.sccf.neighborhood.max_user_growth})"
                )
            if not 0 <= item_id < self.num_items:
                raise ValueError("item_id out of range")
            validated.append((user_id, item_id))
        if not validated:
            return None

        touched: List[int] = []
        seen: set = set()
        for user_id, item_id in validated:
            self._states.setdefault(user_id, _UserState()).history.append(item_id)
            if user_id not in seen:
                seen.add(user_id)
                touched.append(user_id)
        histories = [self._states[user].history for user in touched]

        start = time.perf_counter()
        embeddings = np.asarray(
            self.sccf.ui_model.infer_user_embeddings_batch(histories), dtype=np.float64
        )
        inferring_ms = (time.perf_counter() - start) * 1000.0
        for row, user in enumerate(touched):
            self._states[user].embedding = embeddings[row]

        # Keep the index in sync so these users can serve as others' neighbors;
        # cold-start users beyond the fitted range grow the pool.
        neighborhood = self.sccf.neighborhood
        pool_size = neighborhood.num_users
        fresh = [row for row, user in enumerate(touched) if user >= pool_size]
        known = [row for row, user in enumerate(touched) if user < pool_size]
        if fresh:
            neighborhood.add_users(
                [touched[row] for row in fresh],
                self.sccf.ui_model,
                [histories[row] for row in fresh],
                embeddings=embeddings[fresh],
            )
        if known:
            neighborhood.update_users(
                [touched[row] for row in known],
                self.sccf.ui_model,
                [histories[row] for row in known],
                embeddings=embeddings[known],
            )

        start = time.perf_counter()
        search_batch(
            neighborhood.index,
            embeddings,
            neighborhood.num_neighbors,
            exclude_per_query=[np.asarray([user], dtype=np.int64) for user in touched],
        )
        identifying_ms = (time.perf_counter() - start) * 1000.0

        breakdown = LatencyBreakdown(
            inferring_ms=inferring_ms,
            identifying_ms=identifying_ms,
            num_events=len(validated),
        )
        self.latencies.append(breakdown)
        return breakdown

    # ------------------------------------------------------------------ #
    # index maintenance (off the hot path)
    # ------------------------------------------------------------------ #
    def maintain(self, imbalance_threshold: Optional[float] = None) -> MaintenanceReport:
        """Re-cluster the neighbor index if streamed adds have skewed it.

        Streaming :meth:`observe` appends cold-start users to whichever IVF
        cells the *frozen* centroids pick, so a long-running server degrades
        toward a few giant cells.  This hook is meant to run off the hot path
        (a periodic timer, an idle worker): it checks the index's
        ``imbalance()`` statistic and triggers a full ``retrain()`` when it
        exceeds the threshold — ``imbalance_threshold`` if given, else the
        index's own ``retrain_threshold``, else
        :data:`~repro.ann.ivf.DEFAULT_RETRAIN_THRESHOLD`.  Retraining
        preserves ids and vectors, so serving results only change in which
        cells a query probes.  No-op (``supported=False``) for indexes
        without a maintenance surface, e.g. brute force.
        """

        index = self.sccf.neighborhood.index
        if not (hasattr(index, "imbalance") and hasattr(index, "retrain")):
            return MaintenanceReport(supported=False)
        if imbalance_threshold is None:
            imbalance_threshold = getattr(index, "retrain_threshold", None)
        if imbalance_threshold is None:
            imbalance_threshold = DEFAULT_RETRAIN_THRESHOLD
        start = time.perf_counter()
        before = index.imbalance()
        retrained = before > imbalance_threshold
        if retrained:
            index.retrain()
        return MaintenanceReport(
            supported=True,
            retrained=retrained,
            imbalance_before=before,
            imbalance_after=index.imbalance() if retrained else before,
            threshold=imbalance_threshold,
            duration_ms=(time.perf_counter() - start) * 1000.0,
        )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def recommend(self, user_id: int, k: int = 50, exclude_seen: bool = True) -> List[int]:
        """Top-``k`` fused candidates for the user's *current* (streamed) history."""

        if k <= 0:
            return []
        state = self._states.get(user_id, _UserState())
        scores = self.sccf.score_items(user_id, history=state.history)
        # In "sccf" mode non-candidates carry the finite _NEG_INF sentinel;
        # mask them to -inf so they can never pad the result list.
        scores = np.where(scores > _NEG_INF, scores, -np.inf)
        if exclude_seen:
            scores = exclude_seen_items(scores, state.history)
        k = min(k, self.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        ordered = top[np.argsort(-scores[top], kind="stable")]
        return [int(item) for item in ordered if np.isfinite(scores[item])]

    def history(self, user_id: int) -> List[int]:
        return list(self._states.get(user_id, _UserState()).history)

    def average_latency(self) -> Optional[LatencyBreakdown]:
        """Per-event mean latency over the bounded window (Table III rows).

        Batch entries are weighted by the number of events they coalesced, so
        per-event and micro-batched ingestion report comparable numbers.
        """

        if not self.latencies:
            return None
        total_events = sum(entry.num_events for entry in self.latencies)
        return LatencyBreakdown(
            inferring_ms=float(sum(entry.inferring_ms for entry in self.latencies)) / total_events,
            identifying_ms=float(sum(entry.identifying_ms for entry in self.latencies))
            / total_events,
        )


class EventBuffer:
    """Coalesces streamed ``(user, item)`` events into micro-batch flushes.

    Producers push events one at a time; the buffer validates them eagerly
    (so a malformed event fails at ``push``, not inside a later flush of
    unrelated events) and hands the server one
    :meth:`RealTimeServer.observe_batch` call per ``flush_size`` events.
    Usable as a context manager — leftover events are flushed on exit:

    >>> with EventBuffer(server, flush_size=256) as buffer:   # doctest: +SKIP
    ...     for user, item in stream:
    ...         buffer.push(user, item)
    """

    def __init__(self, server: RealTimeServer, flush_size: int = 256) -> None:
        if flush_size <= 0:
            raise ValueError("flush_size must be positive")
        self.server = server
        self.flush_size = flush_size
        self._events: List[Tuple[int, int]] = []

    def push(self, user_id: int, item_id: int) -> Optional[LatencyBreakdown]:
        """Buffer one event; returns the flush breakdown if this push flushed."""

        user_id, item_id = int(user_id), int(item_id)
        if user_id < 0:
            raise ValueError("user_id must be non-negative")
        neighborhood = self.server.sccf.neighborhood
        if user_id >= neighborhood.num_users + neighborhood.max_user_growth:
            raise ValueError(
                "user_id too far beyond the fitted range "
                f"(cold-start growth capped at {neighborhood.max_user_growth})"
            )
        if not 0 <= item_id < self.server.num_items:
            raise ValueError("item_id out of range")
        self._events.append((user_id, item_id))
        if len(self._events) >= self.flush_size:
            return self.flush()
        return None

    def flush(self) -> Optional[LatencyBreakdown]:
        """Drain the buffer through ``observe_batch``; ``None`` when empty."""

        if not self._events:
            return None
        events, self._events = self._events, []
        return self.server.observe_batch(events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def pending(self) -> List[Tuple[int, int]]:
        """A copy of the not-yet-flushed events."""

        return list(self._events)

    def __enter__(self) -> "EventBuffer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            self.flush()
