"""Real-time serving engine for SCCF (Section III-C2 and Table III).

A deployed candidate generator must react to every new click within
milliseconds.  :class:`RealTimeServer` maintains, per user:

* the live interaction history (training history plus streamed events),
* the current user embedding, refreshed by *inference* through the wrapped
  inductive UI model whenever a new event arrives,
* the neighbor index entry, updated in place so subsequent neighborhood
  queries see the new embedding.

:meth:`observe` is the hot path the paper times in Table III; it reports the
two components separately — "inferring time" (the UI forward pass) and
"identifying time" (the similarity search) — so the latency benchmark can
print the same rows as the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.datasets import RecDataset
from ..models.base import exclude_seen_items
from .sccf import SCCF

__all__ = ["LatencyBreakdown", "RealTimeServer"]


@dataclass
class LatencyBreakdown:
    """Per-event timing of the real-time update path (milliseconds)."""

    inferring_ms: float
    identifying_ms: float

    @property
    def total_ms(self) -> float:
        return self.inferring_ms + self.identifying_ms


@dataclass
class _UserState:
    history: List[int] = field(default_factory=list)
    embedding: Optional[np.ndarray] = None


class RealTimeServer:
    """Streaming wrapper that keeps SCCF's user state fresh event by event."""

    def __init__(self, sccf: SCCF, dataset: RecDataset) -> None:
        if not getattr(sccf, "_fitted", False):
            raise ValueError("SCCF must be fitted before serving")
        self.sccf = sccf
        self.num_items = dataset.num_items
        self._states: Dict[int, _UserState] = {}
        for user, sequence in dataset.train.user_sequences().items():
            self._states[user] = _UserState(history=list(sequence))
        self.latencies: List[LatencyBreakdown] = []

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def observe(self, user_id: int, item_id: int) -> LatencyBreakdown:
        """Ingest one new interaction and refresh the user's neighborhood state.

        Returns the latency breakdown of the two real-time steps.  The
        neighborhood *query* itself (identifying similar users) is measured
        here because the paper's Table III reports "identifying time" — the
        cost of finding the β neighbors with the refreshed embedding.
        """

        if not 0 <= item_id < self.num_items:
            raise ValueError("item_id out of range")
        state = self._states.setdefault(user_id, _UserState())
        state.history.append(item_id)

        start = time.perf_counter()
        embedding = self.sccf.ui_model.infer_user_embedding(state.history)
        inferring_ms = (time.perf_counter() - start) * 1000.0

        state.embedding = embedding
        if 0 <= user_id < self.sccf.neighborhood.num_users:
            # keep the index in sync so this user can serve as others' neighbor
            self.sccf.neighborhood.update_user(user_id, self.sccf.ui_model, state.history)

        start = time.perf_counter()
        self.sccf.neighborhood.neighbors(embedding, exclude_user=user_id)
        identifying_ms = (time.perf_counter() - start) * 1000.0

        breakdown = LatencyBreakdown(inferring_ms=inferring_ms, identifying_ms=identifying_ms)
        self.latencies.append(breakdown)
        return breakdown

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def recommend(self, user_id: int, k: int = 50, exclude_seen: bool = True) -> List[int]:
        """Top-``k`` fused candidates for the user's *current* (streamed) history."""

        state = self._states.get(user_id, _UserState())
        scores = self.sccf.score_items(user_id, history=state.history)
        if exclude_seen:
            scores = exclude_seen_items(scores, state.history)
        k = min(k, self.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        ordered = top[np.argsort(-scores[top], kind="stable")]
        return [int(item) for item in ordered if np.isfinite(scores[item])]

    def history(self, user_id: int) -> List[int]:
        return list(self._states.get(user_id, _UserState()).history)

    def average_latency(self) -> Optional[LatencyBreakdown]:
        """Mean latency breakdown over all observed events (Table III rows)."""

        if not self.latencies:
            return None
        return LatencyBreakdown(
            inferring_ms=float(np.mean([l.inferring_ms for l in self.latencies])),
            identifying_ms=float(np.mean([l.identifying_ms for l in self.latencies])),
        )
