"""Real-time serving engine for SCCF (Section III-C2 and Table III).

A deployed candidate generator must react to every new click within
milliseconds.  :class:`RealTimeServer` maintains, per user:

* the live interaction history (training history plus streamed events),
* the current user embedding, refreshed by *inference* through the wrapped
  inductive UI model whenever a new event arrives,
* the neighbor index entry, updated in place so subsequent neighborhood
  queries see the new embedding.

Two ingestion routes are exposed:

* :meth:`RealTimeServer.observe` — the per-event hot path the paper times in
  Table III; it reports "inferring time" (the UI forward pass) and
  "identifying time" (the similarity search) separately so the latency
  benchmark can print the same rows as the paper.
* :meth:`RealTimeServer.observe_batch` — micro-batched ingestion: a whole
  slice of the click stream is coalesced per user, all touched users'
  embeddings are refreshed in one batched forward, the index rows are
  replaced in one vectorized write, and the neighborhoods are re-identified
  through one batched search.  ``observe`` is ``observe_batch`` with a batch
  of one, so the two paths cannot drift.

Serving mirrors ingestion: :meth:`RealTimeServer.recommend_batch` is the
canonical read path — a whole *window* of concurrent requests is validated
up front, probed against the serving cache per request, and the remaining
distinct users are scored through one
:meth:`~repro.core.sccf.SCCF.score_items_batch` call.
:meth:`RealTimeServer.recommend` is ``recommend_batch`` with a batch of one,
so the live and coalesced paths cannot drift (the same batch-of-one rule the
ingest side follows, machine-enforced by repolint's RL003).

:class:`EventBuffer` sits in front of the server and turns an event-at-a-time
producer (a clickstream, a message queue consumer) into micro-batches,
flushing automatically every ``flush_size`` events.  The *request*-side
equivalent for live traffic — concurrent callers coalesced into
``recommend_batch``/``observe_batch`` windows — is
:class:`repro.serving.AsyncFrontend`.

Cold-start users streamed in at serve time are *added* to the neighborhood
pool (the index grows) instead of being silently excluded, so a brand-new
user becomes retrievable as other users' neighbor after her first click.
"""

from __future__ import annotations

import itertools
import numbers
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ann import DEFAULT_RETRAIN_THRESHOLD, search_batch
from ..data.datasets import RecDataset
from ..models.base import exclude_seen_items
from .cache import MISS
from .sccf import _NEG_INF, SCCF
from .snapshot import read_snapshot, write_snapshot
from .wal import (
    WALError,
    WriteAheadLog,
    decode_payload,
    encode_events,
    encode_maintain,
    replay_wal,
)

__all__ = [
    "HealthReport",
    "LatencyBreakdown",
    "MaintenanceReport",
    "MaintenanceScheduler",
    "RealTimeServer",
    "RecommendRequest",
    "EventBuffer",
]


def _as_id(value: object, name: str) -> int:
    """Coerce a request-supplied id to ``int``, rejecting junk with a clear error.

    Request ids arrive from outside the process (JSON payloads, CSV streams),
    where ``float("nan")``, ``7.5`` or ``"7"`` are one sloppy producer away.
    A bare ``int(value)`` silently truncates 7.5 to 7 and raises a cryptic
    ``cannot convert float NaN to integer`` deep in numpy for NaN — so ids
    are vetted here, at the request boundary: true integers (including numpy
    integer scalars) pass through, integral-valued floats are accepted
    (``7.0`` → 7), and everything else — NaN, infinities, fractional floats,
    strings, None — fails with a ``ValueError`` naming the offending field.
    """

    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"{name} must be an integer, got {value!r}")
        if not value.is_integer():
            raise ValueError(f"{name} must be an integer, got non-integral {value!r}")
        return int(value)
    raise ValueError(f"{name} must be an integer, got {type(value).__name__} {value!r}")


@dataclass
class HealthReport:
    """One self-contained liveness snapshot of a serving stack.

    Produced by :meth:`RealTimeServer.health` — the signal a load balancer
    or orchestrator polls.  ``healthy`` is the headline bit: True when every
    shard worker is live (always True for unsharded/thread-backed stacks,
    which have no workers to lose) *and* no shard has been tombstoned.  The
    counters are lifetime totals; poll twice and difference them for rates.
    """

    healthy: bool
    #: per-shard liveness detail (empty for indexes without workers)
    shards: List[object] = field(default_factory=list)
    workers_alive: int = 0
    restarts_total: int = 0
    #: index-level: searches answered from a strict subset of shards
    degraded_requests: int = 0
    #: server-level: recommends whose scoring ran degraded (not cached)
    served_degraded: int = 0
    #: recommends answered from a stale cache entry after scoring failed
    served_stale: int = 0
    #: recommends whose scoring raised (answered stale or empty instead)
    recommend_failures: int = 0
    #: recommends that finished after their deadline
    deadline_misses: int = 0
    #: p50/p99 over the bounded per-request recommend window, in ms (``None``
    #: before the first sample).  For requests admitted through the async
    #: front-end the samples *include queue and window wait*, so these are
    #: the honest SLO numbers an operator alarms on, not per-batch averages.
    recommend_p50_ms: Optional[float] = None
    recommend_p99_ms: Optional[float] = None
    #: p50/p99 over the bounded per-request observe window, in ms — each
    #: event's admission-to-flushed wall time, queue wait included
    observe_p50_ms: Optional[float] = None
    observe_p99_ms: Optional[float] = None
    maintenance_passes: int = 0
    maintenance_failures: int = 0
    #: stringified failure of the most recent maintenance pass (None after a
    #: success) — how an operator sees a contained shadow-retrain failure
    last_maintenance_error: Optional[str] = None
    #: serving-cache counters (None when no cache is attached)
    cache: Optional[object] = None
    #: journaled records not yet covered by a snapshot — the replay length a
    #: crash right now would pay (None when no WAL is attached)
    wal_lag: Optional[int] = None
    #: fsyncs the journal has issued — the observable group-commit cadence
    wal_fsyncs: Optional[int] = None
    #: journal fsyncs that failed (each one surfaced as a WALError)
    wal_fsync_failures: Optional[int] = None
    #: full :class:`~repro.core.wal.WALStats` (None when no WAL is attached)
    wal: Optional[object] = None


@dataclass
class LatencyBreakdown:
    """Timing of one ingestion call (milliseconds).

    For the per-event path this is one event's breakdown; for a micro-batch
    flush it is the total over the whole batch, with ``num_events`` recording
    how many events the batch coalesced (so per-event averages stay
    comparable across the two paths).
    """

    inferring_ms: float
    identifying_ms: float
    num_events: int = 1

    @property
    def total_ms(self) -> float:
        return self.inferring_ms + self.identifying_ms


@dataclass
class MaintenanceReport:
    """Outcome of one :meth:`RealTimeServer.maintain` pass.

    ``supported`` is ``False`` when the neighbor index has no maintenance
    surface (e.g. a plain brute-force index — nothing to re-cluster);
    imbalance fields are then ``None``.  ``prefilled_users`` counts how many
    head users had their serving-cache entries re-warmed after a retrain
    (0 when nothing retrained, no cache is attached, or prefill was off).

    ``shadow`` records whether the retrain ran blue/green — cloned into a
    shadow index and atomically published — rather than in place;
    ``journaled_mutations`` counts the mutations that arrived while the
    shadow was building and were replayed onto it before the swap.
    ``error`` carries the stringified failure of a shadow pass that was
    contained (the live index kept serving, untouched).
    """

    supported: bool
    retrained: bool = False
    imbalance_before: Optional[float] = None
    imbalance_after: Optional[float] = None
    threshold: Optional[float] = None
    duration_ms: float = 0.0
    prefilled_users: int = 0
    shadow: bool = False
    journaled_mutations: int = 0
    error: Optional[str] = None


@dataclass
class _ShadowBuild:
    """Book-keeping for one in-flight background shadow retrain."""

    shadow: Any
    imbalance_before: float
    threshold: float
    started: float
    thread: Optional[threading.Thread] = None
    error: Optional[BaseException] = None


@dataclass
class _UserState:
    history: List[int] = field(default_factory=list)
    embedding: Optional[np.ndarray] = None


@dataclass
class RecommendRequest:
    """One serving request for :meth:`RealTimeServer.recommend_batch`.

    ``start`` is the ``time.perf_counter()`` timestamp at which the request
    was *admitted* — a queueing front-end stamps its enqueue time here, so
    the recorded latency and the deadline check both include queue and
    window wait.  ``None`` means "admitted now".  ``deadline_ms=None`` falls
    back to the server's ``default_deadline_ms``.
    """

    user_id: int
    k: int = 50
    exclude_seen: bool = True
    deadline_ms: Optional[float] = None
    start: Optional[float] = None


@dataclass
class _PreparedRequest:
    """A validated :class:`RecommendRequest` with defaults resolved."""

    user_id: int
    k: int
    exclude_seen: bool
    deadline_ms: Optional[float]
    start: float


def _window_percentiles(
    window: Deque[float],
) -> Tuple[Optional[float], Optional[float]]:
    """(p50, p99) over a bounded latency window; ``(None, None)`` when empty."""

    if not window:
        return None, None
    values = np.asarray(window, dtype=np.float64)
    return float(np.percentile(values, 50)), float(np.percentile(values, 99))


class RealTimeServer:
    """Streaming wrapper that keeps SCCF's user state fresh event by event.

    Parameters
    ----------
    sccf:
        A fitted :class:`~repro.core.sccf.SCCF` instance.
    dataset:
        The dataset the model was fitted on; its training histories seed the
        per-user state.
    latency_window:
        Number of most recent ingestion breakdowns (and, separately, of
        recommend latencies) kept for the latency reports.  A long-running
        server observes an unbounded stream, so the windows are bounded (a
        plain list would be a memory leak).
    maintenance_every:
        When set, attach a :class:`MaintenanceScheduler` that calls
        :meth:`maintain` after every ``maintenance_every`` observed events,
        so a skewed IVF index is re-clustered without any caller-side timer.
    activity_window:
        Number of most recent requests (observes and recommends, per event)
        whose user ids are remembered for head-user statistics — the
        population :meth:`prefill_cache` draws the "most-frequent recent
        users" from.  Bounded like the latency windows.
    default_deadline_ms:
        Per-request serving deadline applied to every :meth:`recommend` that
        does not pass its own ``deadline_ms``.  A finished-but-late request
        is still returned (the work is already done — discarding it helps
        nobody) but counted in ``deadline_misses``, the signal an operator
        alarms on.  ``None`` (default) disables deadline tracking.
    wal_dir:
        When set, attach a :class:`~repro.core.wal.WriteAheadLog` over this
        directory and journal every ``observe_batch`` payload (and every
        retraining ``maintain`` pass) *before* applying it, so recovery is
        snapshot + journal replay — see :meth:`save_snapshot` /
        :meth:`load_snapshot` / :meth:`catch_up`.  ``None`` (default) keeps
        ingestion non-durable, exactly as before.
    wal_fsync:
        Durability policy for the attached journal — ``"always"``,
        ``"batch"`` or ``"interval"`` (ignored without ``wal_dir``).
    wal:
        A pre-constructed :class:`~repro.core.wal.WriteAheadLog` to attach
        instead (full control over batch size, interval, rotation);
        mutually exclusive with ``wal_dir``.
    """

    #: distinguishes servers sharing one SCCF in the cache's request keys —
    #: their streamed histories diverge while the shared version counters do
    #: not, so one server must never be served another's cached list
    _serials = itertools.count()

    def __init__(
        self,
        sccf: SCCF,
        dataset: RecDataset,
        latency_window: int = 4096,
        maintenance_every: Optional[int] = None,
        activity_window: int = 4096,
        default_deadline_ms: Optional[float] = None,
        wal_dir: Optional["str | Path"] = None,
        wal_fsync: str = "batch",
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        if not getattr(sccf, "_fitted", False):
            raise ValueError("SCCF must be fitted before serving")
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if activity_window <= 0:
            raise ValueError("activity_window must be positive")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        self.sccf = sccf
        self.default_deadline_ms = default_deadline_ms
        #: recommends whose scoring ran while the neighbor index was serving
        #: degraded (answered from surviving shards; never cached)
        self.served_degraded = 0
        #: recommends answered from a stale cache entry after scoring failed
        self.served_stale = 0
        #: recommends whose scoring raised (fell back to stale-or-empty)
        self.recommend_failures = 0
        #: recommends that finished after their deadline
        self.deadline_misses = 0
        self.num_items = dataset.num_items
        self._serial = next(RealTimeServer._serials)
        self._states: Dict[int, _UserState] = {}
        for user, sequence in dataset.train.user_sequences().items():
            self._states[user] = _UserState(history=list(sequence))
        self.latencies: Deque[LatencyBreakdown] = deque(maxlen=latency_window)
        #: per-call recommend latencies in ms — tracked separately from the
        #: ingestion breakdowns so a read-heavy workload's serving cost is
        #: never conflated with ingestion cost (it used to be: only observe
        #: recorded latencies, so ``average_latency`` reported ingestion cost
        #: as if it were the serving cost).
        self.recommend_latencies: Deque[float] = deque(maxlen=latency_window)
        #: per-event observe wall latencies in ms (admission → flushed) — the
        #: read path's ``recommend_latencies`` twin for the write path.  For
        #: direct ``observe``/``observe_batch`` calls each event's sample is
        #: the call's own wall time; the async front-end passes its enqueue
        #: timestamps (``request_starts``) so queue wait is included.
        self.observe_request_latencies: Deque[float] = deque(maxlen=latency_window)
        #: user ids of the most recent requests (observes + recommends) —
        #: the head-user population for post-retrain cache prefill
        self._recent_active: Deque[int] = deque(maxlen=activity_window)
        #: the most recent MaintenanceReport (success or contained failure)
        self.last_maintenance: Optional[MaintenanceReport] = None
        #: the in-flight background shadow retrain, if any
        self._shadow_build: Optional[_ShadowBuild] = None
        if wal is not None and wal_dir is not None:
            raise ValueError("pass either wal_dir or wal, not both")
        if wal is None and wal_dir is not None:
            wal = WriteAheadLog(Path(wal_dir), fsync=wal_fsync)
        #: the attached write-ahead journal (None: ingestion is not durable)
        self.wal = wal
        #: highest journal sequence whose effects this server's state holds.
        #: Plain construction assumes the in-memory state is current with the
        #: journal tail; :meth:`load_snapshot` rewinds it to the snapshot's
        #: covered sequence before replaying.
        self._wal_applied_seq = wal.last_seq if wal is not None else 0
        #: True while :meth:`catch_up` replays journal records — suppresses
        #: re-journaling and scheduler notifications (replay must not write
        #: duplicate records or trigger new maintenance passes of its own)
        self._replaying = False
        self.scheduler: Optional[MaintenanceScheduler] = (
            MaintenanceScheduler(self, every_events=maintenance_every)
            if maintenance_every is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # streaming updates
    # ------------------------------------------------------------------ #
    def observe(self, user_id: int, item_id: int) -> LatencyBreakdown:
        """Ingest one new interaction and refresh the user's neighborhood state.

        Returns the latency breakdown of the two real-time steps.  The
        neighborhood *query* itself (identifying similar users) is measured
        here because the paper's Table III reports "identifying time" — the
        cost of finding the β neighbors with the refreshed embedding.  This
        is :meth:`observe_batch` with a batch of one.
        """

        breakdown = self.observe_batch([(user_id, item_id)])
        assert breakdown is not None  # non-empty batch always returns a breakdown
        return breakdown

    def _validate_event(self, user_id: object, item_id: object) -> Tuple[int, int]:
        """Vet one ``(user_id, item_id)`` pair at the request boundary.

        The single definition behind :meth:`observe_batch`'s validate-first
        loop, :meth:`EventBuffer.push`'s eager check, and the async
        front-end's admission — so the three boundaries cannot drift.  The
        cold-start grow path backs streamed ids with a dense block, so a
        single huge id would allocate unboundedly much memory; it is
        rejected here, before any state is touched.
        """

        user_id, item_id = _as_id(user_id, "user_id"), _as_id(item_id, "item_id")
        if user_id < 0:
            raise ValueError("user_id must be non-negative")
        neighborhood = self.sccf.neighborhood
        if user_id >= neighborhood.num_users + neighborhood.max_user_growth:
            raise ValueError(
                "user_id too far beyond the fitted range "
                f"(cold-start growth capped at {neighborhood.max_user_growth})"
            )
        if not 0 <= item_id < self.num_items:
            raise ValueError("item_id out of range")
        return user_id, item_id

    def observe_batch(
        self,
        events: Sequence[Tuple[int, int]],
        request_starts: Optional[Sequence[float]] = None,
    ) -> Optional[LatencyBreakdown]:
        """Ingest a micro-batch of ``(user_id, item_id)`` events at once.

        Events are coalesced per user (preserving each user's arrival order),
        then every touched user's state is refreshed with batched kernels:

        1. one ``infer_user_embeddings_batch`` forward over the touched users,
        2. one batched index row replacement (``update_users``), growing the
           index first for users streamed in beyond the fitted id range
           (``add_users``),
        3. one batched neighborhood search over the fresh embeddings.

        The final state is identical to feeding the same events one at a time
        through :meth:`observe` — only the amortized cost differs.  Returns
        the batch's latency breakdown, or ``None`` for an empty batch.

        ``request_starts`` (one ``time.perf_counter()`` stamp per event)
        lets a queueing front-end date each event back to its *admission*,
        so the per-event samples in ``observe_request_latencies`` include
        queue wait; direct callers omit it and each event is dated to this
        call's entry.

        With a WAL attached the validated batch is journaled *before* it is
        applied (write-ahead, one record per call), so a crash at any later
        point replays it from disk; a journal append failure (fsync error
        under ``"always"``) raises before any state is touched, and the
        caller — :class:`EventBuffer` restores its events, the async
        front-end fans the error out — can retry without losing anything.
        """

        entry = time.perf_counter()
        if request_starts is not None and len(request_starts) != len(events):
            raise ValueError("request_starts must have one entry per event")
        validated: List[Tuple[int, int]] = []
        for user_id, item_id in events:
            validated.append(self._validate_event(user_id, item_id))
        if not validated:
            return None
        if self.wal is not None and not self._replaying:
            self._wal_applied_seq = self.wal.append(encode_events(validated))
        return self._apply_observe_batch(validated, request_starts, entry)

    def _apply_observe_batch(
        self,
        validated: List[Tuple[int, int]],
        request_starts: Optional[Sequence[float]],
        entry: float,
    ) -> LatencyBreakdown:
        """Apply one already-validated (and already-journaled) event batch.

        The second half of :meth:`observe_batch`, shared with journal replay
        (:meth:`catch_up`) so a recovered server mutates its state through
        exactly the code the original server ran — the precondition for
        bit-identical recovery.
        """

        touched: List[int] = []
        seen: set = set()
        for user_id, item_id in validated:
            self._recent_active.append(user_id)
            self._states.setdefault(user_id, _UserState()).history.append(item_id)
            if user_id not in seen:
                seen.add(user_id)
                touched.append(user_id)
        histories = [self._states[user].history for user in touched]

        start = time.perf_counter()
        embeddings = np.asarray(
            self.sccf.ui_model.infer_user_embeddings_batch(histories), dtype=np.float64
        )
        inferring_ms = (time.perf_counter() - start) * 1000.0
        for row, user in enumerate(touched):
            self._states[user].embedding = embeddings[row]

        # Keep the index in sync so these users can serve as others' neighbors;
        # cold-start users beyond the fitted range grow the pool.
        neighborhood = self.sccf.neighborhood
        pool_size = neighborhood.num_users
        fresh = [row for row, user in enumerate(touched) if user >= pool_size]
        known = [row for row, user in enumerate(touched) if user < pool_size]
        if fresh:
            neighborhood.add_users(
                [touched[row] for row in fresh],
                self.sccf.ui_model,
                [histories[row] for row in fresh],
                embeddings=embeddings[fresh],
            )
        if known:
            neighborhood.update_users(
                [touched[row] for row in known],
                self.sccf.ui_model,
                [histories[row] for row in known],
                embeddings=embeddings[known],
            )

        start = time.perf_counter()
        search_batch(
            neighborhood.index,
            embeddings,
            neighborhood.num_neighbors,
            exclude_per_query=[np.asarray([user], dtype=np.int64) for user in touched],
        )
        identifying_ms = (time.perf_counter() - start) * 1000.0

        breakdown = LatencyBreakdown(
            inferring_ms=inferring_ms,
            identifying_ms=identifying_ms,
            num_events=len(validated),
        )
        if not self._replaying:
            # Journal replay is excluded from the telemetry windows: a
            # recovered server or tailing replica must report percentiles
            # shaped by real serving traffic, not by replay timings.
            self.latencies.append(breakdown)
            # One wall-clock sample *per event*, not per window: SLO
            # percentiles must not improve just because the front-end
            # coalesced harder.
            finish = time.perf_counter()
            starts = (
                request_starts if request_starts is not None else [entry] * len(validated)
            )
            for request_start in starts:
                self.observe_request_latencies.append((finish - request_start) * 1000.0)
        if self.scheduler is not None and not self._replaying:
            # Replay must not fire fresh maintenance passes of its own: the
            # passes that actually ran pre-crash are journal records and are
            # re-applied in their original stream positions.
            self.scheduler.notify(len(validated))
        return breakdown

    # ------------------------------------------------------------------ #
    # index maintenance (off the hot path)
    # ------------------------------------------------------------------ #
    def maintain(
        self,
        imbalance_threshold: Optional[float] = None,
        prefill_users: Optional[int] = None,
        shadow: bool = True,
    ) -> MaintenanceReport:
        """Re-cluster the neighbor index if streamed adds have skewed it.

        Streaming :meth:`observe` appends cold-start users to whichever IVF
        cells the *frozen* centroids pick, so a long-running server degrades
        toward a few giant cells.  This hook is meant to run off the hot path
        (a periodic timer, an idle worker): it checks the index's
        ``imbalance()`` statistic and triggers a full ``retrain()`` when it
        exceeds the threshold — ``imbalance_threshold`` if given, else the
        index's own ``retrain_threshold``, else
        :data:`~repro.ann.ivf.DEFAULT_RETRAIN_THRESHOLD`.  Retraining
        preserves ids and vectors, so serving results only change in which
        cells a query probes.  No-op (``supported=False``) for indexes
        without a maintenance surface, e.g. brute force.

        With ``shadow=True`` (the default) and a cloneable index the retrain
        runs **blue/green**: the live rows are cloned into a shadow index,
        re-clustering happens there, mutations that land meanwhile are
        journaled and replayed onto the shadow, and the result is published
        through one atomic reference swap — the published index is
        bit-identical to what an in-place retrain would have produced, and a
        retrain failure leaves the live index serving untouched (the failure
        is recorded on ``last_maintenance`` and re-raised).  ``shadow=False``
        forces the legacy in-place path, which mutates the serving index
        mid-retrain.  This synchronous form still blocks the caller either
        way; see :meth:`begin_shadow_maintenance` for the non-blocking
        variant the scheduler's background mode uses.

        ``prefill_users=K``: a retrain bumps the index epoch, which drops
        every epoch-validated serving-cache entry at once — the next request
        from *every* repeat visitor would pay a full recompute.  Passing K
        re-warms the cache for the K most-frequent recent users right here,
        off the hot path (see :meth:`prefill_cache`), so the post-retrain
        hit-rate cliff lands on maintenance instead of on live traffic.
        """

        if prefill_users is not None and prefill_users <= 0:
            raise ValueError("prefill_users must be positive")
        if self._shadow_build is not None:
            raise RuntimeError(
                "a background shadow maintenance build is already running; poll it first"
            )
        index = self.sccf.neighborhood.index
        if not (hasattr(index, "imbalance") and hasattr(index, "retrain")):
            report = MaintenanceReport(supported=False)
            self.last_maintenance = report
            return report
        if imbalance_threshold is None:
            imbalance_threshold = getattr(index, "retrain_threshold", None)
        if imbalance_threshold is None:
            imbalance_threshold = DEFAULT_RETRAIN_THRESHOLD
        start = time.perf_counter()
        before = index.imbalance()
        retrained = before > imbalance_threshold
        use_shadow = shadow and hasattr(index, "clone")
        journaled = 0
        if retrained:
            if use_shadow:
                journaled = self._shadow_retrain(index, before, imbalance_threshold, start)
            else:
                index.retrain()
        live = self.sccf.neighborhood.index  # re-read: a shadow publish swapped it
        prefilled = (
            len(self.prefill_cache(prefill_users))
            if retrained and prefill_users is not None
            else 0
        )
        report = MaintenanceReport(
            supported=True,
            retrained=retrained,
            imbalance_before=before,
            imbalance_after=live.imbalance() if retrained else before,
            threshold=imbalance_threshold,
            duration_ms=(time.perf_counter() - start) * 1000.0,
            prefilled_users=prefilled,
            shadow=use_shadow and retrained,
            journaled_mutations=journaled,
        )
        self.last_maintenance = report
        if retrained:
            # A retrain consumes the index RNG stream and bumps the epoch —
            # replay must re-run it at exactly this stream position for the
            # recovered server to stay bit-identical.  The *resolved*
            # threshold is recorded so replay retrains unconditionally-equal.
            self._journal_maintain(imbalance_threshold, use_shadow)
        return report

    def _journal_maintain(self, threshold: float, shadow: bool) -> None:
        """Journal one retraining maintenance pass (no-op without a WAL)."""

        if self.wal is None or self._replaying:
            return
        self._wal_applied_seq = self.wal.append(encode_maintain(threshold, shadow))

    def _shadow_retrain(
        self, index: Any, before: float, threshold: float, start: float
    ) -> int:
        """Clone → journal → retrain → publish; contain any failure.

        Runs synchronously on the calling thread.  On failure the journal is
        closed, a failure report lands on ``last_maintenance`` (so
        :meth:`health` surfaces it) and the exception propagates — the live
        index was never touched, so serving continues bit-identically.
        Returns the number of journaled mutations replayed onto the shadow.
        """

        neighborhood = self.sccf.neighborhood
        shadow = index.clone()
        neighborhood.begin_index_journal()
        try:
            shadow.retrain()
            return self._publish_shadow(shadow)
        except Exception as exc:
            if neighborhood.index_journal_active:
                neighborhood.end_index_journal()
            self.last_maintenance = MaintenanceReport(
                supported=True,
                retrained=False,
                imbalance_before=before,
                imbalance_after=before,
                threshold=threshold,
                duration_ms=(time.perf_counter() - start) * 1000.0,
                shadow=True,
                error=f"{type(exc).__name__}: {exc}",
            )
            raise

    def _publish_shadow(self, shadow: Any) -> int:
        """Atomically publish a fully built shadow index.

        Closes the mutation journal, replays its entries onto the shadow (so
        the shadow is bit-identical to an in-place retrain that saw the same
        mutations), bumps the epoch past the live index's — exactly one bump,
        so epoch-validated cache layers invalidate once — and swaps the
        reference.  The swap is a single assignment of a local name
        (machine-enforced by repolint's RL007): readers see either the old
        index or the fully built new one, never a half-retrained state.
        """

        neighborhood = self.sccf.neighborhood
        journal = neighborhood.end_index_journal()
        replayed = neighborhood.replay_index_journal(journal, shadow)
        live = neighborhood.index
        shadow.epoch = max(int(getattr(shadow, "epoch", 0)), int(getattr(live, "epoch", 0)) + 1)
        neighborhood.index = shadow
        return replayed

    # ------------------------------------------------------------------ #
    # background (non-blocking) shadow maintenance
    # ------------------------------------------------------------------ #
    def shadow_maintenance_active(self) -> bool:
        """True while a background shadow retrain is building."""

        return self._shadow_build is not None

    def begin_shadow_maintenance(
        self, imbalance_threshold: Optional[float] = None
    ) -> Optional[MaintenanceReport]:
        """Start a shadow retrain on a background thread; never blocks serving.

        The blocking part of blue/green maintenance is the re-cluster itself
        (kmeans over every row — BLAS matmuls that release the GIL), so that
        is *all* the worker thread runs: the clone and journal-begin happen
        here on the serving thread, and the replay/swap happens on the
        serving thread too, inside :meth:`poll_shadow_maintenance`.  Nothing
        the worker touches is shared with serving, so no lock guards the hot
        path.

        Returns the finished :class:`MaintenanceReport` when no build was
        needed (index unsupported or not cloneable, or imbalance below
        threshold) and ``None`` when a build was launched — call
        :meth:`poll_shadow_maintenance` from the serving thread to publish
        it.  Raises if a build is already in flight.
        """

        if self._shadow_build is not None:
            raise RuntimeError("a background shadow maintenance build is already running")
        index = self.sccf.neighborhood.index
        if not (
            hasattr(index, "imbalance")
            and hasattr(index, "retrain")
            and hasattr(index, "clone")
        ):
            report = MaintenanceReport(supported=False)
            self.last_maintenance = report
            return report
        if imbalance_threshold is None:
            imbalance_threshold = getattr(index, "retrain_threshold", None)
        if imbalance_threshold is None:
            imbalance_threshold = DEFAULT_RETRAIN_THRESHOLD
        start = time.perf_counter()
        before = index.imbalance()
        if before <= imbalance_threshold:
            report = MaintenanceReport(
                supported=True,
                retrained=False,
                imbalance_before=before,
                imbalance_after=before,
                threshold=imbalance_threshold,
                duration_ms=(time.perf_counter() - start) * 1000.0,
                shadow=True,
            )
            self.last_maintenance = report
            return report
        shadow = index.clone()
        self.sccf.neighborhood.begin_index_journal()
        build = _ShadowBuild(
            shadow=shadow, imbalance_before=before, threshold=imbalance_threshold, started=start
        )

        def _run() -> None:
            try:
                shadow.retrain()
            except Exception as exc:  # recorded, re-raised at poll time
                build.error = exc

        build.thread = threading.Thread(target=_run, name="shadow-retrain", daemon=True)
        self._shadow_build = build
        build.thread.start()
        return None

    def poll_shadow_maintenance(
        self, prefill_users: Optional[int] = None, wait: bool = False
    ) -> Optional[MaintenanceReport]:
        """Publish a finished background shadow build (serving-thread half).

        Returns ``None`` when no build is in flight or the build is still
        running (``wait=True`` blocks until it finishes instead).  When the
        build is done: replays the journaled mutations, swaps the reference,
        optionally re-warms the cache (``prefill_users``), and returns the
        success report.  A build that failed is contained exactly like the
        synchronous path — journal closed, live index untouched, failure
        report on ``last_maintenance`` — and its exception re-raised here.
        """

        build = self._shadow_build
        if build is None:
            return None
        assert build.thread is not None
        if not wait and build.thread.is_alive():
            return None
        build.thread.join()
        self._shadow_build = None
        neighborhood = self.sccf.neighborhood
        if build.error is not None:
            if neighborhood.index_journal_active:
                neighborhood.end_index_journal()
            self.last_maintenance = MaintenanceReport(
                supported=True,
                retrained=False,
                imbalance_before=build.imbalance_before,
                imbalance_after=build.imbalance_before,
                threshold=build.threshold,
                duration_ms=(time.perf_counter() - build.started) * 1000.0,
                shadow=True,
                error=f"{type(build.error).__name__}: {build.error}",
            )
            raise build.error
        journaled = self._publish_shadow(build.shadow)
        prefilled = len(self.prefill_cache(prefill_users)) if prefill_users is not None else 0
        report = MaintenanceReport(
            supported=True,
            retrained=True,
            imbalance_before=build.imbalance_before,
            imbalance_after=self.sccf.neighborhood.index.imbalance(),
            threshold=build.threshold,
            duration_ms=(time.perf_counter() - build.started) * 1000.0,
            prefilled_users=prefilled,
            shadow=True,
            journaled_mutations=journaled,
        )
        self.last_maintenance = report
        # Journaled at *publish* time — the stream position at which the new
        # index became visible.  Replay re-clusters a clone taken at this
        # position, so it holds the same rows and lands on the same epoch;
        # only the cell assignments may differ from a build whose clone
        # predated the interleaved observes (synchronous maintenance has no
        # such window and replays bit-identically).
        self._journal_maintain(build.threshold, True)
        return report

    def prefill_cache(self, num_users: int) -> List[int]:
        """Re-warm the serving cache for the ``num_users`` most-frequent recent users.

        Scores each head user through the normal serving path (a batch of one
        per user, exactly the shape :meth:`recommend` computes in — so the
        warmed entries are bit-identical to what a live request would cache),
        which populates the ``embeddings``, ``neighbors`` and ``scores``
        layers under the *current* epoch/version counters.  Head users come
        from the bounded recent-activity window (observes + recommends).
        Returns the users warmed; empty when no cache is attached or no
        activity was recorded.  Runs off the hot path — call it after any
        event that invalidates en masse (a retrain, an eviction storm).
        """

        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.sccf.cache is None or not self._recent_active:
            return []
        head = [user for user, _ in Counter(self._recent_active).most_common(num_users)]
        for user in head:
            state = self._states.get(user, _UserState())
            self.sccf.score_items_batch([user], histories=[state.history])
        return head

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        user_id: int,
        k: int = 50,
        exclude_seen: bool = True,
        deadline_ms: Optional[float] = None,
    ) -> List[int]:
        """Top-``k`` fused candidates for the user's *current* (streamed) history.

        Repeat requests are served from the cache's ``recommendations``
        layer when the SCCF instance carries a
        :class:`~repro.core.cache.ServingCache`: the stored list is valid
        while the user's version counter and the neighbor index epoch are
        both unchanged — any ``observe`` (own or other users') or
        ``maintain`` retrain invalidates it, so a hit is always bit-identical
        to recomputing.  Latency is recorded in the ``recommend_latencies``
        window (never mixed into the ingestion breakdowns).

        The request degrades instead of failing.  The fallback chain:

        1. **Full scoring** through the process/thread shard fan-out.  Under
           ``failure_policy="degrade"`` a shard outage answers from the
           surviving shards — the list is served but *not cached* (counted in
           ``served_degraded``).
        2. **Stale cache entry** — when scoring itself raises (every shard
           down, policy ``"raise"`` mid-outage, a backend bug), the last
           cached list for this exact request is served ignoring its
           freshness token (``served_stale``; ``recommend_failures`` counts
           the underlying error either way).
        3. **Empty list** — nothing cached either: the caller gets ``[]``,
           never the exception.

        ``deadline_ms`` (default: the server's ``default_deadline_ms``)
        bounds what this request *should* have taken; a late finish is still
        returned but counted in ``deadline_misses``.
        """

        return self.recommend_batch(
            [
                RecommendRequest(
                    user_id=user_id, k=k, exclude_seen=exclude_seen, deadline_ms=deadline_ms
                )
            ]
        )[0]

    def _admit_recommend(self, request: RecommendRequest, now: float) -> _PreparedRequest:
        """Validate one recommend request at the admission boundary.

        Runs *before* any degenerate-``k`` early return (the old path
        returned ``[]`` on ``k <= 0`` without ever looking at ``user_id`` or
        ``deadline_ms``, so ``recommend(float("nan"), k=0, deadline_ms=-5)``
        was silently accepted).  Shared with the async front-end so a
        malformed request is rejected at enqueue time and can never poison a
        coalesced window.
        """

        user_id = _as_id(request.user_id, "user_id")
        k = _as_id(request.k, "k")
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        elif deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        return _PreparedRequest(
            user_id=user_id,
            k=k,
            exclude_seen=request.exclude_seen,
            deadline_ms=deadline_ms,
            start=now if request.start is None else request.start,
        )

    def _top_items(self, scores: np.ndarray, k: int) -> List[int]:
        """Rank one masked score row into a finite top-``k`` id list.

        ``top_k`` is clamped to the row length as well as the catalog size:
        a server built over zero items, or an empty degraded score row,
        yields ``[]`` here instead of crashing ``np.argpartition`` with
        ``kth=-1``.
        """

        top_k = min(k, self.num_items, int(scores.size))
        if top_k <= 0:
            return []
        top = np.argpartition(-scores, kth=top_k - 1)[:top_k]
        ordered = top[np.argsort(-scores[top], kind="stable")]
        return [int(item) for item in ordered if np.isfinite(scores[item])]

    def recommend_batch(self, requests: Sequence[RecommendRequest]) -> List[List[int]]:
        """Serve a window of recommend requests through one batched scoring pass.

        The canonical read path — :meth:`recommend` is this with a window of
        one, and the async front-end (:class:`repro.serving.AsyncFrontend`)
        builds its windows here.  Per request, the semantics match the
        sequential loop exactly: validation first (a bad request raises
        before *any* request in the window is served), then the cache
        peek-then-get, then the full → degraded → stale → empty fallback
        chain, with one latency sample and one potential deadline miss per
        request.  What the window amortizes is the scoring pass: all
        cache-missing requests share a single ``score_items_batch`` call,
        deduplicated per user (two requests for the same user rank the same
        score row — exactly what the sequential loop's second iteration
        would have recomputed or read back from the cache).

        Requests whose deadline has already expired by window-build time
        (``start`` predates ``now`` by more than ``deadline_ms`` — queue
        wait under an overloaded front-end) skip the scoring pass entirely
        and short-circuit to the stale/empty tail of the fallback chain:
        scoring work the caller has already given up on only adds latency
        for everyone behind it.

        Degenerate ``k <= 0`` requests return ``[]`` *after* validation and
        do count a latency sample: they were admitted work, and under the
        front-end their sample carries real queue wait — dropping it would
        flatter the percentiles.
        """

        now = time.perf_counter()
        prepared = [self._admit_recommend(request, now) for request in requests]
        results: List[Optional[List[int]]] = [None] * len(prepared)
        cache = self.sccf.cache
        epoch = getattr(self.sccf.neighborhood.index, "epoch", None)
        keys: List[Optional[Tuple[int, int, int, bool, str]]] = [None] * len(prepared)
        tokens: List[Optional[Tuple[int, int, int]]] = [None] * len(prepared)
        stales: List[Any] = [MISS] * len(prepared)
        pending: List[int] = []
        for i, req in enumerate(prepared):
            self._recent_active.append(req.user_id)
            if req.k <= 0:
                results[i] = []
                self._finish_recommend(req.start, req.deadline_ms)
                continue
            if cache is not None and epoch is not None:
                # The key carries everything non-monotonic the list depends
                # on: the server serial (two servers sharing one SCCF hold
                # different streamed histories under the same shared
                # counters) and the scoring mode (set_mode() changes the
                # ranking without touching any counter).  The token holds
                # only monotonic counters.
                token = self.sccf._serving_token(req.user_id, epoch)
                key = (self._serial, req.user_id, req.k, req.exclude_seen, self.sccf.mode)
                # Peek before get: a token-stale entry is *deleted* by the
                # validated lookup, but it is exactly what the stale-serve
                # fallback wants to hold on to should scoring fail below.
                stales[i] = cache.recommendations.peek(key)
                value = cache.recommendations.get(key, token)
                keys[i], tokens[i] = key, token
                if value is not MISS:
                    results[i] = list(value)
                    self._finish_recommend(req.start, req.deadline_ms)
                    continue
            if req.deadline_ms is not None and (now - req.start) * 1000.0 > req.deadline_ms:
                # Expired while queued: no scoring slot, straight to the
                # stale/empty tail (the miss is counted by _finish_recommend).
                if stales[i] is not MISS:
                    self.served_stale += 1
                    results[i] = list(stales[i])
                else:
                    results[i] = []
                self._finish_recommend(req.start, req.deadline_ms)
                continue
            pending.append(i)
        if pending:
            rows: Dict[int, int] = {}
            for i in pending:
                rows.setdefault(prepared[i].user_id, len(rows))
            users = list(rows)
            histories = [self._states.get(user, _UserState()).history for user in users]
            index = self.sccf.neighborhood.index
            degraded_before = getattr(index, "degraded_requests", 0)
            try:
                score_rows = self.sccf.score_items_batch(users, histories=histories)
            except RuntimeError:
                # Scoring is a pure read — the failure is the index's (all
                # shards down, raise-policy outage), already recorded in its
                # supervision state; answer stale-or-empty rather than
                # letting a read take the callers down with the worker.
                for i in pending:
                    self.recommend_failures += 1
                    if stales[i] is not MISS:
                        self.served_stale += 1
                        results[i] = list(stales[i])
                    else:
                        results[i] = []
                    self._finish_recommend(prepared[i].start, prepared[i].deadline_ms)
            else:
                degraded = getattr(index, "degraded_requests", 0) != degraded_before
                # Duplicate (user, k, exclude_seen) requests rank once and
                # share the list — the sequential loop's later duplicates
                # would have recomputed the identical ranking (or read it
                # back from the cache), so the outputs cannot differ.
                ranked: Dict[Tuple[int, int, bool], List[int]] = {}
                for i in pending:
                    req = prepared[i]
                    group = (req.user_id, req.k, req.exclude_seen)
                    result = ranked.get(group)
                    if result is None:
                        # In "sccf" mode non-candidates carry the finite
                        # _NEG_INF sentinel; mask them to -inf so they can
                        # never pad the result list.
                        scores = score_rows[rows[req.user_id]]
                        scores = np.where(scores > _NEG_INF, scores, -np.inf)
                        if req.exclude_seen:
                            history = self._states.get(req.user_id, _UserState()).history
                            scores = exclude_seen_items(scores, history)
                        result = self._top_items(scores, req.k)
                        ranked[group] = result
                    else:
                        result = list(result)
                    if degraded:
                        # A survivors-only list is fine to serve once but
                        # must not be memoized: the token counters don't move
                        # when the shard heals.
                        self.served_degraded += 1
                    elif keys[i] is not None and cache is not None:
                        cache.recommendations.put(keys[i], tokens[i], tuple(result))
                    results[i] = result
                    self._finish_recommend(req.start, req.deadline_ms)
        return [[] if result is None else result for result in results]

    def _finish_recommend(self, start: float, deadline_ms: Optional[float]) -> None:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.recommend_latencies.append(elapsed_ms)
        if deadline_ms is not None and elapsed_ms > deadline_ms:
            self.deadline_misses += 1

    def health(self) -> HealthReport:
        """Assemble the :class:`HealthReport` an orchestrator polls.

        Pure observation plus one supervision pass on the process backend
        (reading shard health drives pending restarts forward, so polling
        health actively helps a wounded pool heal — deliberate: the poller
        is exactly the component that exists during quiet periods).
        """

        index = self.sccf.neighborhood.index
        shards = index.shard_health() if hasattr(index, "shard_health") else []
        healthy = bool(getattr(index, "healthy", True))
        stats = self.sccf.cache_stats()
        scheduler = self.scheduler
        recommend_p50, recommend_p99 = _window_percentiles(self.recommend_latencies)
        observe_p50, observe_p99 = _window_percentiles(self.observe_request_latencies)
        last_error = (
            self.last_maintenance.error if self.last_maintenance is not None else None
        )
        if last_error is None and scheduler is not None:
            # in-place (non-shadow) failures never produce a report object —
            # the scheduler's containment record is the only trace
            last_error = scheduler.last_failure
        wal_stats = self.wal.stats() if self.wal is not None else None
        return HealthReport(
            healthy=healthy,
            shards=shards,
            workers_alive=getattr(index, "workers_alive", 0),
            restarts_total=getattr(index, "restarts_total", 0),
            degraded_requests=getattr(index, "degraded_requests", 0),
            served_degraded=self.served_degraded,
            served_stale=self.served_stale,
            recommend_failures=self.recommend_failures,
            deadline_misses=self.deadline_misses,
            recommend_p50_ms=recommend_p50,
            recommend_p99_ms=recommend_p99,
            observe_p50_ms=observe_p50,
            observe_p99_ms=observe_p99,
            maintenance_passes=scheduler.passes_run if scheduler is not None else 0,
            maintenance_failures=(
                scheduler.maintenance_failures if scheduler is not None else 0
            ),
            last_maintenance_error=last_error,
            cache=stats,
            wal_lag=wal_stats.lag if wal_stats is not None else None,
            wal_fsyncs=wal_stats.fsyncs if wal_stats is not None else None,
            wal_fsync_failures=(
                wal_stats.fsync_failures if wal_stats is not None else None
            ),
            wal=wal_stats,
        )

    # ------------------------------------------------------------------ #
    # crash-safe snapshot persistence
    # ------------------------------------------------------------------ #
    def save_snapshot(self, directory: "str | Path", keep: int = 2) -> Path:
        """Persist the serving state to a new crash-safe snapshot generation.

        Covers the neighbor index (vectors, ids, IVF centroids and cell
        assignments), the integrating MLP (weights plus frozen predict
        state), the serving-cache *configuration*, and the per-user streamed
        histories — everything needed for a replica to cold-start and serve
        bit-identical recommendations.  Cache entries and user embeddings
        are derivable and are never persisted.  Every file is written via
        tmp-file + fsync + atomic rename with a manifest committed last, so
        a crash mid-write can never leave a loadable-but-corrupt snapshot
        (see :mod:`repro.core.snapshot`).  Returns the generation directory.

        With a WAL attached the manifest additionally records the highest
        journal sequence this state covers, and journal segments wholly
        below it are pruned after the commit — the snapshot *is* the
        checkpoint, so the journal stays bounded and recovery replays only
        the records newer than the generation it loads.
        """

        if keep < 1:
            # write_snapshot would reject this too, but only after the walk
            # over every user history — validate before any work is done.
            raise ValueError("keep must be at least 1")
        if self._shadow_build is not None:
            raise RuntimeError("cannot snapshot while a shadow maintenance build is running")
        users = sorted(self._states)
        offsets = np.zeros(len(users) + 1, dtype=np.int64)
        values: List[int] = []
        for i, user in enumerate(users):
            history = self._states[user].history
            offsets[i + 1] = offsets[i] + len(history)
            values.extend(history)
        state = {
            "meta": {
                "format": "realtime-server",
                "default_deadline_ms": self.default_deadline_ms,
                "latency_window": int(self.latencies.maxlen or 0),
                "activity_window": int(self._recent_active.maxlen or 0),
                "maintenance_every": (
                    self.scheduler.every_events if self.scheduler is not None else None
                ),
                "num_items": int(self.num_items),
            },
            "histories": {
                "users": np.asarray(users, dtype=np.int64),
                "offsets": offsets,
                "values": np.asarray(values, dtype=np.int64),
            },
            "sccf": self.sccf.snapshot_state(),
        }
        epoch = int(getattr(self.sccf.neighborhood.index, "epoch", 0))
        generation = write_snapshot(
            Path(directory), state, epoch=epoch, keep=keep, wal_seq=self._wal_applied_seq
        )
        if self.wal is not None:
            # The manifest is committed: every record at or below the covered
            # sequence is redundant with this generation, so fully covered
            # segments can go.  (Records in the active segment survive until
            # rotation — pruning is per segment, never per record.)
            self.wal.prune(self._wal_applied_seq)
        return generation

    @classmethod
    def load_snapshot(
        cls,
        directory: "str | Path",
        sccf: SCCF,
        dataset: RecDataset,
        **overrides: Any,
    ) -> "RealTimeServer":
        """Cold-start a serving replica from the newest committed snapshot.

        ``directory`` may be the snapshot root (the newest committed
        generation is resolved through the ``CURRENT`` pointer) or one
        generation directory.  ``sccf`` must be constructed with the same
        config and already-fitted UI model the snapshot was taken from —
        the UI model is immutable at serving time and deliberately outside
        the snapshot; everything mutable is restored from disk.  ``dataset``
        re-supplies the training histories (they belong to the dataset, not
        the snapshot).  Keyword overrides replace any saved server
        constructor argument (e.g. ``maintenance_every``) and may add WAL
        wiring (``wal_dir=`` / ``wal=``).  The restored server serves
        bit-identically to the one that saved.  Attaching a WAL takes
        *ownership* of its directory (exclusive writer lock + torn-tail
        repair), so pointing ``wal_dir`` at a live primary's journal fails
        fast — a replica tails it read-only via :meth:`catch_up` instead.

        When a WAL is attached, recovery finishes the job: the manifest's
        covered sequence rewinds the applied-position marker and
        :meth:`catch_up` replays every journal record the snapshot does not
        already contain — so a server that crashed *after* its last snapshot
        comes back holding the journaled tail too, not just the snapshot.
        """

        payload = read_snapshot(Path(directory))
        state = payload.state
        sccf.restore_snapshot_state(state["sccf"])
        sccf._user_histories = dataset.train.user_sequences()
        meta = state["meta"]
        kwargs: Dict[str, Any] = {
            "latency_window": int(meta["latency_window"]),
            "maintenance_every": (
                None if meta["maintenance_every"] is None else int(meta["maintenance_every"])
            ),
            "activity_window": int(meta["activity_window"]),
            "default_deadline_ms": meta["default_deadline_ms"],
        }
        kwargs.update(overrides)
        server = cls(sccf, dataset, **kwargs)
        histories = state["histories"]
        offsets = histories["offsets"]
        values = histories["values"]
        states: Dict[int, _UserState] = {}
        for i, user in enumerate(histories["users"].tolist()):
            states[int(user)] = _UserState(
                history=values[int(offsets[i]) : int(offsets[i + 1])].tolist()
            )
        server._states = states
        server._wal_applied_seq = payload.wal_seq
        if server.wal is not None:
            server.catch_up(server.wal.directory)
        return server

    def catch_up(self, wal_dir: "str | Path") -> int:
        """Replay journal records this server has not applied yet.

        Reads ``wal_dir`` through the read-only scanner (never truncating —
        safe against a *live* primary's journal) and applies every committed
        record with a sequence beyond ``_wal_applied_seq``, in order:
        event records re-run :meth:`_apply_observe_batch`, maintenance
        records re-run :meth:`maintain` with the recorded resolved threshold.
        Replay is marked (``_replaying``) so nothing is re-journaled, the
        scheduler stays quiet, and the latency/SLO telemetry windows are
        untouched.  Returns the number of records applied.

        Replay is contiguity-checked: every replayed sequence must be
        exactly the last applied one + 1.  A gap — the primary checkpointed
        and pruned past this server's position, or an older snapshot
        generation was loaded against a newer journal — raises
        :class:`~repro.core.wal.WALError` *before* anything is applied out
        of order; re-bootstrap from the latest snapshot instead of serving a
        silently divergent state.

        Two callers: crash recovery (:meth:`load_snapshot` replaying the
        server's own journal tail) and replica tailing — a cold-started
        replica pointing at the primary's journal directory calls this
        periodically and converges to the primary's exact state.
        """

        applied = 0
        for seq, payload in replay_wal(Path(wal_dir), after_seq=self._wal_applied_seq):
            if seq != self._wal_applied_seq + 1:
                raise WALError(
                    f"journal gap: expected seq {self._wal_applied_seq + 1}, found "
                    f"{seq} in {wal_dir} — the journal no longer covers this "
                    "server's position; re-bootstrap from the latest snapshot"
                )
            kind, body = decode_payload(payload)
            self._replaying = True
            try:
                if kind == "events":
                    events = [self._validate_event(user, item) for user, item in body]
                    self._apply_observe_batch(events, None, time.perf_counter())
                else:
                    self.maintain(float(body["threshold"]), shadow=bool(body["shadow"]))
            finally:
                self._replaying = False
            self._wal_applied_seq = seq
            applied += 1
        return applied

    def sync_wal(self) -> None:
        """Force-flush the attached journal (no-op without one).

        The shutdown hook: lazy fsync policies (``"batch"``/``"interval"``)
        may hold a tail of acknowledged records in the OS cache — a clean
        shutdown calls this so that tail is never forfeited.
        """

        if self.wal is not None:
            self.wal.sync()

    def history(self, user_id: int) -> List[int]:
        return list(self._states.get(user_id, _UserState()).history)

    def average_latency(self) -> Optional[LatencyBreakdown]:
        """Per-event mean *ingestion* latency over the bounded window (Table III rows).

        Batch entries are weighted by the number of events they coalesced, so
        per-event and micro-batched ingestion report comparable numbers.
        Serving cost is tracked separately — see
        :meth:`average_recommend_latency_ms`.
        """

        if not self.latencies:
            return None
        total_events = sum(entry.num_events for entry in self.latencies)
        return LatencyBreakdown(
            inferring_ms=float(sum(entry.inferring_ms for entry in self.latencies)) / total_events,
            identifying_ms=float(sum(entry.identifying_ms for entry in self.latencies))
            / total_events,
        )

    def average_recommend_latency_ms(self) -> Optional[float]:
        """Mean per-call :meth:`recommend` latency over the bounded window.

        ``None`` until the first recommend — a read-heavy workload's serving
        cost is reported here, never through :meth:`average_latency` (which
        covers ingestion only).
        """

        if not self.recommend_latencies:
            return None
        return float(sum(self.recommend_latencies)) / len(self.recommend_latencies)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the serving stack's workers (cascades through the SCCF).

        The cascade — server → :meth:`SCCF.close` →
        ``UserNeighborhoodComponent.close`` → ``index.close()`` — is what
        tears down process-backend shard workers and their shared-memory
        segments; with thread or plain indexes it is a cheap no-op.
        Idempotent, and also invoked by the context-manager exit.

        Closing tears down the *shared stack*, not just this server: when
        several servers serve one SCCF (a supported pattern — see the
        request-key serial), close once, after the last of them is done,
        rather than per server.  On the process backend a premature close is
        terminal for every sibling.

        An attached journal is closed too (flushing any group-commit tail),
        even when the SCCF teardown raises.
        """

        try:
            self.sccf.close()
        finally:
            if self.wal is not None:
                self.wal.close()

    def __enter__(self) -> "RealTimeServer":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()


class MaintenanceScheduler:
    """Event-count trigger for :meth:`RealTimeServer.maintain` (off the hot path).

    A long-running server streams cold-start adds into whichever IVF cells
    the frozen centroids pick, so the index slowly skews; somebody has to
    call :meth:`~RealTimeServer.maintain` periodically.  This scheduler does
    it by event count: every ``every_events`` observed events (counted across
    batches) one maintenance pass runs — after the ingestion breakdown is
    recorded, so the trigger never inflates the hot-path timings.  Because
    ``retrain`` bumps the index epoch, an attached serving cache drops every
    epoch-validated entry automatically and post-retrain serving stays
    consistent without any extra wiring.

    Construct it directly around any server, or let the server own one via
    ``RealTimeServer(..., maintenance_every=N)``.

    ``background=True`` switches to non-blocking blue/green maintenance:
    when the counter trips, :meth:`RealTimeServer.begin_shadow_maintenance`
    launches the re-cluster on a worker thread and every subsequent
    ``notify`` polls :meth:`RealTimeServer.poll_shadow_maintenance` until
    the build publishes — ingestion never stalls for the length of a
    retrain.  ``shadow=False`` (synchronous mode only) forces the legacy
    in-place retrain, which mutates the serving index mid-pass.

    ``checkpoint_every=N`` adds WAL checkpointing on the same off-hot-path
    cadence machinery: every N observed events the server snapshots into
    ``snapshot_dir`` (``keep=snapshot_keep`` generations), which records the
    covered journal sequence and prunes committed segments — so a durable
    server's journal (and its recovery replay time) stays bounded without
    any caller-side timer.  Checkpoint failures are contained exactly like
    maintenance failures (counted in ``checkpoint_failures``, recorded on
    ``last_failure``, never propagated into the triggering observe).
    """

    def __init__(
        self,
        server: "RealTimeServer",
        every_events: int = 1024,
        imbalance_threshold: Optional[float] = None,
        report_window: int = 64,
        prefill_users: Optional[int] = None,
        shadow: bool = True,
        background: bool = False,
        checkpoint_every: Optional[int] = None,
        snapshot_dir: Optional["str | Path"] = None,
        snapshot_keep: int = 2,
    ) -> None:
        if every_events <= 0:
            raise ValueError("every_events must be positive")
        if report_window <= 0:
            raise ValueError("report_window must be positive")
        if prefill_users is not None and prefill_users <= 0:
            raise ValueError("prefill_users must be positive")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if checkpoint_every is not None and snapshot_dir is None:
            raise ValueError("checkpoint_every requires snapshot_dir")
        if snapshot_keep < 1:
            raise ValueError("snapshot_keep must be at least 1")
        self.server = server
        self.every_events = every_events
        self.imbalance_threshold = imbalance_threshold
        #: when set, every retraining pass re-warms the serving cache for
        #: this many head users (see RealTimeServer.prefill_cache)
        self.prefill_users = prefill_users
        #: blue/green (clone → retrain → swap) instead of in-place retrain
        self.shadow = shadow
        #: run the re-cluster on a worker thread, publishing at a later notify
        self.background = background
        self.events_since_maintenance = 0
        #: total number of maintenance passes triggered over the lifetime
        self.passes_run = 0
        #: maintenance passes that raised (contained here, never propagated
        #: into the observe call that happened to trip the trigger)
        self.maintenance_failures = 0
        #: consecutive failed passes — drives the exponential backoff
        self.failure_streak = 0
        #: string form of the most recent failure (None after a success)
        self.last_failure: Optional[str] = None
        #: the most recent reports, in order — bounded like the server's
        #: latency windows (a long-running server triggers forever, so an
        #: unbounded list would be a memory leak)
        self.reports: Deque[MaintenanceReport] = deque(maxlen=report_window)
        #: WAL checkpointing cadence (None: scheduler never snapshots)
        self.checkpoint_every = checkpoint_every
        self.snapshot_dir = None if snapshot_dir is None else Path(snapshot_dir)
        self.snapshot_keep = snapshot_keep
        self.events_since_checkpoint = 0
        #: snapshots taken (and journals pruned) by this scheduler
        self.checkpoints_run = 0
        #: checkpoint attempts that raised (contained, like maintenance)
        self.checkpoint_failures = 0

    def notify(self, num_events: int = 1) -> Optional[MaintenanceReport]:
        """Count ``num_events`` freshly observed events; maybe run maintenance.

        Returns the :class:`MaintenanceReport` when a pass ran, else ``None``.
        The counter resets whether or not the pass retrained, so a balanced
        index is only *checked* every ``every_events`` events.

        A pass that **raises** is contained here: ingestion triggered it only
        incidentally, so the exception is recorded (``maintenance_failures``,
        ``last_failure``) instead of propagating into ``observe_batch`` and
        failing an unrelated write.  Repeated failures back off
        exponentially — after F consecutive failures the next attempt waits
        ``every_events * 2**min(F, 6)`` events — so a persistently broken
        retrain (corrupt index state, an OOM-ing re-cluster) costs a bounded
        slice of ingestion throughput rather than retrying at full cadence.
        Direct :meth:`RealTimeServer.maintain` calls still raise; operators
        asking explicitly deserve the traceback.

        With ``checkpoint_every`` set, the same call also advances the WAL
        checkpoint counter and snapshots when it trips — after the
        maintenance decision, so a checkpoint lands on the *post*-retrain
        state and covers the retrain's own journal record.
        """

        if num_events < 0:
            raise ValueError("num_events must be non-negative")
        report = self._advance_maintenance(num_events)
        self._maybe_checkpoint(num_events)
        return report

    def _advance_maintenance(self, num_events: int) -> Optional[MaintenanceReport]:
        """The maintenance half of :meth:`notify` (counter, trigger, containment)."""

        self.events_since_maintenance += num_events
        polled: Optional[MaintenanceReport] = None
        if self.background:
            polled = self._poll_background()
        required = self.every_events * (2 ** min(self.failure_streak, 6))
        if self.events_since_maintenance < required:
            return polled
        if self.background:
            if self.server.shadow_maintenance_active():
                # a build is still re-clustering; leave the counter tripped
                # and publish at a later notify
                return polled
            self.events_since_maintenance = 0
            try:
                report = self.server.begin_shadow_maintenance(self.imbalance_threshold)
            except Exception as exc:
                self._record_failure(exc)
                return polled
            if report is None:
                # launched: the pass completes (and is counted) at poll time
                return polled
        else:
            self.events_since_maintenance = 0
            try:
                report = self.server.maintain(
                    self.imbalance_threshold,
                    prefill_users=self.prefill_users,
                    shadow=self.shadow,
                )
            except Exception as exc:
                self._record_failure(exc)
                return None
        self._record_success(report)
        return report

    def _maybe_checkpoint(self, num_events: int) -> None:
        """The checkpoint half of :meth:`notify`: snapshot (and prune) on cadence."""

        if self.checkpoint_every is None:
            return
        self.events_since_checkpoint += num_events
        if self.events_since_checkpoint < self.checkpoint_every:
            return
        self.events_since_checkpoint = 0
        assert self.snapshot_dir is not None  # enforced by the constructor
        try:
            self.server.save_snapshot(self.snapshot_dir, keep=self.snapshot_keep)
        except Exception as exc:
            # Same containment contract as maintenance: the observe that
            # happened to trip the counter must not fail because a snapshot
            # (e.g. one refused mid-shadow-build) did.
            self.checkpoint_failures += 1
            self.last_failure = f"{type(exc).__name__}: {exc}"
        else:
            self.checkpoints_run += 1

    def _poll_background(self) -> Optional[MaintenanceReport]:
        """Advance (and account for) the in-flight background build, if any."""

        try:
            report = self.server.poll_shadow_maintenance(prefill_users=self.prefill_users)
        except Exception as exc:
            self._record_failure(exc)
            return None
        if report is not None:
            self._record_success(report)
        return report

    def _record_success(self, report: MaintenanceReport) -> None:
        self.failure_streak = 0
        self.last_failure = None
        self.reports.append(report)
        self.passes_run += 1

    def _record_failure(self, exc: Exception) -> None:
        self.maintenance_failures += 1
        self.failure_streak += 1
        self.last_failure = f"{type(exc).__name__}: {exc}"


class EventBuffer:
    """Coalesces streamed ``(user, item)`` events into micro-batch flushes.

    Producers push events one at a time; the buffer validates them eagerly
    (so a malformed event fails at ``push``, not inside a later flush of
    unrelated events) and hands the server one
    :meth:`RealTimeServer.observe_batch` call per ``flush_size`` events.
    Usable as a context manager — leftover events are flushed on exit:

    >>> with EventBuffer(server, flush_size=256) as buffer:   # doctest: +SKIP
    ...     for user, item in stream:
    ...         buffer.push(user, item)
    """

    def __init__(self, server: RealTimeServer, flush_size: int = 256) -> None:
        if flush_size <= 0:
            raise ValueError("flush_size must be positive")
        self.server = server
        self.flush_size = flush_size
        self._events: List[Tuple[int, int]] = []

    def push(self, user_id: int, item_id: int) -> Optional[LatencyBreakdown]:
        """Buffer one event; returns the flush breakdown if this push flushed."""

        self._events.append(self.server._validate_event(user_id, item_id))
        if len(self._events) >= self.flush_size:
            return self.flush()
        return None

    def flush(self) -> Optional[LatencyBreakdown]:
        """Drain the buffer through ``observe_batch``; ``None`` when empty.

        A failing flush (a contained maintenance failure propagating, a
        worker outage under ``failure_policy="raise"``) puts the whole
        micro-batch back at the *front* of the buffer before re-raising, so
        a retrying caller loses nothing and later pushes keep their order.
        """

        if not self._events:
            return None
        events, self._events = self._events, []
        try:
            return self.server.observe_batch(events)
        except BaseException:
            self._events = events + self._events
            raise

    def __len__(self) -> int:
        return len(self._events)

    @property
    def pending(self) -> List[Tuple[int, int]]:
        """A copy of the not-yet-flushed events."""

        return list(self._events)

    def __enter__(self) -> "EventBuffer":
        return self

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        if exc_type is None:
            self.flush()
