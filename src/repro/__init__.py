"""SCCF reproduction: real-time user-neighborhood candidate generation.

Reproduction of "Explore User Neighborhood for Real-time E-commerce
Recommendation" (Xie et al., ICDE 2021).  The public API is re-exported here
for convenience; see the subpackages for the full surface:

* :mod:`repro.nn` — NumPy autograd + neural network substrate
* :mod:`repro.data` — interaction logs, loaders, synthetic datasets, sampling
* :mod:`repro.ann` — exact and approximate user-neighbor search
* :mod:`repro.models` — Pop, ItemKNN, UserKNN, BPR-MF, FISM, SASRec, YouTubeDNN
* :mod:`repro.core` — the SCCF framework (the paper's contribution)
* :mod:`repro.eval` — HR/NDCG metrics, leave-one-out evaluator, timing
* :mod:`repro.analysis` — Figure 1 / Figure 4 analyses
* :mod:`repro.simulation` — clickstream simulator and A/B test harness
* :mod:`repro.experiments` — per-table/figure experiment runners
"""

from __future__ import annotations

from .core import SCCF, EventBuffer, RealTimeServer, SCCFConfig, UserNeighborhoodComponent
from .data import RecDataset, load_preset
from .eval import Evaluator
from .models import BPRMF, FISM, ItemKNN, Popularity, SASRec, UserKNN, YouTubeDNN

__version__ = "1.0.0"

__all__ = [
    "SCCF",
    "SCCFConfig",
    "RealTimeServer",
    "EventBuffer",
    "UserNeighborhoodComponent",
    "RecDataset",
    "load_preset",
    "Evaluator",
    "Popularity",
    "ItemKNN",
    "UserKNN",
    "BPRMF",
    "FISM",
    "SASRec",
    "YouTubeDNN",
    "__version__",
]
