"""Popularity baseline (``Pop`` in Table II).

A non-personalized benchmark that ranks items by their total number of
training interactions.  Useful both as the weakest baseline and as a sanity
check that the evaluation pipeline is wired correctly (every personalized
model should beat it on the synthetic datasets).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.datasets import RecDataset
from .base import Recommender

__all__ = ["Popularity"]


class Popularity(Recommender):
    """Rank items by interaction count, identically for every user."""

    def __init__(self) -> None:
        self._scores: Optional[np.ndarray] = None
        self._user_histories = {}

    def fit(self, dataset: RecDataset) -> "Popularity":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        counts = dataset.train.item_popularity(dataset.num_items).astype(np.float64)
        # Tiny index-dependent jitter gives a deterministic total order even
        # for items with identical counts, keeping metric values reproducible.
        self._scores = counts + np.linspace(0.0, 1e-6, dataset.num_items)
        self._user_histories = dataset.train.user_sequences()
        return self

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if self._scores is None:
            raise RuntimeError("Popularity model has not been fitted")
        return self._scores.copy()
