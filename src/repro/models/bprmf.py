"""BPR-MF baseline (Rendle et al., 2009).

Matrix factorization optimized with the pairwise Bayesian Personalized
Ranking loss: for a sampled triple ``(u, i⁺, i⁻)`` the model maximizes
``log σ(p_uᵀ q_{i⁺} − p_uᵀ q_{i⁻})``.  BPR-MF keeps an explicit per-user
embedding table, which makes it *transductive*: new interactions cannot
update ``p_u`` without further gradient steps.  It therefore serves only as a
Table II baseline, not as an SCCF base model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.datasets import RecDataset
from ..data.sampling import NegativeSampler
from ..nn import functional as F
from .base import Recommender

__all__ = ["BPRMF"]


class BPRMF(Recommender):
    """Matrix factorization with the BPR pairwise ranking loss."""

    def __init__(
        self,
        embedding_dim: int = 64,
        learning_rate: float = 0.001,
        weight_decay: float = 1e-5,
        num_epochs: int = 10,
        batch_size: int = 256,
        seed: int = 0,
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        self.embedding_dim = embedding_dim
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.user_embeddings: Optional[nn.Embedding] = None
        self.item_embeddings_table: Optional[nn.Embedding] = None
        self._user_histories: Dict[int, List[int]] = {}
        self.loss_history: List[float] = []

    def fit(self, dataset: RecDataset) -> "BPRMF":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()

        self.user_embeddings = nn.Embedding(self.num_users, self.embedding_dim, std=0.01, rng=self._rng)
        self.item_embeddings_table = nn.Embedding(self.num_items, self.embedding_dim, std=0.01, rng=self._rng)
        parameters = list(self.user_embeddings.parameters()) + list(self.item_embeddings_table.parameters())

        users = dataset.train.users
        items = dataset.train.items
        num_interactions = len(users)
        if num_interactions == 0:
            return self

        total_steps = max(1, self.num_epochs * ((num_interactions + self.batch_size - 1) // self.batch_size))
        optimizer = nn.Adam(
            parameters,
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
            schedule=nn.LinearDecay(total_steps),
        )
        sampler = NegativeSampler(self.num_items, self._rng)
        user_sets = {user: set(seq) for user, seq in self._user_histories.items()}

        for _ in range(self.num_epochs):
            order = self._rng.permutation(num_interactions)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, num_interactions, self.batch_size):
                batch_idx = order[start:start + self.batch_size]
                batch_users = users[batch_idx]
                batch_pos = items[batch_idx]
                batch_neg = np.array(
                    [sampler.sample(user_sets.get(int(u), set()), 1)[0] for u in batch_users],
                    dtype=np.int64,
                )
                user_vecs = self.user_embeddings(batch_users)
                pos_vecs = self.item_embeddings_table(batch_pos)
                neg_vecs = self.item_embeddings_table(batch_neg)
                pos_scores = (user_vecs * pos_vecs).sum(axis=1)
                neg_scores = (user_vecs * neg_vecs).sum(axis=1)
                loss = F.bpr_loss(pos_scores, neg_scores)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            self.loss_history.append(epoch_loss / max(num_batches, 1))
        return self

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if self.user_embeddings is None or self.item_embeddings_table is None:
            raise RuntimeError("BPRMF model has not been fitted")
        if not 0 <= user_id < self.num_users:
            # Cold user: BPR-MF has no inductive path; fall back to the
            # average user embedding, documenting the transductive limitation.
            user_vector = self.user_embeddings.weight.data.mean(axis=0)
        else:
            user_vector = self.user_embeddings.weight.data[user_id]
        return user_vector @ self.item_embeddings_table.weight.data.T
