"""Model interfaces for candidate generation.

Two levels of capability matter in this reproduction:

* :class:`Recommender` — anything that can score the whole item catalog for a
  user and emit a top-N candidate list (all baselines qualify).
* :class:`InductiveUIModel` — a UI model that can additionally *infer* a user
  representation from an arbitrary interaction history **without retraining**
  and expose its item embedding table.  This inductive property is what makes
  the SCCF user-based component feasible in real time (Section III-C2): when
  a user clicks a new item, her embedding is recomputed by a forward pass and
  her neighborhood is re-identified by similarity search.

Both interfaces operate on item ids in ``[0, num_items)`` and return dense
score vectors over the full catalog, matching the paper's full-item-set
evaluation protocol.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data.datasets import RecDataset

__all__ = ["Recommender", "InductiveUIModel", "exclude_seen_items"]


def exclude_seen_items(scores: np.ndarray, seen: Iterable[int]) -> np.ndarray:
    """Return a copy of ``scores`` with already-interacted items set to -inf.

    The paper "assume[s] that user u will not click items in R⁺_u once more,
    so we do not recommend items in R⁺_u".
    """

    masked = np.array(scores, dtype=np.float64, copy=True)
    seen = list(seen)
    if seen:
        masked[np.asarray(seen, dtype=np.int64)] = -np.inf
    return masked


class Recommender(abc.ABC):
    """Anything that can produce a ranked candidate list for a user."""

    #: populated by :meth:`fit`
    num_users: int = 0
    num_items: int = 0

    @abc.abstractmethod
    def fit(self, dataset: RecDataset) -> "Recommender":
        """Train (or precompute) on the dataset's training interactions."""

    @abc.abstractmethod
    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        """Score every item in the catalog for ``user_id``.

        ``history`` optionally overrides the training-time interaction history
        (used to inject the freshest events in real-time serving and to score
        test users with their validation item merged back in).
        """

    @staticmethod
    def _validate_batch_histories(
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]],
    ) -> None:
        if histories is not None and len(histories) != len(user_ids):
            raise ValueError("histories must have one entry per user id")

    def _resolve_batch_histories(
        self,
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]],
    ) -> List[List[int]]:
        """Per-user histories for a batch call: explicit entries win, ``None``
        entries fall back to the stored training histories (empty if unfitted)."""

        self._validate_batch_histories(user_ids, histories)
        stored = getattr(self, "_user_histories", None)
        resolved: List[List[int]] = []
        for position, user in enumerate(user_ids):
            history = histories[position] if histories is not None else None
            if history is None:
                history = stored.get(user, []) if stored is not None else []
            resolved.append(list(history))
        return resolved

    def score_items_batch(
        self,
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> np.ndarray:
        """Score the whole catalog for a batch of users; returns ``(B, num_items)``.

        The base implementation loops over :meth:`score_items`;
        :class:`InductiveUIModel` replaces it with one batched embedding
        inference plus a single ``(B×d)·(d×num_items)`` matmul, which is what
        the batched evaluator and serving paths ride on.
        """

        self._validate_batch_histories(user_ids, histories)
        rows = [
            self.score_items(user, history=None if histories is None else histories[position])
            for position, user in enumerate(user_ids)
        ]
        if not rows:
            return np.zeros((0, self.num_items), dtype=np.float64)
        return np.stack(rows)

    def recommend(
        self,
        user_id: int,
        k: int,
        history: Optional[Sequence[int]] = None,
        exclude: Optional[Iterable[int]] = None,
    ) -> List[int]:
        """Return the top-``k`` item ids for ``user_id`` (highest score first)."""

        if k <= 0:
            raise ValueError("k must be positive")
        scores = self.score_items(user_id, history=history)
        if exclude is not None:
            scores = exclude_seen_items(scores, exclude)
        k = min(k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        ordered = top[np.argsort(-scores[top], kind="stable")]
        return [int(item) for item in ordered if np.isfinite(scores[item])]

    @property
    def name(self) -> str:
        return type(self).__name__


class InductiveUIModel(Recommender):
    """A UI model whose user representation can be inferred on the fly.

    Concrete subclasses: :class:`~repro.models.fism.FISM`,
    :class:`~repro.models.sasrec.SASRec`,
    :class:`~repro.models.youtube_dnn.YouTubeDNN`.
    """

    @abc.abstractmethod
    def infer_user_embedding(self, history: Sequence[int]) -> np.ndarray:
        """Compute the user representation ``m_u`` from an interaction history.

        This is the inference-not-training step the framework relies on: the
        returned vector lives in the same space as :meth:`item_embeddings`, so
        UI scores are dot products and user-user similarity is a cosine.
        """

    @abc.abstractmethod
    def item_embeddings(self) -> np.ndarray:
        """The output item embedding table ``q_i`` (shape ``(num_items, dim)``)."""

    def user_embedding(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        """Embedding of a known user, defaulting to her training history."""

        if history is None:
            history = self.training_history(user_id)
        return self.infer_user_embedding(history)

    def training_history(self, user_id: int) -> List[int]:
        """The chronological training-split history of ``user_id``."""

        histories = getattr(self, "_user_histories", None)
        if histories is None:
            raise RuntimeError("model has not been fitted")
        return list(histories.get(user_id, []))

    def infer_user_embeddings_batch(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        """Stack ``infer_user_embedding`` over many histories: ``(B, dim)``.

        The base implementation is a loop fallback so any inductive model
        works unchanged; FISM / SASRec / YouTubeDNN override it with a single
        vectorized forward pass over the whole batch.  Empty histories map to
        zero vectors, matching the single-history convention.
        """

        table = np.zeros((len(histories), self.embedding_dim), dtype=np.float64)
        for row, history in enumerate(histories):
            history = list(history)
            if history:
                table[row] = self.infer_user_embedding(history)
        return table

    def all_user_embeddings(self, histories: Optional[Dict[int, Sequence[int]]] = None) -> np.ndarray:
        """Stack embeddings for every user id in ``[0, num_users)``.

        Users with empty histories receive a zero vector (they cannot be
        anyone's informative neighbor).
        """

        resolved: List[List[int]] = []
        for user in range(self.num_users):
            if histories is not None and user in histories:
                resolved.append(list(histories[user]))
            else:
                resolved.append(
                    self.training_history(user) if hasattr(self, "_user_histories") else []
                )
        return self.infer_user_embeddings_batch(resolved)

    def score_items_batch(
        self,
        user_ids: Sequence[int],
        histories: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> np.ndarray:
        """Batched eq. (10): one embedding-inference batch, one scoring matmul."""

        resolved = self._resolve_batch_histories(user_ids, histories)
        embeddings = self.infer_user_embeddings_batch(resolved)
        return embeddings @ self.item_embeddings().T

    @property
    def embedding_dim(self) -> int:
        return int(self.item_embeddings().shape[1])

    def ui_scores(self, user_embedding: np.ndarray) -> np.ndarray:
        """UI preference ``r̂^UI_{ui} = m_uᵀ q_i`` for every item (eq. 10)."""

        return np.asarray(user_embedding, dtype=np.float64) @ self.item_embeddings().T
