"""Baseline and UI recommendation models evaluated in the paper."""

from __future__ import annotations

from .base import InductiveUIModel, Recommender, exclude_seen_items
from .bprmf import BPRMF
from .fism import FISM
from .itemknn import ItemKNN
from .popularity import Popularity
from .sasrec import SASRec
from .userknn import UserKNN
from .youtube_dnn import YouTubeDNN

__all__ = [
    "Recommender",
    "InductiveUIModel",
    "exclude_seen_items",
    "Popularity",
    "ItemKNN",
    "UserKNN",
    "BPRMF",
    "FISM",
    "SASRec",
    "YouTubeDNN",
]
