"""ItemKNN baseline (Sarwar et al., 2001).

Memory-based item-to-item collaborative filtering: the cosine similarity of
item interaction columns is precomputed offline, and a user's preference for
an unseen item is the summed similarity to the items she has interacted with.
The paper uses it as the canonical "global item relations only" baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from ..data.datasets import RecDataset
from .base import Recommender

__all__ = ["ItemKNN"]


class ItemKNN(Recommender):
    """Item-based CF with cosine similarity and optional top-k pruning.

    Parameters
    ----------
    top_k:
        Keep only the ``top_k`` most similar items per item (0 keeps all).
        Pruning is what production deployments of item-to-item CF do to keep
        the similarity table small.
    """

    def __init__(self, top_k: int = 0) -> None:
        if top_k < 0:
            raise ValueError("top_k must be non-negative")
        self.top_k = top_k
        self._similarity: Optional[np.ndarray] = None
        self._user_histories = {}

    def fit(self, dataset: RecDataset) -> "ItemKNN":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        matrix = dataset.train.to_matrix(dataset.num_users, dataset.num_items)
        similarity = self._cosine_item_similarity(matrix)
        np.fill_diagonal(similarity, 0.0)
        if self.top_k:
            similarity = self._prune(similarity, self.top_k)
        self._similarity = similarity
        self._user_histories = dataset.train.user_sequences()
        return self

    @staticmethod
    def _cosine_item_similarity(matrix: sparse.csr_matrix) -> np.ndarray:
        cooccurrence = (matrix.T @ matrix).toarray().astype(np.float64)
        norms = np.sqrt(np.diag(cooccurrence))
        norms = np.where(norms > 0, norms, 1.0)
        return cooccurrence / np.outer(norms, norms)

    @staticmethod
    def _prune(similarity: np.ndarray, top_k: int) -> np.ndarray:
        if top_k >= similarity.shape[1]:
            return similarity
        pruned = np.zeros_like(similarity)
        for row in range(similarity.shape[0]):
            keep = np.argpartition(-similarity[row], kth=top_k - 1)[:top_k]
            pruned[row, keep] = similarity[row, keep]
        return pruned

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if self._similarity is None:
            raise RuntimeError("ItemKNN model has not been fitted")
        if history is None:
            history = self._user_histories.get(user_id, [])
        history = [item for item in history if 0 <= item < self.num_items]
        if not history:
            return np.zeros(self.num_items)
        return self._similarity[np.asarray(history, dtype=np.int64)].sum(axis=0)
