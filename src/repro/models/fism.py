"""FISM — Factored Item Similarity Model (Kabbur et al., 2013).

FISM is the shallow *inductive* UI model the paper uses as its first SCCF
base model.  A user is represented purely by the items she interacted with
(eq. 1):

    m_u = (1 / |R⁺_u|^α) · Σ_{j ∈ R⁺_u} p_j

so a new interaction only requires re-aggregating item vectors — inference,
not training — which is the property SCCF's real-time user-based component
relies on.  Scores are dot products ``r̂^UI_{ui} = m_uᵀ q_i`` (eq. 10) with a
*homogeneous* item embedding (``q ≡ p``), as the paper chooses "to reduce the
model size and alleviate overfitting".

Training follows eq. (9): negative-sampled binary cross-entropy over each
user's interactions, batched per user as in NAIS (He et al., 2018).  The
diagonal is excluded (an item does not predict itself), matching the original
FISM formulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.datasets import RecDataset
from ..data.sampling import UserGroupedBatcher
from ..data.sequences import recent_window
from ..nn import functional as F
from .base import InductiveUIModel

__all__ = ["FISM"]


class FISM(InductiveUIModel):
    """Factored item similarity model with α-normalized history pooling.

    Parameters
    ----------
    embedding_dim:
        Dimension of the shared item embedding space (``d``).
    alpha:
        History-normalization exponent of eq. (1); the paper sets ``α = 0.5``.
    inference_window:
        Number of most recent interactions used when inferring a user
        embedding at serving time — the paper uses "the recent 15 items ...
        since users' interests are dynamically changed".
    negatives_per_positive:
        Negative samples drawn per observed interaction during training.
    """

    def __init__(
        self,
        embedding_dim: int = 64,
        alpha: float = 0.5,
        learning_rate: float = 0.001,
        weight_decay: float = 0.0,
        num_epochs: int = 10,
        negatives_per_positive: int = 4,
        inference_window: int = 15,
        seed: int = 0,
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if inference_window <= 0:
            raise ValueError("inference_window must be positive")
        self.embedding_dim_config = embedding_dim
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.num_epochs = num_epochs
        self.negatives_per_positive = negatives_per_positive
        self.inference_window = inference_window
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.item_table: Optional[nn.Embedding] = None
        self._user_histories: Dict[int, List[int]] = {}
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: RecDataset) -> "FISM":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()
        self.item_table = nn.Embedding(self.num_items, self.embedding_dim_config, std=0.01, rng=self._rng)

        batcher = UserGroupedBatcher(dataset, self.negatives_per_positive, rng=self._rng)
        num_batches_per_epoch = max(len(batcher), 1)
        optimizer = nn.Adam(
            self.item_table.parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
            schedule=nn.LinearDecay(max(1, self.num_epochs * num_batches_per_epoch)),
        )

        for _ in range(self.num_epochs):
            epoch_loss = 0.0
            count = 0
            for batch in batcher.epoch():
                loss = self._batch_loss(batch.history, batch.positive_items, batch.negative_items)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                count += 1
            self.loss_history.append(epoch_loss / max(count, 1))
        return self

    def _batch_loss(
        self,
        history: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> nn.Tensor:
        """Negative-sampled BCE over one user's interactions (eq. 9).

        Each positive item ``i`` is predicted from the *other* items in the
        history (leave-one-out pooling, excluding the diagonal), while the
        negatives for that position are scored against the same pooled user
        vector.
        """

        history_vectors = self.item_table(history)              # (H, d)
        total = history_vectors.sum(axis=0, keepdims=True)      # (1, d)
        denom = float(max(len(history) - 1, 1)) ** self.alpha
        pooled = (total - history_vectors) / denom               # (H, d): m_u without item i

        positive_vectors = self.item_table(positives)            # (H, d)
        positive_scores = (pooled * positive_vectors).sum(axis=1)  # (H,)

        negative_vectors = self.item_table(negatives)             # (H, K, d)
        pooled_expanded = pooled.reshape(len(history), 1, self.embedding_dim_config)
        negative_scores = (pooled_expanded * negative_vectors).sum(axis=2)  # (H, K)

        logits = F.concatenate([positive_scores, negative_scores.reshape(-1)], axis=0)
        targets = np.concatenate([np.ones(len(positives)), np.zeros(negative_scores.size)])
        return F.binary_cross_entropy_with_logits(logits, targets)

    # ------------------------------------------------------------------ #
    # inductive inference (eq. 1) and scoring (eq. 10)
    # ------------------------------------------------------------------ #
    def infer_user_embedding(self, history: Sequence[int]) -> np.ndarray:
        if self.item_table is None:
            raise RuntimeError("FISM model has not been fitted")
        window = recent_window([i for i in history if 0 <= i < self.num_items], self.inference_window)
        if not window:
            return np.zeros(self.embedding_dim_config)
        vectors = self.item_table.weight.data[np.asarray(window, dtype=np.int64)]
        return vectors.sum(axis=0) / float(len(window)) ** self.alpha

    def infer_user_embeddings_batch(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        """Vectorized eq. (1) over a batch: one gather + one masked sum.

        Windows are right-padded into a ``(B, window)`` id matrix; padded
        positions contribute zero vectors, so the masked sum equals the
        per-user pooling of :meth:`infer_user_embedding` exactly.
        """

        if self.item_table is None:
            raise RuntimeError("FISM model has not been fitted")
        if not len(histories):
            return np.zeros((0, self.embedding_dim_config), dtype=np.float64)
        windows = [
            recent_window([i for i in history if 0 <= i < self.num_items], self.inference_window)
            for history in histories
        ]
        lengths = np.asarray([len(window) for window in windows], dtype=np.int64)
        padded = np.zeros((len(windows), self.inference_window), dtype=np.int64)
        mask = np.zeros((len(windows), self.inference_window), dtype=np.float64)
        for row, window in enumerate(windows):
            if window:
                padded[row, : len(window)] = window
                mask[row, : len(window)] = 1.0
        vectors = self.item_table.weight.data[padded]              # (B, W, d)
        pooled = (vectors * mask[:, :, None]).sum(axis=1)          # (B, d)
        denom = np.maximum(lengths, 1).astype(np.float64) ** self.alpha
        pooled /= denom[:, None]
        return pooled

    def item_embeddings(self) -> np.ndarray:
        if self.item_table is None:
            raise RuntimeError("FISM model has not been fitted")
        return self.item_table.weight.data

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if history is None:
            history = self._user_histories.get(user_id, [])
        return self.ui_scores(self.infer_user_embedding(history))
