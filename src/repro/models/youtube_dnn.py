"""YouTube-DNN-style candidate generator (Covington et al., 2016).

The online A/B test in Section IV-F compares SCCF against "a deep model
similar to the method proposed by Covington et al." as the production
baseline.  This module implements that baseline in the same inductive-UI
shape used elsewhere in the library: the user's recent item embeddings are
averaged and passed through a small feed-forward tower, and the output vector
is matched against the item embedding table with a dot product.  Training is
negative-sampled next-item binary classification, exactly like the other UI
models, so the A/B simulator can serve either model interchangeably.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.datasets import RecDataset
from ..data.sampling import NegativeSampler
from ..data.sequences import recent_window
from ..nn import functional as F
from .base import InductiveUIModel

__all__ = ["YouTubeDNN"]


class YouTubeDNN(InductiveUIModel):
    """Averaged-history DNN retrieval model used as the online A/B baseline."""

    def __init__(
        self,
        embedding_dim: int = 64,
        hidden_dims: Sequence[int] = (64,),
        history_window: int = 15,
        learning_rate: float = 0.001,
        weight_decay: float = 0.0,
        num_epochs: int = 8,
        negatives_per_positive: int = 4,
        batch_size: int = 128,
        seed: int = 0,
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if history_window <= 0:
            raise ValueError("history_window must be positive")
        self.embedding_dim_config = embedding_dim
        self.hidden_dims = tuple(hidden_dims)
        self.history_window = history_window
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.num_epochs = num_epochs
        self.negatives_per_positive = negatives_per_positive
        self.batch_size = batch_size
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.item_table: Optional[nn.Embedding] = None
        self.tower: Optional[nn.MLP] = None
        self._user_histories: Dict[int, List[int]] = {}
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: RecDataset) -> "YouTubeDNN":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()
        self.item_table = nn.Embedding(self.num_items, self.embedding_dim_config, std=0.01, rng=self._rng)
        self.tower = nn.MLP(
            input_dim=self.embedding_dim_config,
            hidden_dims=self.hidden_dims,
            output_dim=self.embedding_dim_config,
            rng=self._rng,
        )
        parameters = list(self.item_table.parameters()) + list(self.tower.parameters())

        examples = self._build_examples()
        if not examples:
            return self
        sampler = NegativeSampler(self.num_items, self._rng)
        user_sets = {user: set(seq) for user, seq in self._user_histories.items()}
        steps = max(1, self.num_epochs * ((len(examples) + self.batch_size - 1) // self.batch_size))
        optimizer = nn.Adam(
            parameters,
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
            schedule=nn.LinearDecay(steps),
        )

        for _ in range(self.num_epochs):
            self._rng.shuffle(examples)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(examples), self.batch_size):
                chunk = examples[start:start + self.batch_size]
                loss = self._batch_loss(chunk, sampler, user_sets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        self.tower.eval()
        return self

    def _build_examples(self) -> List[tuple]:
        """(user, history_prefix, target) training triples from each sequence."""

        examples: List[tuple] = []
        for user, sequence in self._user_histories.items():
            if len(sequence) < 2:
                continue
            for split in range(1, len(sequence)):
                prefix = recent_window(sequence[:split], self.history_window)
                examples.append((user, tuple(prefix), sequence[split]))
        return examples

    def _forward_user(self, histories: List[Sequence[int]]) -> nn.Tensor:
        """Average the history item embeddings and apply the tower."""

        pooled_rows = []
        for history in histories:
            ids = np.asarray(history, dtype=np.int64)
            vectors = self.item_table(ids)
            pooled_rows.append(vectors.mean(axis=0, keepdims=True))
        pooled = F.concatenate(pooled_rows, axis=0) if len(pooled_rows) > 1 else pooled_rows[0]
        return self.tower(pooled)

    def _batch_loss(self, chunk: List[tuple], sampler: NegativeSampler, user_sets: Dict[int, set]) -> nn.Tensor:
        histories = [list(example[1]) for example in chunk]
        positives = np.asarray([example[2] for example in chunk], dtype=np.int64)
        negatives = np.stack(
            [
                sampler.sample(user_sets.get(example[0], set()), self.negatives_per_positive)
                for example in chunk
            ]
        )
        user_vectors = self._forward_user(histories)                        # (B, d)
        positive_vectors = self.item_table(positives)                       # (B, d)
        negative_vectors = self.item_table(negatives)                       # (B, K, d)

        positive_logits = (user_vectors * positive_vectors).sum(axis=1)     # (B,)
        expanded = user_vectors.reshape(len(chunk), 1, self.embedding_dim_config)
        negative_logits = (expanded * negative_vectors).sum(axis=2)         # (B, K)

        logits = F.concatenate([positive_logits, negative_logits.reshape(-1)], axis=0)
        targets = np.concatenate([np.ones(len(chunk)), np.zeros(negative_logits.size)])
        return F.binary_cross_entropy_with_logits(logits, targets)

    # ------------------------------------------------------------------ #
    # inductive inference
    # ------------------------------------------------------------------ #
    def infer_user_embedding(self, history: Sequence[int]) -> np.ndarray:
        if self.item_table is None or self.tower is None:
            raise RuntimeError("YouTubeDNN model has not been fitted")
        history = [item for item in history if 0 <= item < self.num_items]
        window = recent_window(history, self.history_window)
        if not window:
            return np.zeros(self.embedding_dim_config)
        self.tower.eval()
        with nn.no_grad():
            vectors = self.item_table(np.asarray(window, dtype=np.int64))
            pooled = vectors.mean(axis=0, keepdims=True)
            output = self.tower(pooled)
        return output.data[0].copy()

    def infer_user_embeddings_batch(
        self, histories: Sequence[Sequence[int]], chunk_size: int = 512
    ) -> np.ndarray:
        """Batched inference: pooled windows stacked into one tower forward."""

        if self.item_table is None or self.tower is None:
            raise RuntimeError("YouTubeDNN model has not been fitted")
        table = np.zeros((len(histories), self.embedding_dim_config), dtype=np.float64)
        rows: List[int] = []
        pooled_rows: List[np.ndarray] = []
        weights = self.item_table.weight.data
        for row, history in enumerate(histories):
            window = recent_window(
                [item for item in history if 0 <= item < self.num_items], self.history_window
            )
            if window:
                rows.append(row)
                pooled_rows.append(weights[np.asarray(window, dtype=np.int64)].mean(axis=0))
        if not rows:
            return table
        pooled = np.stack(pooled_rows)
        self.tower.eval()
        with nn.no_grad():
            for start in range(0, len(pooled), chunk_size):
                chunk_rows = rows[start:start + chunk_size]
                output = self.tower(nn.Tensor(pooled[start:start + chunk_size]))
                table[chunk_rows] = output.data
        return table

    def item_embeddings(self) -> np.ndarray:
        if self.item_table is None:
            raise RuntimeError("YouTubeDNN model has not been fitted")
        return self.item_table.weight.data

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if history is None:
            history = self._user_histories.get(user_id, [])
        return self.ui_scores(self.infer_user_embedding(history))
