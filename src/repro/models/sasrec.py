"""SASRec — Self-Attentive Sequential Recommendation (Kang & McAuley, 2018).

SASRec is the deep sequential UI model of the paper (Section III-B, Figure 3):
a left-to-right Transformer encoder over the user's interaction sequence whose
output at the last position is the user representation ``m_u`` (eq. 8).
Because that representation is produced by a forward pass over the (possibly
brand-new) sequence, SASRec is *inductive* and can feed the SCCF user-based
component in real time.

Implementation notes matching the paper's settings:

* learnable position embeddings added to item embeddings (eq. 2), sequences
  truncated to the most recent ``L`` items (eq. 3);
* causal attention — position ``t`` attends only to positions ``≤ t`` — with
  padded positions masked out;
* residual + dropout + layer-norm wrapping of each sub-layer (eq. 7);
* homogeneous item embeddings: the output item vectors ``q_i`` are the same
  table used at the input, "like SASRec";
* training on shifted next-item targets with one sampled negative per
  position and binary cross-entropy (eq. 9), optimized with Adam.

Item id 0 is reserved as padding inside the model; public APIs use the
dataset's 0-based item ids and the shift is applied internally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..data.datasets import RecDataset
from ..data.sampling import SequenceBatcher
from ..data.sequences import pad_and_truncate
from ..nn import functional as F
from ..nn.attention import causal_mask
from .base import InductiveUIModel

__all__ = ["SASRec"]


class _SASRecNetwork(nn.Module):
    """The Transformer encoder stack operating on shifted (1-based) item ids."""

    def __init__(
        self,
        num_items: int,
        embedding_dim: int,
        max_length: int,
        num_layers: int,
        num_heads: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.max_length = max_length
        self.embedding_dim = embedding_dim
        self.num_layers = num_layers
        # Row 0 is the padding item; real items occupy rows 1..num_items.
        self.item_table = nn.Embedding(num_items + 1, embedding_dim, padding_idx=0, std=0.01, rng=rng)
        self.position_table = nn.Embedding(max_length, embedding_dim, std=0.01, rng=rng)
        self.input_dropout = nn.Dropout(dropout, rng=rng)
        self._layer_names: List[str] = []
        for layer in range(num_layers):
            name = f"block{layer}"
            self.add_module(
                name,
                nn.TransformerEncoderLayer(
                    embedding_dim, num_heads=num_heads, dropout=dropout, rng=rng
                ),
            )
            self._layer_names.append(name)
        self.final_norm = nn.LayerNorm(embedding_dim)

    def forward(self, sequences: np.ndarray) -> nn.Tensor:
        """Encode padded 1-based sequences of shape ``(batch, max_length)``."""

        sequences = np.asarray(sequences, dtype=np.int64)
        batch, length = sequences.shape
        positions = np.broadcast_to(np.arange(length), (batch, length))
        hidden = self.item_table(sequences) + self.position_table(positions)
        hidden = self.input_dropout(hidden)

        padding = sequences == 0                               # (B, L) True where padded
        attention_mask = causal_mask(length)[None, :, :] | padding[:, None, :]
        for name in self._layer_names:
            hidden = self._modules[name](hidden, mask=attention_mask)
        return self.final_norm(hidden)


class SASRec(InductiveUIModel):
    """Self-attentive sequential recommender with the paper's hyper-parameters.

    Defaults follow Kang & McAuley as cited by the paper: 2 Transformer
    layers, 1 attention head, dropout regularization, Adam with lr 1e-3.
    ``max_length`` should be 200 for the MovieLens analogs and 50 for the
    Amazon analogs (the experiment configs set this per dataset).
    """

    def __init__(
        self,
        embedding_dim: int = 64,
        max_length: int = 50,
        num_layers: int = 2,
        num_heads: int = 1,
        dropout: float = 0.2,
        learning_rate: float = 0.001,
        weight_decay: float = 0.0,
        num_epochs: int = 10,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if embedding_dim <= 0 or max_length <= 1:
            raise ValueError("embedding_dim must be positive and max_length at least 2")
        if num_layers <= 0 or num_heads <= 0:
            raise ValueError("num_layers and num_heads must be positive")
        self.embedding_dim_config = embedding_dim
        self.max_length = max_length
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.dropout = dropout
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.network: Optional[_SASRecNetwork] = None
        self._user_histories: Dict[int, List[int]] = {}
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(self, dataset: RecDataset) -> "SASRec":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()
        self.network = _SASRecNetwork(
            num_items=self.num_items,
            embedding_dim=self.embedding_dim_config,
            max_length=self.max_length,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            dropout=self.dropout,
            rng=self._rng,
        )
        batcher = SequenceBatcher(dataset, self.max_length, self.batch_size, rng=self._rng)
        steps_per_epoch = max(len(batcher), 1)
        optimizer = nn.Adam(
            self.network.parameters(),
            lr=self.learning_rate,
            weight_decay=self.weight_decay,
            schedule=nn.LinearDecay(max(1, self.num_epochs * steps_per_epoch)),
        )

        for _ in range(self.num_epochs):
            self.network.train()
            epoch_loss = 0.0
            count = 0
            for batch in batcher.epoch():
                loss = self._batch_loss(
                    batch.input_sequences, batch.positive_targets, batch.negative_targets, batch.mask
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                self.network.item_table.zero_padding_row()
                epoch_loss += loss.item()
                count += 1
            self.loss_history.append(epoch_loss / max(count, 1))
        self.network.eval()
        return self

    def _batch_loss(
        self,
        inputs: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
        mask: np.ndarray,
    ) -> nn.Tensor:
        """Masked next-item BCE over every valid position (eq. 9)."""

        hidden = self.network(inputs)                              # (B, L, d)
        positive_vectors = self.network.item_table(positives)      # (B, L, d)
        negative_vectors = self.network.item_table(negatives)      # (B, L, d)
        positive_logits = (hidden * positive_vectors).sum(axis=2)  # (B, L)
        negative_logits = (hidden * negative_vectors).sum(axis=2)  # (B, L)

        mask_tensor = nn.Tensor(mask)
        positive_losses = F.binary_cross_entropy_with_logits(
            positive_logits, np.ones_like(mask), reduction="none"
        )
        negative_losses = F.binary_cross_entropy_with_logits(
            negative_logits, np.zeros_like(mask), reduction="none"
        )
        total = ((positive_losses + negative_losses) * mask_tensor).sum()
        return total / float(max(mask.sum(), 1.0))

    # ------------------------------------------------------------------ #
    # inductive inference (eq. 8) and scoring (eq. 10)
    # ------------------------------------------------------------------ #
    def infer_user_embedding(self, history: Sequence[int]) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("SASRec model has not been fitted")
        history = [item for item in history if 0 <= item < self.num_items]
        if not history:
            return np.zeros(self.embedding_dim_config)
        shifted = [item + 1 for item in history]
        padded = pad_and_truncate(shifted, self.max_length)[None, :]
        self.network.eval()
        with nn.no_grad():
            hidden = self.network(padded)
        return hidden.data[0, -1].copy()

    def infer_user_embeddings_batch(
        self, histories: Sequence[Sequence[int]], chunk_size: int = 256
    ) -> np.ndarray:
        """Batched eq. (8): encode many padded sequences per Transformer forward.

        Non-empty histories are stacked into ``(chunk, max_length)`` blocks so
        the encoder amortizes its matmuls across users; empty histories get
        zero vectors without touching the network.
        """

        if self.network is None:
            raise RuntimeError("SASRec model has not been fitted")
        table = np.zeros((len(histories), self.embedding_dim_config), dtype=np.float64)
        rows: List[int] = []
        padded: List[np.ndarray] = []
        for row, history in enumerate(histories):
            cleaned = [item + 1 for item in history if 0 <= item < self.num_items]
            if cleaned:
                rows.append(row)
                padded.append(pad_and_truncate(cleaned, self.max_length))
        if not rows:
            return table
        sequences = np.stack(padded)
        self.network.eval()
        with nn.no_grad():
            for start in range(0, len(sequences), chunk_size):
                chunk_rows = rows[start:start + chunk_size]
                hidden = self.network(sequences[start:start + chunk_size])
                table[chunk_rows] = hidden.data[:, -1]
        return table

    def item_embeddings(self) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("SASRec model has not been fitted")
        # Drop the padding row so indices line up with dataset item ids.
        return self.network.item_table.weight.data[1:]

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if history is None:
            history = self._user_histories.get(user_id, [])
        return self.ui_scores(self.infer_user_embedding(history))
