"""UserKNN baseline (Sarwar et al., 2000) — the transductive user-based CF.

UserKNN computes user-user similarity directly on the high-dimensional sparse
interaction vectors (eq. 13 uses the co-interaction count normalized by the
profile sizes; we use the standard cosine variant the paper cites for its
experiments).  Predictions follow eq. (12): the preference for item ``i`` is
the similarity-weighted count of neighbors who interacted with it.

Two properties matter for the reproduction:

* it is the strongest *user-based* baseline in Table II, and
* it is **transductive** — when a user gains a new interaction, the relevant
  row of the similarity matrix must be recomputed against every other user's
  sparse profile, which is the expensive path measured in Table III.
  :meth:`realtime_update_and_recommend` implements exactly that path so the
  latency benchmark can time it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..data.datasets import RecDataset
from .base import Recommender

__all__ = ["UserKNN"]


class UserKNN(Recommender):
    """User-based CF with cosine similarity over raw interaction vectors."""

    def __init__(self, num_neighbors: int = 100) -> None:
        if num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        self.num_neighbors = num_neighbors
        self._matrix: Optional[sparse.csr_matrix] = None
        self._norms: Optional[np.ndarray] = None
        self._user_histories: Dict[int, List[int]] = {}

    def fit(self, dataset: RecDataset) -> "UserKNN":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._matrix = dataset.train.to_matrix(dataset.num_users, dataset.num_items)
        self._norms = self._row_norms(self._matrix)
        self._user_histories = dataset.train.user_sequences()
        return self

    @staticmethod
    def _row_norms(matrix: sparse.csr_matrix) -> np.ndarray:
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)).reshape(-1))
        return np.where(norms > 0, norms, 1.0)

    # ------------------------------------------------------------------ #
    # similarity + scoring
    # ------------------------------------------------------------------ #
    def _similarities_for_vector(self, user_vector: sparse.csr_matrix, self_index: Optional[int]) -> np.ndarray:
        """Cosine similarity between one user profile and every other user."""

        overlaps = np.asarray((self._matrix @ user_vector.T).todense()).reshape(-1)
        norm = np.sqrt(user_vector.multiply(user_vector).sum())
        norm = norm if norm > 0 else 1.0
        similarities = overlaps / (self._norms * norm)
        if self_index is not None and 0 <= self_index < len(similarities):
            similarities[self_index] = -np.inf
        return similarities

    def _score_from_similarities(self, similarities: np.ndarray, exclude_items: Sequence[int]) -> np.ndarray:
        k = min(self.num_neighbors, max(len(similarities) - 1, 1))
        top = np.argpartition(-similarities, kth=k - 1)[:k]
        top = top[np.isfinite(similarities[top])]
        top = top[similarities[top] > 0]
        scores = np.zeros(self.num_items)
        if len(top) == 0:
            return scores
        weights = similarities[top]
        neighbor_matrix = self._matrix[top]
        scores = np.asarray(neighbor_matrix.T @ weights).reshape(-1)
        if len(exclude_items):
            scores[np.asarray(list(exclude_items), dtype=np.int64)] = 0.0
        return scores

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if self._matrix is None:
            raise RuntimeError("UserKNN model has not been fitted")
        if history is None:
            history = self._user_histories.get(user_id, [])
            user_vector = self._matrix[user_id] if 0 <= user_id < self.num_users else self._vector_from_history(history)
            self_index = user_id
        else:
            user_vector = self._vector_from_history(history)
            self_index = user_id if 0 <= user_id < self.num_users else None
        similarities = self._similarities_for_vector(user_vector, self_index)
        return self._score_from_similarities(similarities, [])

    def _vector_from_history(self, history: Sequence[int]) -> sparse.csr_matrix:
        history = [item for item in history if 0 <= item < self.num_items]
        data = np.ones(len(history))
        rows = np.zeros(len(history), dtype=np.int64)
        cols = np.asarray(history, dtype=np.int64)
        return sparse.csr_matrix((data, (rows, cols)), shape=(1, self.num_items))

    # ------------------------------------------------------------------ #
    # real-time (transductive) path for the Table III latency comparison
    # ------------------------------------------------------------------ #
    def realtime_update_and_recommend(self, user_id: int, new_item: int, k: int = 50) -> List[int]:
        """Apply one new interaction and recompute recommendations from scratch.

        This is the operation a deployed UserKNN would have to run when a
        user clicks a new item: update her sparse profile, recompute her
        similarity to *every* other user over the item dimension, then rescore.
        Its cost grows with the number of items, which is the scalability
        wall Table III illustrates.
        """

        if self._matrix is None:
            raise RuntimeError("UserKNN model has not been fitted")
        if not 0 <= new_item < self.num_items:
            raise ValueError("new_item id out of range")
        lil = self._matrix.tolil()
        lil[user_id, new_item] = 1.0
        self._matrix = lil.tocsr()
        self._norms = self._row_norms(self._matrix)
        self._user_histories.setdefault(user_id, []).append(new_item)

        similarities = self._similarities_for_vector(self._matrix[user_id], user_id)
        scores = self._score_from_similarities(similarities, self._user_histories[user_id])
        k = min(k, self.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return [int(i) for i in top[np.argsort(-scores[top], kind="stable")]]
