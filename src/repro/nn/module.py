"""``Module`` / ``Parameter`` abstractions for composing neural models.

Mirrors the familiar torch-style API at the scale this project needs:
parameter registration by attribute assignment, recursive ``parameters()``,
``train()``/``eval()`` mode switching (used by dropout), and state-dict
(de)serialization for checkpointing trained recommenders.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import ArrayLike, Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable and owned by a module."""

    def __init__(self, data: ArrayLike, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter in this module and its submodules."""

        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (useful for model-size reporting)."""

        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to copies of their arrays."""

        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""

        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args: Any, **kwargs: Any) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)
