"""NumPy-backed neural network substrate (autograd, layers, optimizers).

This package stands in for the TensorFlow stack the paper used; see DESIGN.md
for the substitution rationale.  Public surface:

* :class:`~repro.nn.tensor.Tensor`, :func:`~repro.nn.tensor.no_grad`
* ``repro.nn.functional`` — embedding lookup, softmax, dropout, losses
* layers: :class:`Linear`, :class:`Embedding`, :class:`LayerNorm`,
  :class:`Dropout`, :class:`MLP`, :class:`Sequential`
* attention: :class:`MultiHeadSelfAttention`, :class:`TransformerEncoderLayer`
* optimizers: :class:`Adam`, :class:`SGD` with LR schedules
* checkpointing: :func:`save_checkpoint` / :func:`load_checkpoint`
"""

from __future__ import annotations

from . import functional
from . import init
from .attention import (
    MultiHeadSelfAttention,
    PositionwiseFeedForward,
    TransformerEncoderLayer,
    causal_mask,
    scaled_dot_product_attention,
)
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, ReLU, Sequential, Sigmoid, Tanh
from .module import Module, Parameter
from .optim import SGD, Adam, ConstantSchedule, LinearDecay, Optimizer, StepDecay
from .serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "MLP",
    "MultiHeadSelfAttention",
    "PositionwiseFeedForward",
    "TransformerEncoderLayer",
    "causal_mask",
    "scaled_dot_product_attention",
    "Optimizer",
    "SGD",
    "Adam",
    "ConstantSchedule",
    "LinearDecay",
    "StepDecay",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_dict",
    "load_state_dict",
]
