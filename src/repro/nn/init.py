"""Parameter initialization schemes.

The paper initializes all parameters "by truncated normal distribution in the
range [-0.01, 0.01]"; we provide that initializer plus the standard Xavier
variants used for the feed-forward layers of the Transformer blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["truncated_normal", "xavier_uniform", "xavier_normal", "zeros", "ones"]


def truncated_normal(
    shape: Tuple[int, ...],
    std: float = 0.01,
    bound: float = 2.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample a truncated normal: values beyond ``bound`` standard deviations are re-drawn."""

    rng = rng or np.random.default_rng()
    samples = rng.normal(0.0, std, size=shape)
    limit = bound * std
    out_of_range = np.abs(samples) > limit
    # Redraw until everything falls inside the truncation bound.  With a
    # 2-sigma bound the expected number of redraw rounds is tiny (<5%).
    while np.any(out_of_range):
        samples[out_of_range] = rng.normal(0.0, std, size=int(out_of_range.sum()))
        out_of_range = np.abs(samples) > limit
    return samples


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot uniform initialization for dense layers."""

    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot normal initialization for dense layers."""

    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
