"""Checkpointing helpers for trained recommenders.

A production candidate-generation service trains offline and serves online;
saving / restoring model parameters is the seam between the two.  We persist
state dicts as compressed ``.npz`` archives plus a small JSON sidecar with
arbitrary metadata (model hyper-parameters, dataset name, training step).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state_dict", "load_state_dict"]

PathLike = Union[str, Path]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Write a flat name→array mapping to ``path`` (``.npz``)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a mapping written by :func:`save_state_dict`."""

    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_checkpoint(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist ``module``'s parameters and optional metadata next to them."""

    path = Path(path)
    saved = save_state_dict(module.state_dict(), path)
    meta_path = saved.with_suffix(".json")
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(metadata or {}, handle, indent=2, sort_keys=True)
    return saved


def load_checkpoint(module: Module, path: PathLike) -> Tuple[Module, Dict[str, Any]]:
    """Restore parameters into ``module`` and return ``(module, metadata)``."""

    path = Path(path)
    state = load_state_dict(path)
    module.load_state_dict(state)
    candidates = [path.with_suffix(".json")]
    if path.suffix != ".npz":
        candidates.append(path.with_suffix(path.suffix + ".json"))
    metadata: Dict[str, Any] = {}
    for meta_path in candidates:
        if meta_path.exists():
            with open(meta_path, "r", encoding="utf-8") as handle:
                metadata = json.load(handle)
            break
    return module, metadata
