"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These are the composite ops the recommendation models need beyond the tensor
primitives: embedding lookup (the backbone of FISM / SASRec / BPR-MF),
numerically-stable softmax for self-attention, dropout, concatenation for the
SCCF integrating network input (eq. 16 of the paper), and masking helpers for
attention over padded sequences.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "embedding",
    "softmax",
    "log_softmax",
    "concatenate",
    "stack",
    "dropout",
    "where",
    "masked_fill",
    "relu",
    "sigmoid",
    "tanh",
    "clip",
    "binary_cross_entropy_with_logits",
    "bpr_loss",
    "l2_penalty",
]


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices``.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + (embedding_dim,)``.  Gradients are scatter-added back to
    the rows of ``weight``, so repeated indices accumulate correctly.
    """

    indices = np.asarray(indices, dtype=np.int64)
    data = weight.data[indices]

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            if weight.requires_grad:
                grad = np.zeros_like(weight.data)
                np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, weight.data.shape[1]))
                weight._accumulate(grad)

        return _backward

    return Tensor._make(data, (weight,), make_backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""

    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax computed via the stable shifted formulation."""

    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""

    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if not tensor.requires_grad:
                    continue
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(out.grad[tuple(slicer)])

        return _backward

    return Tensor._make(data, tuple(tensors), make_backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""

    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            for i, tensor in enumerate(tensors):
                if not tensor.requires_grad:
                    continue
                tensor._accumulate(np.take(out.grad, i, axis=axis))

        return _backward

    return Tensor._make(data, tuple(tensors), make_backward)


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero activations with probability ``rate`` and rescale.

    Dropout is the regularizer SASRec relies on (the paper trains SASRec
    "with dropout mechanism to avoid overfitting"); FISM instead uses early
    stopping, so ``rate`` of zero is a no-op fast path.
    """

    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return x * Tensor(mask)


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Element-wise select ``x`` where ``condition`` else ``y``."""

    condition = np.asarray(condition, dtype=bool)
    x = as_tensor(x)
    y = as_tensor(y)
    data = np.where(condition, x.data, y.data)

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            if x.requires_grad:
                from .tensor import _unbroadcast

                x._accumulate(_unbroadcast(out.grad * condition, x.shape))
            if y.requires_grad:
                from .tensor import _unbroadcast

                y._accumulate(_unbroadcast(out.grad * (~condition), y.shape))

        return _backward

    return Tensor._make(data, (x, y), make_backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is True with ``value`` (e.g. -inf before softmax)."""

    return where(np.asarray(mask, dtype=bool), Tensor(np.full(x.shape, value)), x)


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clamp (gradient is zero outside ``[low, high]``)."""

    data = np.clip(x.data, low, high)

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            if x.requires_grad:
                inside = ((x.data >= low) & (x.data <= high)).astype(np.float64)
                x._accumulate(out.grad * inside)

        return _backward

    return Tensor._make(data, (x,), make_backward)


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    reduction: str = "mean",
) -> Tensor:
    """Numerically stable BCE on raw scores.

    This is the learning objective of eq. (9) and eq. (17) in the paper: the
    observed interactions are positives, sampled unobserved ones negatives,
    and the score is squashed by a sigmoid.  We use the log-sum-exp form
    ``max(z, 0) - z * y + log(1 + exp(-|z|))`` to avoid overflow.
    """

    targets = np.asarray(targets, dtype=np.float64)
    z = logits.data

    data = np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))

    def make_backward(out: Tensor) -> Callable[[], None]:
        def _backward() -> None:
            if logits.requires_grad:
                sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
                logits._accumulate(out.grad * (sig - targets))

        return _backward

    losses = Tensor._make(data, (logits,), make_backward)
    if reduction == "mean":
        return losses.mean()
    if reduction == "sum":
        return losses.sum()
    if reduction == "none":
        return losses
    raise ValueError(f"unknown reduction: {reduction!r}")


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
    """Bayesian Personalized Ranking loss: -log sigmoid(pos - neg), averaged.

    Used by the BPR-MF baseline (Rendle et al., 2009).
    """

    diff = positive_scores - negative_scores
    return binary_cross_entropy_with_logits(diff, np.ones(diff.shape))


def l2_penalty(parameters: Sequence[Tensor]) -> Tensor:
    """Sum of squared parameter values, the λ‖Θ‖² term of eqs. (9) and (17)."""

    total: Optional[Tensor] = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(np.zeros(()))
    return total
