"""Transformer encoder components for the SASRec UI model.

Implements Section III-B of the paper (and Figure 3): scaled dot-product
attention (eq. 4), multi-head self-attention (eq. 5), the position-wise
feed-forward network (eq. 6), and the residual / layer-norm / dropout
wrapping of eq. (7).  SASRec is *causal*: position ``t`` may only attend to
positions ``≤ t``, which is enforced with an upper-triangular mask, and padded
positions are masked out entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor

__all__ = [
    "scaled_dot_product_attention",
    "MultiHeadSelfAttention",
    "PositionwiseFeedForward",
    "TransformerEncoderLayer",
    "causal_mask",
]

_NEG_INF = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask of shape ``(length, length)``; True marks *disallowed* attention."""

    return np.triu(np.ones((length, length), dtype=bool), k=1)


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Attention(Q, K, V) = softmax(QKᵀ / √d) V  (eq. 4).

    ``mask`` is broadcastable to the attention-score shape; True entries are
    filled with a large negative number before the softmax.
    """

    d = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) / np.sqrt(float(d))
    if mask is not None:
        scores = F.masked_fill(scores, np.broadcast_to(mask, scores.shape), _NEG_INF)
    weights = F.softmax(scores, axis=-1)
    return weights.matmul(value)


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with separate Q/K/V projections per eq. (5)."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int = 1,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError(f"hidden_dim ({hidden_dim}) must be divisible by num_heads ({num_heads})")
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.query_proj = Linear(hidden_dim, hidden_dim, rng=rng)
        self.key_proj = Linear(hidden_dim, hidden_dim, rng=rng)
        self.value_proj = Linear(hidden_dim, hidden_dim, rng=rng)
        self.output_proj = Linear(hidden_dim, hidden_dim, rng=rng)
        self.attention_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, D) -> (B, H, L, D/H)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, H, L, D/H) -> (B, L, D)
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.hidden_dim)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Self-attend over ``x`` of shape ``(batch, length, hidden_dim)``."""

        batch, length, _ = x.shape
        query = self._split_heads(self.query_proj(x), batch, length)
        key = self._split_heads(self.key_proj(x), batch, length)
        value = self._split_heads(self.value_proj(x), batch, length)
        if mask is not None:
            # Expand (L, L) or (B, L, L) masks with a head axis.
            mask = np.asarray(mask, dtype=bool)
            if mask.ndim == 2:
                mask = mask[None, None, :, :]
            elif mask.ndim == 3:
                mask = mask[:, None, :, :]
        attended = scaled_dot_product_attention(query, key, value, mask=mask)
        attended = self.attention_dropout(attended)
        return self.output_proj(self._merge_heads(attended, batch, length))


class PositionwiseFeedForward(Module):
    """Two-layer ReLU feed-forward network applied independently at each position (eq. 6)."""

    def __init__(
        self,
        hidden_dim: int,
        inner_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        inner_dim = inner_dim or hidden_dim
        self.first = Linear(hidden_dim, inner_dim, rng=rng)
        self.second = Linear(inner_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.second(self.dropout(self.first(x).relu()))


class TransformerEncoderLayer(Module):
    """One SASRec block: attention and FFN sub-layers, each wrapped per eq. (7).

    ``LayerNorm(x + Dropout(sublayer(x)))``
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int = 1,
        inner_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(hidden_dim, num_heads, dropout=dropout, rng=rng)
        self.feed_forward = PositionwiseFeedForward(hidden_dim, inner_dim, dropout=dropout, rng=rng)
        self.attention_norm = LayerNorm(hidden_dim)
        self.feed_forward_norm = LayerNorm(hidden_dim)
        self.attention_residual_dropout = Dropout(dropout, rng=rng)
        self.feed_forward_residual_dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, mask=mask)
        x = self.attention_norm(x + self.attention_residual_dropout(attended))
        transformed = self.feed_forward(x)
        return self.feed_forward_norm(x + self.feed_forward_residual_dropout(transformed))
