"""Optimizers and learning-rate schedules.

The paper optimizes every model "by Adam optimizer with the learning rate of
0.001, β1 = 0.9, β2 = 0.999, and linear decay of the learning rate" — both of
those pieces live here, along with plain SGD for comparisons and a step decay
schedule used in ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LearningRateSchedule", "LinearDecay", "StepDecay", "ConstantSchedule"]


class LearningRateSchedule:
    """Maps a step counter to a learning-rate multiplier in ``(0, 1]``."""

    def multiplier(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class ConstantSchedule(LearningRateSchedule):
    def multiplier(self, step: int) -> float:
        return 1.0


class LinearDecay(LearningRateSchedule):
    """Linearly decay from 1.0 to ``final_fraction`` over ``total_steps``."""

    def __init__(self, total_steps: int, final_fraction: float = 0.1) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if not 0.0 <= final_fraction <= 1.0:
            raise ValueError("final_fraction must be in [0, 1]")
        self.total_steps = total_steps
        self.final_fraction = final_fraction

    def multiplier(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        return 1.0 - (1.0 - self.final_fraction) * progress


class StepDecay(LearningRateSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def multiplier(self, step: int) -> float:
        return float(self.gamma ** (step // self.step_size))


class Optimizer:
    """Base optimizer holding the parameter list and a schedule."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        weight_decay: float = 0.0,
        schedule: Optional[LearningRateSchedule] = None,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay
        self.schedule = schedule or ConstantSchedule()
        self.step_count = 0

    @property
    def current_lr(self) -> float:
        return self.lr * self.schedule.multiplier(self.step_count)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _grad(self, param: Parameter) -> Optional[np.ndarray]:
        """Return the effective gradient including decoupled L2 weight decay."""

        if param.grad is None:
            return None
        if self.weight_decay:
            return param.grad + self.weight_decay * param.data
        return param.grad


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: Optional[LearningRateSchedule] = None,
    ) -> None:
        super().__init__(parameters, lr, weight_decay, schedule)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        lr = self.current_lr
        for param in self.parameters:
            grad = self._grad(param)
            if grad is None:
                continue
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data = param.data - lr * update
        self.step_count += 1


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction — the paper's optimizer."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        schedule: Optional[LearningRateSchedule] = None,
    ) -> None:
        super().__init__(parameters, lr, weight_decay, schedule)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        lr = self.current_lr
        self.step_count += 1
        t = self.step_count
        for param in self.parameters:
            grad = self._grad(param)
            if grad is None:
                continue
            m = self._first_moment.get(id(param))
            v = self._second_moment.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._first_moment[id(param)] = m
            self._second_moment[id(param)] = v
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            param.data = param.data - lr * m_hat / (np.sqrt(v_hat) + self.eps)
