"""A minimal reverse-mode automatic differentiation engine backed by NumPy.

The paper implements its models (FISM, SASRec, the SCCF integrating MLP) in
TensorFlow.  TensorFlow and PyTorch are not available in this offline
environment, so this module provides the substrate those models need: a
``Tensor`` class that records the computation graph and can back-propagate
gradients through the operations used by the recommenders — dense matmuls,
embedding lookups, softmax attention, layer normalization, dropout and the
standard element-wise non-linearities.

The design follows the usual define-by-run pattern:

* every operation produces a new :class:`Tensor` whose ``_backward`` closure
  knows how to push the output gradient back to its parents;
* :meth:`Tensor.backward` topologically sorts the graph and runs the closures
  in reverse order;
* broadcasting is handled by summing gradients back to the original operand
  shape (:func:`_unbroadcast`).

Only ``float64``/``float32`` data participate in differentiation.  Integer
tensors (e.g. index arrays used by :func:`repro.nn.functional.embedding`) are
carried as plain ``numpy`` arrays.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]
#: anything numpy accepts as a dtype argument
DTypeLike = Union[type, str, np.dtype]
#: reduction axis argument: None (all), one axis, or a tuple of axes
AxisLike = Union[None, int, Tuple[int, ...]]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation / candidate generation where only the forward pass
    is needed, mirroring ``torch.no_grad``.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""

    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape``.

    NumPy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the gradient of a broadcast is the sum over the
    broadcast axes.
    """

    if grad.shape == shape:
        return grad
    # Remove extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: ArrayLike, dtype: "DTypeLike" = np.float64) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no-op if it already is one)."""

    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Iterable["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad and _GRAD_ENABLED)
        self.grad: Optional[np.ndarray] = None
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------------ #
    # basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""

        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""

        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""

        if not self.requires_grad and not self._prev:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        """Build an op output, wiring the backward closure when needed."""

        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = backward(out)
        return out

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            return _backward

        return Tensor._make(data, (self, other), make_backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            return _backward

        return Tensor._make(data, (self, other), make_backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    grad = -out.grad * self.data / (other.data ** 2)
                    other._accumulate(_unbroadcast(grad, other.shape))

            return _backward

        return Tensor._make(data, (self, other), make_backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = out.grad * exponent * (self.data ** (exponent - 1))
                    self._accumulate(grad)

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting batched (≥3-d) operands like ``np.matmul``."""

        other = as_tensor(other)
        data = np.matmul(self.data, other.data)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = np.matmul(out.grad, np.swapaxes(other.data, -1, -2))
                    self._accumulate(_unbroadcast(grad, self.shape))
                if other.requires_grad:
                    grad = np.matmul(np.swapaxes(self.data, -1, -2), out.grad)
                    other._accumulate(_unbroadcast(grad, other.shape))

            return _backward

        return Tensor._make(data, (self, other), make_backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: "AxisLike" = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def mean(self, axis: "AxisLike" = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: "AxisLike" = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                out_data = out.data
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                    out_data = np.expand_dims(out_data, axis=axis)
                mask = (self.data == out_data).astype(np.float64)
                # Split the gradient evenly across ties, as NumPy has no
                # canonical winner for equal maxima.
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * grad / np.maximum(denom, 1.0))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    # ------------------------------------------------------------------ #
    # shaping
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple: Optional[Tuple[int, ...]]
        if len(axes) == 0:
            axes_tuple = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_tuple = tuple(axes[0])
        else:
            axes_tuple = tuple(axes)
        data = np.transpose(self.data, axes_tuple)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                if axes_tuple is None:
                    self._accumulate(np.transpose(out.grad))
                else:
                    inverse = np.argsort(axes_tuple)
                    self._accumulate(np.transpose(out.grad, inverse))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        data = np.swapaxes(self.data, axis1, axis2)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(np.swapaxes(out.grad, axis1, axis2))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def __getitem__(self, index: object) -> "Tensor":
        data = self.data[index]

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = np.zeros_like(self.data)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return _backward

        return Tensor._make(data, (self,), make_backward)

    # ------------------------------------------------------------------ #
    # element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * out.data)

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (self.data > 0.0))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * out.data * (1.0 - out.data))

            return _backward

        return Tensor._make(data, (self,), make_backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def make_backward(out: Tensor) -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - out.data ** 2))

            return _backward

        return Tensor._make(data, (self,), make_backward)
