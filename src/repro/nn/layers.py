"""Standard neural-network layers used by the recommendation models.

These are the building blocks referenced throughout Section III of the paper:

* :class:`Embedding` — the item / position embedding tables of FISM and
  SASRec (one-hot input projected to a dense vector).
* :class:`Linear` — dense projections (attention Q/K/V, feed-forward layers,
  the SCCF integrating MLP).
* :class:`LayerNorm` and :class:`Dropout` — the residual-block stabilizers of
  eq. (7).
* :class:`Sequential` and :class:`MLP` — convenience containers for the
  integrating component's stack of fully-connected layers (eq. 15-16).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "Dropout", "LayerNorm", "Sequential", "ReLU", "Sigmoid", "Tanh", "MLP"]


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Dense lookup table mapping integer ids to vectors.

    ``padding_idx`` designates an id whose vector is pinned to zero — SASRec
    pads truncated sequences with item id 0 so padded positions contribute
    nothing to attention outputs or gradients.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: Optional[int] = None,
        std: float = 0.01,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.truncated_normal((num_embeddings, embedding_dim), std=std, rng=rng)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding(self.weight, indices)

    def zero_padding_row(self) -> None:
        """Re-zero the padding row (call after each optimizer step)."""

        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout layer; active only in training mode."""

    def __init__(self, rate: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable gain/bias."""

    def __init__(self, normalized_shape: int, eps: float = 1e-8) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.gain = Parameter(np.ones(normalized_shape), name="gain")
        self.bias = Parameter(np.zeros(normalized_shape), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gain + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            self.add_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator["Module"]:
        return (self._modules[name] for name in self._order)


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden stack.

    The SCCF integrating component is "a multi-layer fully connected neural
    network" over the concatenated features ``[m_u ⊕ q_i ⊕ r̃^UI ⊕ r̃^UU]``
    producing a single fused score, which is exactly what this class builds
    when ``output_dim=1``.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int = 1,
        activation: Callable[[], Module] = ReLU,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("MLP dimensions must be positive")
        dims = [input_dim, *hidden_dims, output_dim]
        layers: List[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(dims) - 2
            if not is_last:
                layers.append(activation())
                if dropout > 0.0:
                    layers.append(Dropout(dropout, rng=rng))
        self.network = Sequential(*layers)
        self.input_dim = input_dim
        self.output_dim = output_dim

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)
