"""Plugging a custom inductive UI model into SCCF.

The paper stresses that SCCF "can be seamlessly incorporated into existing
inductive UI approach[es]" — any model that can (a) infer a user embedding
from an interaction history with a forward pass and (b) expose an item
embedding table.  This example implements a deliberately simple custom model
— mean-pooled item2vec-style embeddings trained with negative sampling — by
subclassing :class:`repro.models.base.InductiveUIModel`, and then wraps it in
SCCF without touching any framework code.

Run:  python examples/custom_ui_model.py
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.core import SCCF, SCCFConfig
from repro.data import RecDataset, load_preset
from repro.data.sampling import NegativeSampler
from repro.data.sequences import recent_window
from repro.eval import Evaluator
from repro.models.base import InductiveUIModel
from repro.nn import functional as F


class MeanPoolModel(InductiveUIModel):
    """A minimal inductive UI model: the user is the mean of her item vectors.

    Training predicts each next item from the mean of the preceding window
    with negative-sampled binary cross-entropy — a stripped-down cousin of
    FISM/YouTube-DNN, small enough to read in one sitting.
    """

    def __init__(self, embedding_dim: int = 32, window: int = 10, num_epochs: int = 5, seed: int = 0) -> None:
        self.embedding_dim_config = embedding_dim
        self.window = window
        self.num_epochs = num_epochs
        self._rng = np.random.default_rng(seed)
        self.item_table: Optional[nn.Embedding] = None
        self._user_histories: Dict[int, List[int]] = {}

    def fit(self, dataset: RecDataset) -> "MeanPoolModel":
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self._user_histories = dataset.train.user_sequences()
        self.item_table = nn.Embedding(self.num_items, self.embedding_dim_config, std=0.01, rng=self._rng)
        optimizer = nn.Adam(self.item_table.parameters(), lr=0.003)
        sampler = NegativeSampler(self.num_items, self._rng)

        examples = []
        for user, sequence in self._user_histories.items():
            for split in range(1, len(sequence)):
                prefix = recent_window(sequence[:split], self.window)
                examples.append((tuple(prefix), sequence[split], frozenset(sequence)))

        for _ in range(self.num_epochs):
            self._rng.shuffle(examples)
            for prefix, target, seen in examples:
                history_vectors = self.item_table(np.asarray(prefix, dtype=np.int64))
                user_vector = history_vectors.mean(axis=0)
                negative = int(sampler.sample(set(seen), 1)[0])
                target_vectors = self.item_table(np.asarray([target, negative], dtype=np.int64))
                logits = (target_vectors * user_vector.reshape(1, -1)).sum(axis=1)
                loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self

    def infer_user_embedding(self, history: Sequence[int]) -> np.ndarray:
        window = recent_window([i for i in history if 0 <= i < self.num_items], self.window)
        if not window:
            return np.zeros(self.embedding_dim_config)
        return self.item_table.weight.data[np.asarray(window, dtype=np.int64)].mean(axis=0)

    def item_embeddings(self) -> np.ndarray:
        return self.item_table.weight.data

    def score_items(self, user_id: int, history: Optional[Sequence[int]] = None) -> np.ndarray:
        if history is None:
            history = self._user_histories.get(user_id, [])
        return self.ui_scores(self.infer_user_embedding(history))


def main() -> None:
    dataset = load_preset("tiny")
    print("dataset:", dataset.statistics().as_row())

    print("\ntraining the custom mean-pool UI model ...")
    custom = MeanPoolModel(embedding_dim=32, num_epochs=3, seed=0)

    sccf = SCCF(custom, SCCFConfig(num_neighbors=10, candidate_list_size=40, seed=0))
    sccf.fit(dataset)  # SCCF trains the custom model, indexes users, fits the merger

    evaluator = Evaluator(cutoffs=(10, 20))
    print("\nleave-one-out results:")
    for mode in ("ui", "uu", "sccf"):
        sccf.set_mode(mode)
        result = evaluator.evaluate(sccf, dataset)
        metrics = "  ".join(f"{name}={value:.4f}" for name, value in result.metrics.items())
        print(f"  {result.model_name:<22} {metrics}")

    print(
        "\nAny model implementing InductiveUIModel's three methods — fit, "
        "infer_user_embedding and item_embeddings — gets the user-based "
        "component, the integrating MLP and the real-time server for free."
    )


if __name__ == "__main__":
    main()
