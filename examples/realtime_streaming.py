"""Real-time serving: react to new clicks without retraining (Section III-C2).

The paper's core systems claim is that the user-based component works in real
time because user representations are *inferred* (one forward pass) and
neighborhoods are re-identified with a fast similarity search — unlike
UserKNN, which must recompute sparse user-user similarities on every new
interaction.

This example:

1. trains SASRec and wraps it in SCCF;
2. starts a :class:`~repro.core.RealTimeServer`;
3. streams a burst of new interactions for a few users, showing how the
   recommendations shift towards the new interest and how long each update
   took (inferring vs identifying, the Table III breakdown);
4. runs the same new interactions through UserKNN's transductive update path
   for comparison.

Run:  python examples/realtime_streaming.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import EventBuffer, RealTimeServer, SCCF, SCCFConfig
from repro.data import load_preset
from repro.models import SASRec, UserKNN


def main() -> None:
    dataset = load_preset("games-small")
    print("dataset:", dataset.statistics().as_row())

    print("\ntraining SASRec + SCCF ...")
    sasrec = SASRec(embedding_dim=32, max_length=50, num_layers=2, num_heads=1, num_epochs=3, seed=0)
    sccf = SCCF(sasrec, SCCFConfig(num_neighbors=50, candidate_list_size=100, seed=0))
    sccf.fit(dataset)

    server = RealTimeServer(sccf, dataset)
    userknn = UserKNN(num_neighbors=50).fit(dataset)

    rng = np.random.default_rng(0)
    users = dataset.evaluation_users()[:5]

    print("\nstreaming new interactions through SCCF:")
    for user in users:
        before = server.recommend(user, k=5)
        new_item = int(rng.integers(0, dataset.num_items))
        breakdown = server.observe(user, new_item)
        after = server.recommend(user, k=5)
        print(
            f"  user {user:4d} clicked item {new_item:4d}  "
            f"infer={breakdown.inferring_ms:6.2f}ms  identify={breakdown.identifying_ms:6.2f}ms  "
            f"top-5 before={before}  after={after}"
        )

    average = server.average_latency()
    print(
        f"\nSCCF average per-event latency: infer={average.inferring_ms:.2f}ms, "
        f"identify={average.identifying_ms:.2f}ms, total={average.total_ms:.2f}ms"
    )

    print("\nsame burst micro-batched through an EventBuffer (one flush):")
    burst = [
        (int(user), int(rng.integers(0, dataset.num_items)))
        for user in users
        for _ in range(3)
    ]
    with EventBuffer(server, flush_size=len(burst)) as buffer:
        for user, item in burst:
            flushed = buffer.push(user, item)
            if flushed is not None:
                print(
                    f"  flushed {flushed.num_events} events in one batch:  "
                    f"infer={flushed.inferring_ms:6.2f}ms  identify={flushed.identifying_ms:6.2f}ms  "
                    f"(amortized {flushed.total_ms / flushed.num_events:.2f}ms/event)"
                )

    print("\nsame events through UserKNN's transductive recompute path:")
    samples = []
    for user in users:
        new_item = int(rng.integers(0, dataset.num_items))
        start = time.perf_counter()
        userknn.realtime_update_and_recommend(user, new_item, k=50)
        samples.append((time.perf_counter() - start) * 1000.0)
    print(f"UserKNN average per-event latency: {np.mean(samples):.2f}ms")
    print(
        "\nNote: UserKNN's cost grows with the number of items (it recomputes "
        "similarities over the full sparse profiles), while the SCCF path only "
        "needs one forward pass plus a low-dimensional neighbor query — the "
        "gap widens by orders of magnitude on production-sized catalogs."
    )


if __name__ == "__main__":
    main()
