"""Simulated online A/B test: SCCF vs a YouTube-DNN-style production baseline.

Reproduces the Section IV-F experiment (Table V) against the drifting-
preference clickstream simulator, since Taobao's production traffic is not
available:

* a training period generates the interaction history both candidate
  generators learn from;
* users are split into two buckets; bucket A is served by the baseline,
  bucket B by SCCF wrapped around an identical baseline model (only the
  candidate-generation module differs, as in the paper);
* for each day of the test week the simulated users examine the served
  candidates and click/purchase according to their ground-truth, drifting,
  community-influenced preferences;
* the script prints total clicks/trades per bucket and the relative lift.

Run:  python examples/ab_test_simulation.py
"""

from __future__ import annotations

from repro.core import SCCF, SCCFConfig
from repro.models import YouTubeDNN
from repro.simulation import ABTestConfig, ABTestHarness, ClickstreamConfig


def main() -> None:
    clickstream = ClickstreamConfig(
        num_users=200,
        num_items=400,
        num_categories=20,
        num_communities=10,
        num_days=17,
        seed=0,
    )
    ab_config = ABTestConfig(
        training_days=10,
        test_days=7,
        candidate_set_size=50,
        examined_items=10,
        click_budget_per_day=3,
        trade_probability=0.25,
        seed=0,
    )
    harness = ABTestHarness(clickstream, ab_config)

    print("simulating the training period and fitting both candidate generators ...")
    dataset, simulator = harness.build_training_dataset()
    print("training dataset:", dataset.statistics().as_row())

    baseline = YouTubeDNN(embedding_dim=32, num_epochs=5, seed=0)
    baseline.fit(dataset)

    treatment_ui = YouTubeDNN(embedding_dim=32, num_epochs=5, seed=0)
    treatment_ui.fit(dataset)
    treatment = SCCF(
        treatment_ui,
        SCCFConfig(num_neighbors=30, candidate_list_size=50, seed=0),
    )
    treatment.fit(dataset, fit_ui_model=False)

    print(f"\nrunning the {ab_config.test_days}-day online experiment ...")
    result = harness.run(baseline, treatment, dataset, simulator)

    print("\n=== simulated Table V ===")
    for row in result.as_rows():
        print(
            f"  {row['Metric']:<10} baseline={row['Baseline (bucket A)']:<8} "
            f"sccf={row['SCCF (bucket B)']:<8} lift={row['Lift Rate']}"
        )
    print(
        f"\nper-user engagement: baseline {result.baseline.clicks_per_user:.2f} clicks/user, "
        f"SCCF {result.treatment.clicks_per_user:.2f} clicks/user"
    )
    print(
        "The paper reports +2.5% clicks and +2.3% trades on Taobao; the simulator "
        "reproduces the direction of the effect (candidates that adapt to drifting, "
        "community-local interests earn more engagement), not the exact magnitude."
    )


if __name__ == "__main__":
    main()
