"""Quickstart: train a UI model, wrap it in SCCF and compare the three modes.

This is the smallest end-to-end walk through the library's public API:

1. generate a synthetic dataset analog (or load real MovieLens/Amazon data
   with ``repro.data.load_movielens_ratings`` / ``load_amazon_ratings``);
2. train the FISM base UI model;
3. wrap it in the SCCF framework (user-neighborhood component + integrating
   MLP) — SCCF is a post-processing plugin, so the UI model is reused as-is;
4. evaluate the UI-only, user-based-only and fused SCCF rankings under the
   paper's leave-one-out protocol;
5. produce a top-10 candidate list for one user.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import SCCF, SCCFConfig
from repro.data import load_preset
from repro.eval import Evaluator
from repro.models import FISM


def main() -> None:
    # 1. A small synthetic dataset shaped like the Amazon "Games" data
    #    (sparse, short sequences).  See repro.data.PRESETS for the others.
    dataset = load_preset("games-small")
    print("dataset:", dataset.statistics().as_row())

    # 2. The base UI model: FISM with the paper's α = 0.5 pooling.
    fism = FISM(embedding_dim=32, alpha=0.5, num_epochs=5, seed=0)

    # 3. SCCF wraps the UI model: β = 50 neighbors, candidate lists of 100.
    sccf = SCCF(
        fism,
        SCCFConfig(num_neighbors=50, candidate_list_size=100, recency_window=15, seed=0),
    )
    sccf.fit(dataset)  # trains FISM, indexes user embeddings, trains the merger

    # 4. Evaluate all three scoring modes (the three Table II columns).
    evaluator = Evaluator(cutoffs=(20, 50, 100), max_users=200)
    print("\nleave-one-out results (higher is better):")
    for mode, label in (("ui", "FISM (UI only)"), ("uu", "FISM_UU (user-based only)"), ("sccf", "FISM_SCCF (fused)")):
        sccf.set_mode(mode)
        result = evaluator.evaluate(sccf, dataset)
        metrics = "  ".join(f"{name}={value:.4f}" for name, value in result.metrics.items())
        print(f"  {label:<28} {metrics}")

    # 5. Serve candidates for one user with the fused framework.
    sccf.set_mode("sccf")
    user = dataset.evaluation_users()[0]
    history = dataset.train.user_sequence(user)
    recommendations = sccf.recommend(user, k=10, exclude=history)
    print(f"\ntop-10 candidates for user {user}: {recommendations}")
    print(f"(user history has {len(history)} items; none of them are re-recommended)")


if __name__ == "__main__":
    main()
