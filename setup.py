"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments where the ``wheel`` package (required by PEP 660
editable builds) is unavailable: pip falls back to the legacy
``setup.py develop`` path, which only needs setuptools.
"""

from setuptools import setup

setup()
