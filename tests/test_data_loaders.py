"""Unit tests for the MovieLens / Amazon file-format loaders."""

from __future__ import annotations

import pytest

from repro.data import load_amazon_ratings, load_csv_interactions, load_movielens_genres, load_movielens_ratings


@pytest.fixture()
def movielens_dat(tmp_path):
    path = tmp_path / "ratings.dat"
    path.write_text(
        "1::10::5::978300760\n"
        "1::20::3::978302109\n"
        "2::10::4::978301968\n"
        "2::30::1::978300275\n"
    )
    return path


@pytest.fixture()
def movielens_csv(tmp_path):
    path = tmp_path / "ratings.csv"
    path.write_text(
        "userId,movieId,rating,timestamp\n"
        "1,10,4.0,1000\n"
        "1,20,2.5,1001\n"
        "3,10,5.0,1002\n"
    )
    return path


class TestMovieLensRatings:
    def test_dat_format(self, movielens_dat):
        log = load_movielens_ratings(movielens_dat)
        assert len(log) == 4
        assert set(log.users.tolist()) == {1, 2}
        assert set(log.items.tolist()) == {10, 20, 30}

    def test_csv_format_skips_header(self, movielens_csv):
        log = load_movielens_ratings(movielens_csv)
        assert len(log) == 3

    def test_min_rating_filter(self, movielens_dat):
        log = load_movielens_ratings(movielens_dat, min_rating=4.0)
        assert len(log) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_movielens_ratings(tmp_path / "nope.dat")

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "ratings.dat"
        path.write_text("1::10::5::100\nnot a line\n2::x::3::100\n")
        log = load_movielens_ratings(path)
        assert len(log) == 1

    def test_explicit_mode_unsupported(self, movielens_dat):
        with pytest.raises(ValueError):
            load_movielens_ratings(movielens_dat, implicit=False)


class TestMovieLensGenres:
    def test_dat_format(self, tmp_path):
        path = tmp_path / "movies.dat"
        path.write_text(
            "1::Toy Story (1995)::Animation|Children's|Comedy\n"
            "2::Jumanji (1995)::Adventure|Children's\n"
            "3::Heat (1995)::Animation\n"
        )
        categories = load_movielens_genres(path)
        assert categories[1] == categories[3]  # both Animation
        assert categories[1] != categories[2]

    def test_csv_format(self, tmp_path):
        path = tmp_path / "movies.csv"
        path.write_text("movieId,title,genres\n5,Movie,Drama|War\n6,Other,Drama\n")
        categories = load_movielens_genres(path)
        assert categories[5] == categories[6]


class TestAmazonRatings:
    def test_string_ids_mapped_to_integers(self, tmp_path):
        path = tmp_path / "ratings_Beauty.csv"
        path.write_text(
            "A1YJEY40YUW4SE,7806397051,5.0,1391040000\n"
            "A60XNB876KYML,7806397051,3.0,1397779200\n"
            "A1YJEY40YUW4SE,9759091062,4.0,1395014400\n"
        )
        log = load_amazon_ratings(path)
        assert len(log) == 3
        assert log.num_users == 2
        assert log.num_items == 2

    def test_header_row_ignored(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("user,item,rating,timestamp\nu1,i1,5.0,100\n")
        log = load_amazon_ratings(path)
        assert len(log) == 1

    def test_min_rating(self, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text("u1,i1,5.0,100\nu2,i1,1.0,101\n")
        assert len(load_amazon_ratings(path, min_rating=3.0)) == 1


class TestGenericCsv:
    def test_with_categories(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("user,item,ts,cat\n0,1,10,3\n0,2,11,4\n1,1,12,3\n")
        log = load_csv_interactions(path, category_column=3)
        assert len(log) == 3
        assert log.categories.tolist() == [3, 4, 3]

    def test_without_timestamp_column(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("0,1\n0,2\n", )
        log = load_csv_interactions(path, timestamp_column=None, has_header=False)
        assert len(log) == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "log.tsv"
        path.write_text("0\t5\t1.0\n1\t6\t2.0\n")
        log = load_csv_interactions(path, delimiter="\t", has_header=False)
        assert set(log.items.tolist()) == {5, 6}
