"""Tests for the experiment registry, scales and lightweight runners.

The heavyweight runners (Table II at full scale, sweeps) are exercised by the
benchmark suite; here they run on the smallest configurations just to verify
wiring, output schema and the qualitative invariants they encode.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    QUICK,
    format_figure1,
    format_sweep,
    format_table1,
    format_table2,
    format_table3,
    get_experiment,
    get_scale,
    list_experiments,
    load_datasets,
    make_baselines,
    make_fism,
    make_sasrec,
    make_sccf,
    run_figure1,
    run_table1,
    run_table2,
)
from repro.experiments.ablations import run_ann_ablation


TEST_SCALE = QUICK.with_overrides(
    embedding_dim=16,
    fism_epochs=2,
    sasrec_epochs=1,
    bprmf_epochs=2,
    merger_epochs=5,
    num_neighbors=10,
    candidate_list_size=30,
    max_eval_users=40,
    datasets=("tiny",),
)


class TestRegistry:
    def test_all_tables_and_figures_present(self):
        expected = {"table1", "table2", "table3", "table4", "table5", "figure1", "figure4", "figure5"}
        assert expected <= set(EXPERIMENTS)

    def test_list_is_sorted(self):
        assert list_experiments() == sorted(list_experiments())

    def test_get_experiment(self):
        spec = get_experiment("table2")
        assert spec.paper_reference == "Table II"
        assert callable(spec.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_every_spec_has_benchmark_module(self):
        for spec in EXPERIMENTS.values():
            assert spec.benchmark_module.startswith("benchmarks/")


class TestScales:
    def test_get_scale_by_name(self):
        assert get_scale("quick").name == "quick"
        assert get_scale("full").name == "full"

    def test_get_scale_passthrough(self):
        assert get_scale(TEST_SCALE) is TEST_SCALE

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_with_overrides(self):
        scale = QUICK.with_overrides(embedding_dim=8)
        assert scale.embedding_dim == 8
        assert scale.fism_epochs == QUICK.fism_epochs

    def test_factories(self):
        assert make_fism(TEST_SCALE).embedding_dim_config == 16
        assert make_sasrec(TEST_SCALE).max_length == TEST_SCALE.sasrec_max_length
        baselines = make_baselines(TEST_SCALE)
        assert set(baselines) == {"Pop", "ItemKNN", "UserKNN", "BPR-MF"}
        sccf = make_sccf(make_fism(TEST_SCALE), TEST_SCALE)
        assert sccf.config.num_neighbors == TEST_SCALE.num_neighbors

    def test_load_datasets(self):
        datasets = load_datasets(TEST_SCALE)
        assert set(datasets) == {"tiny"}


class TestRunners:
    def test_table1(self):
        datasets = load_datasets(TEST_SCALE)
        stats = run_table1(TEST_SCALE, datasets=datasets)
        assert len(stats) == 1
        text = format_table1(stats)
        assert "tiny" in text and "#users" in text

    def test_table2_smoke(self):
        datasets = load_datasets(TEST_SCALE)
        rows = run_table2(TEST_SCALE, datasets=datasets, base_models=("FISM",), include_baselines=False)
        models = [row.model for row in rows]
        assert models == ["FISM", "FISMUU", "FISMSCCF"]
        sccf_row = rows[-1]
        assert sccf_row.improvements  # relative improvement over FISM computed
        text = format_table2(rows)
        assert "FISMSCCF" in text

    def test_figure1_headline(self):
        result = run_figure1(num_users=60, num_days=15, seed=2)
        assert 0.0 < result.new_category_fraction < 1.0
        assert "new-category fraction" in format_figure1(result)

    def test_ann_ablation_recall_increases_with_probes(self):
        rows = run_ann_ablation(num_vectors=300, dim=8, k=20, num_queries=10, num_cells=8, n_probe_values=(1, 8))
        recalls = {row.variant: row.metrics["recall"] for row in rows}
        assert recalls["BruteForce"] == 1.0
        assert recalls["IVF(n_probe=8)"] >= recalls["IVF(n_probe=1)"]

    def test_formatters_handle_empty_input(self):
        assert format_table2([]) == "(no results)"
        assert format_sweep([]) == "(no results)"
        assert isinstance(format_table3([]), str)
