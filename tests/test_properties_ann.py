"""Property-based tests for the ANN substrate (hypothesis).

Three invariant families pinned over randomized build/update/add/retrain
sequences:

(a) sharded/unsharded parity — a :class:`ShardedIndex` answers every query
    id-for-id and bit-for-bit like the unsharded ``BruteForceIndex`` holding
    the same rows, under any interleaving of mutations;
(b) ``top_k_rows`` output is sorted, finite, score-faithful and respects
    exclusion masking;
(c) after any ``update_batch`` / ``add`` / ``retrain`` sequence every IVF row
    belongs to exactly one cell, assignments agree with cell membership, and
    the ``_cell_arrays`` caches never go stale.

Data comes from seeded ``np.random.default_rng`` draws (hypothesis supplies
the seeds and shapes), so examples shrink deterministically without float
strategies producing degenerate all-equal matrices.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ann import BruteForceIndex, IVFIndex, ShardedIndex, top_k_rows
from repro.ann.brute_force import apply_exclusions


# --------------------------------------------------------------------- #
# (a) sharded scatter-gather == unsharded brute force
# --------------------------------------------------------------------- #
def _run_parity_sequence(n, d, num_shards, k, seed, ops, exact_scores: bool):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d))
    flat = BruteForceIndex().build(vectors)
    sharded = ShardedIndex(num_shards=num_shards).build(vectors)

    for op in ops:
        if op == "add":
            count = int(rng.integers(1, 6))
            extra = rng.normal(size=(count, d))
            flat.add(extra)
            sharded.add(extra)
        elif op == "zero":
            # Exact score ties: zero rows (what add_users' gap fill creates)
            # score an exact 0.0 against every query on both paths, so this
            # exercises the deterministic position-order tie-breaking.
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, flat.size, size=count)
            zeros = np.zeros((count, d))
            flat.update_batch(positions, zeros)
            sharded.update_batch(positions, zeros)
        else:
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, flat.size, size=count)
            replacements = rng.normal(size=(count, d))
            flat.update_batch(positions, replacements)
            sharded.update_batch(positions, replacements)

    assert sharded.size == flat.size
    queries = rng.normal(size=(4, d))
    exclusions = [
        None,
        np.asarray([0], dtype=np.int64),
        rng.integers(0, flat.size, size=3),
        np.arange(flat.size, dtype=np.int64),  # everything excluded -> empty
    ]
    if not exact_scores:
        # Single-row shards round scores 1 ulp apart (BLAS gemv vs gemm), so
        # candidates closer than that can legitimately swap order; discard
        # those degenerate draws (k+1 catches ties at the cut boundary).
        for probe_ids, probe_scores in flat.search_batch(
            queries, k + 1, exclude_per_query=exclusions
        ):
            if len(probe_scores) > 1:
                assume(float(np.min(np.abs(np.diff(probe_scores)))) > 1e-6)

    flat_results = flat.search_batch(queries, k, exclude_per_query=exclusions)
    sharded_results = sharded.search_batch(queries, k, exclude_per_query=exclusions)
    for (flat_ids, flat_scores), (sh_ids, sh_scores) in zip(flat_results, sharded_results):
        np.testing.assert_array_equal(flat_ids, sh_ids)
        if exact_scores:
            np.testing.assert_array_equal(flat_scores, sh_scores)  # bit-identical
        else:
            np.testing.assert_allclose(flat_scores, sh_scores, rtol=0, atol=2e-7)


@given(
    num_shards=st.integers(1, 5),
    extra_rows=st.integers(0, 50),
    d=st.integers(2, 12),
    k=st.integers(1, 15),
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update", "zero"]), max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_sharded_parity_with_brute_force(num_shards, extra_rows, d, k, seed, ops):
    """Ids and scores bit-identical when every shard holds >= 2 rows.

    Each candidate's score is the same query-row/index-row dot product on
    both paths, so the floats agree bit for bit — except that BLAS routes a
    single-row shard's matmul through its gemv kernel, whose accumulation
    rounds 1 ulp differently.  Real deployments shard large indexes, so the
    bit-identity contract is pinned for shards of at least two rows; the
    degenerate sizes are covered (to float32 ulp) by the test below.  Exact
    ties (zeroed rows) are included: ``top_k_rows`` breaks ties by position,
    so even tied candidates must agree id-for-id.
    """

    _run_parity_sequence(
        2 * num_shards + extra_rows, d, num_shards, k, seed, ops, exact_scores=True
    )


@given(
    n=st.integers(2, 60),
    d=st.integers(2, 12),
    num_shards=st.integers(1, 5),
    k=st.integers(1, 15),
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update"]), max_size=3),
)
@settings(max_examples=25, deadline=None)
def test_sharded_parity_any_size(n, d, num_shards, k, seed, ops):
    """Any size, including single-row shards: ids identical, scores to 1 ulp."""

    _run_parity_sequence(n, d, num_shards, k, seed, ops, exact_scores=False)


@given(
    n=st.integers(4, 40),
    d=st.integers(2, 8),
    num_shards=st.integers(2, 4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_sharded_threaded_equals_serial(n, d, num_shards, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d))
    queries = rng.normal(size=(3, d))
    serial = ShardedIndex(num_shards=num_shards).build(vectors)
    with ShardedIndex(num_shards=num_shards, num_threads=num_shards) as threaded:
        threaded.build(vectors)
        for (serial_ids, serial_scores), (thr_ids, thr_scores) in zip(
            serial.search_batch(queries, 5), threaded.search_batch(queries, 5)
        ):
            np.testing.assert_array_equal(serial_ids, thr_ids)
            np.testing.assert_array_equal(serial_scores, thr_scores)


# --------------------------------------------------------------------- #
# (b) top_k_rows output contract
# --------------------------------------------------------------------- #
@given(
    num_queries=st.integers(1, 6),
    n=st.integers(1, 40),
    k=st.integers(1, 50),
    seed=st.integers(0, 2**31 - 1),
    with_exclusions=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_top_k_rows_sorted_finite_exclusion_respecting(
    num_queries, n, k, seed, with_exclusions
):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=(num_queries, n))
    ids = rng.permutation(2 * n)[:n].astype(np.int64)  # distinct, non-contiguous
    exclusions = None
    if with_exclusions:
        exclusions = [
            rng.choice(ids, size=int(rng.integers(0, n + 1)), replace=False)
            if rng.integers(0, 2)
            else None
            for _ in range(num_queries)
        ]
        apply_exclusions(scores, ids, exclusions)

    results = top_k_rows(scores, k, ids)
    assert len(results) == num_queries
    column_of = {int(candidate): column for column, candidate in enumerate(ids)}
    for row, (result_ids, result_scores) in enumerate(results):
        assert len(result_ids) == len(result_scores) <= min(k, n)
        assert np.all(np.isfinite(result_scores))
        assert np.all(np.diff(result_scores) <= 0)  # sorted descending
        assert len(np.unique(result_ids)) == len(result_ids)
        if exclusions is not None and exclusions[row] is not None:
            assert not np.isin(result_ids, exclusions[row]).any()
        for result_id, result_score in zip(result_ids, result_scores):
            assert scores[row, column_of[int(result_id)]] == result_score
        # deterministic tie order: equal scores appear in ascending column order
        for left in range(len(result_ids) - 1):
            if result_scores[left] == result_scores[left + 1]:
                assert column_of[int(result_ids[left])] < column_of[int(result_ids[left + 1])]
        # nothing better was left out: every omitted candidate scores <= the
        # worst returned one (or the row returned all finite candidates)
        if len(result_ids) == min(k, n) and len(result_ids):
            omitted = np.isin(ids, result_ids, invert=True)
            if omitted.any():
                assert scores[row, omitted].max() <= result_scores[-1]


# --------------------------------------------------------------------- #
# (c) IVF cell membership + cache consistency
# --------------------------------------------------------------------- #
def _assert_ivf_invariants(index: IVFIndex) -> None:
    size = index.size
    members = sorted(
        position for cell_members in index._cells.values() for position in cell_members
    )
    assert members == list(range(size))  # every row in exactly one cell
    for cell, cell_members in index._cells.items():
        for position in cell_members:
            assert int(index._assignments[position]) == cell
    for cell, cached in index._cell_arrays.items():
        expected = np.fromiter(
            sorted(index._cells.get(cell, set())), dtype=np.int64,
            count=len(index._cells.get(cell, set())),
        )
        np.testing.assert_array_equal(cached, expected)


@given(
    n=st.integers(3, 50),
    d=st.integers(2, 8),
    num_cells=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
    ops=st.lists(st.sampled_from(["add", "update", "retrain", "search"]), max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_ivf_cells_partition_rows_and_caches_stay_consistent(
    n, d, num_cells, seed, ops
):
    rng = np.random.default_rng(seed)
    index = IVFIndex(
        num_cells=num_cells, n_probe=num_cells, rng=np.random.default_rng(seed)
    ).build(rng.normal(size=(n, d)))
    ids_before = index._ids.copy()
    _assert_ivf_invariants(index)

    for op in ops:
        if op == "add":
            count = int(rng.integers(1, 5))
            index.add(rng.normal(size=(count, d)))
            ids_before = index._ids.copy()
        elif op == "update":
            count = int(rng.integers(1, 5))
            positions = rng.integers(0, index.size, size=count)
            index.update_batch(positions, rng.normal(size=(count, d)) * 3)
        elif op == "retrain":
            index.retrain(num_iterations=5)
            np.testing.assert_array_equal(index._ids, ids_before)  # ids preserved
        else:
            # searching populates the _cell_arrays caches, so a later mutation
            # must invalidate exactly the touched entries
            index.search_batch(rng.normal(size=(2, d)), k=3)
        _assert_ivf_invariants(index)


@given(
    n=st.integers(2, 40),
    d=st.integers(2, 6),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_ivf_search_matches_brute_force_when_probing_all_cells(n, d, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, d))
    num_cells = int(rng.integers(1, min(n, 8) + 1))
    exact = BruteForceIndex().build(vectors)
    approx = IVFIndex(
        num_cells=num_cells, n_probe=num_cells, rng=np.random.default_rng(seed)
    ).build(vectors)
    query = rng.normal(size=d)
    exact_ids, _ = exact.search(query, k=min(5, n))
    approx_ids, _ = approx.search(query, k=min(5, n))
    np.testing.assert_array_equal(np.sort(exact_ids), np.sort(approx_ids))
