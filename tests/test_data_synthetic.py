"""Unit tests for the synthetic dataset generators (the Table I analogs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import PRESETS, SyntheticConfig, generate_dataset, generate_interaction_log, generate_world, load_preset


SMALL = SyntheticConfig(
    name="unit",
    num_users=40,
    num_items=60,
    num_categories=5,
    num_communities=3,
    avg_interactions=10.0,
    community_items=12,
    seed=5,
)


class TestConfigValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_users=0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_categories=0)

    def test_community_strength_bounds(self):
        with pytest.raises(ValueError):
            SyntheticConfig(community_strength=1.5)

    def test_avg_below_min_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(avg_interactions=2.0, min_interactions=5)


class TestWorld:
    def test_shapes(self):
        world = generate_world(SMALL)
        assert world.item_vectors.shape == (60, SMALL.latent_dim)
        assert world.item_categories.shape == (60,)
        assert world.user_base_vectors.shape == (40, SMALL.latent_dim)
        assert len(world.community_item_sets) == 3

    def test_categories_in_range(self):
        world = generate_world(SMALL)
        assert world.item_categories.min() >= 0
        assert world.item_categories.max() < SMALL.num_categories

    def test_popularity_is_distribution(self):
        world = generate_world(SMALL)
        assert world.item_popularity.min() > 0
        assert world.item_popularity.sum() == pytest.approx(1.0)

    def test_bundles_avoid_most_popular_items(self):
        world = generate_world(SMALL)
        top_items = set(np.argsort(-world.item_popularity)[: int(0.15 * SMALL.num_items)].tolist())
        for bundle in world.community_item_sets:
            assert not top_items & set(bundle.tolist())

    def test_deterministic_given_seed(self):
        a = generate_world(SMALL)
        b = generate_world(SMALL)
        np.testing.assert_allclose(a.item_vectors, b.item_vectors)
        np.testing.assert_array_equal(a.user_communities, b.user_communities)


class TestLogGeneration:
    def test_every_user_has_minimum_interactions(self):
        world = generate_world(SMALL)
        log = generate_interaction_log(world)
        counts = log.interactions_per_user()
        assert len(counts) == SMALL.num_users
        assert min(counts.values()) >= SMALL.min_interactions

    def test_no_repeated_items_per_user(self):
        world = generate_world(SMALL)
        log = generate_interaction_log(world)
        for user, sequence in log.user_sequences().items():
            assert len(sequence) == len(set(sequence)), f"user {user} has repeats"

    def test_categories_match_world(self):
        world = generate_world(SMALL)
        log = generate_interaction_log(world)
        categories = log.categories
        for item, category in zip(log.items, categories):
            assert category == world.item_categories[item]

    def test_reproducible(self):
        world = generate_world(SMALL)
        a = generate_interaction_log(world, np.random.default_rng(3))
        b = generate_interaction_log(world, np.random.default_rng(3))
        np.testing.assert_array_equal(a.items, b.items)


class TestDatasetGeneration:
    def test_generate_dataset(self):
        dataset = generate_dataset(SMALL)
        assert dataset.name == "unit"
        assert dataset.num_users > 0
        assert len(dataset.test_items) > 0
        assert dataset.item_categories is not None
        assert len(dataset.item_categories) == dataset.num_items

    def test_target_not_in_training_history(self):
        dataset = generate_dataset(SMALL)
        for user, target in dataset.test_items.items():
            assert target not in dataset.train.user_item_set(user)

    def test_presets_exist(self):
        assert {"ml-1m-small", "ml-20m-small", "games-small", "beauty-small", "tiny"} <= set(PRESETS)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            load_preset("not-a-dataset")

    def test_preset_override(self):
        dataset = load_preset("tiny", seed=99, num_users=30, name="tiny-override")
        assert dataset.name == "tiny-override"
        assert dataset.num_users <= 30

    def test_amazon_analogs_sparser_than_movielens(self):
        # The qualitative Table I profile: MovieLens analogs are denser with
        # longer sequences than the Amazon analogs.
        tiny_movielens = load_preset("tiny", name="ml-like", avg_interactions=25.0, seed=3)
        tiny_amazon = load_preset("tiny", name="amazon-like", avg_interactions=8.0, seed=3)
        assert (
            tiny_movielens.statistics().avg_sequence_length
            > tiny_amazon.statistics().avg_sequence_length
        )
