"""Tests for the SCCF user-based component (eq. 11-12 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import IVFIndex
from repro.core import UserNeighborhoodComponent


class TestFitting:
    def test_requires_fit_before_use(self):
        component = UserNeighborhoodComponent(num_neighbors=5)
        with pytest.raises(RuntimeError):
            component.neighbors(np.zeros(4))
        with pytest.raises(RuntimeError):
            component.uu_scores(np.zeros(4))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UserNeighborhoodComponent(num_neighbors=0)
        with pytest.raises(ValueError):
            UserNeighborhoodComponent(recency_window=0)

    def test_fit_builds_embeddings_for_every_user(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=5).fit(trained_fism, tiny_dataset)
        assert component.num_users == tiny_dataset.num_users
        assert component._user_embeddings.shape == (
            tiny_dataset.num_users,
            trained_fism.embedding_dim,
        )

    def test_fit_with_history_override(self, tiny_dataset, trained_fism):
        user = tiny_dataset.evaluation_users()[0]
        override = {user: [0, 1]}
        component = UserNeighborhoodComponent(num_neighbors=5).fit(
            trained_fism, tiny_dataset, histories=override
        )
        np.testing.assert_allclose(
            component.user_embedding(user), trained_fism.infer_user_embedding([0, 1])
        )
        assert component.recent_items(user) == [0, 1]


class TestNeighbors:
    @pytest.fixture(scope="class")
    def component(self, tiny_dataset, trained_fism):
        return UserNeighborhoodComponent(num_neighbors=8).fit(trained_fism, tiny_dataset)

    def test_neighbor_count_and_order(self, component, trained_fism, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        embedding = component.user_embedding(user)
        ids, sims = component.neighbors(embedding, exclude_user=user)
        assert len(ids) <= 8
        assert user not in ids
        assert np.all(np.diff(sims) <= 1e-12)  # descending similarity

    def test_self_included_without_exclusion(self, component, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        embedding = component.user_embedding(user)
        ids, _ = component.neighbors(embedding)
        assert user in ids  # the user is her own most similar point

    def test_uu_scores_from_neighbor_recent_items(self, component, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        embedding = component.user_embedding(user)
        scores = component.uu_scores(embedding, exclude_user=user)
        assert scores.shape == (tiny_dataset.num_items,)
        assert scores.min() >= 0.0
        # every positively scored item is a recent item of some neighbor
        neighbor_ids, _ = component.neighbors(embedding, exclude_user=user)
        eligible = set()
        for neighbor in neighbor_ids:
            eligible.update(component.recent_items(int(neighbor)))
        assert set(np.where(scores > 0)[0].tolist()) <= eligible

    def test_exclude_items_are_zeroed(self, component, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        embedding = component.user_embedding(user)
        raw = component.uu_scores(embedding, exclude_user=user)
        positive_items = np.where(raw > 0)[0][:2].tolist()
        if positive_items:
            masked = component.uu_scores(embedding, exclude_user=user, exclude_items=positive_items)
            assert np.all(masked[positive_items] == 0.0)

    def test_score_for_user_excludes_history(self, component, tiny_dataset):
        user = tiny_dataset.evaluation_users()[0]
        history = tiny_dataset.train.user_sequence(user)
        scores = component.score_for_user(user, component.user_embedding(user), history=history)
        assert np.all(scores[history] == 0.0)

    def test_manual_eq12_agreement(self, component, tiny_dataset):
        """uu_scores matches a direct implementation of eq. (12)."""

        user = tiny_dataset.evaluation_users()[1]
        embedding = component.user_embedding(user)
        ids, sims = component.neighbors(embedding, exclude_user=user)
        expected = np.zeros(tiny_dataset.num_items)
        for neighbor, similarity in zip(ids, sims):
            if similarity <= 0:
                continue
            for item in component.recent_items(int(neighbor)):
                expected[item] += similarity
        np.testing.assert_allclose(component.uu_scores(embedding, exclude_user=user), expected)


class TestRealtimeUpdate:
    def test_update_changes_embedding_and_recent_items(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=5, recency_window=3).fit(
            trained_fism, tiny_dataset
        )
        user = tiny_dataset.evaluation_users()[0]
        new_history = tiny_dataset.train.user_sequence(user) + [0]
        embedding = component.update_user(user, trained_fism, new_history)
        np.testing.assert_allclose(component.user_embedding(user), embedding)
        assert component.recent_items(user) == new_history[-3:]

    def test_update_reflected_in_search(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=3).fit(trained_fism, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        other = tiny_dataset.evaluation_users()[1]
        # Give `user` the exact history of `other`: they become near-identical neighbors.
        component.update_user(user, trained_fism, tiny_dataset.train.user_sequence(other))
        ids, _ = component.neighbors(component.user_embedding(other), exclude_user=other)
        assert user in ids

    def test_update_out_of_range_user(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=3).fit(trained_fism, tiny_dataset)
        with pytest.raises(ValueError):
            component.update_user(10**6, trained_fism, [0, 1])

    def test_update_users_matches_sequential(self, tiny_dataset, trained_fism):
        sequential = UserNeighborhoodComponent(num_neighbors=5, recency_window=3).fit(
            trained_fism, tiny_dataset
        )
        batched = UserNeighborhoodComponent(num_neighbors=5, recency_window=3).fit(
            trained_fism, tiny_dataset
        )
        users = [int(user) for user in tiny_dataset.evaluation_users()[:4]]
        histories = [tiny_dataset.train.user_sequence(user) + [0, 1] for user in users]
        for user, history in zip(users, histories):
            sequential.update_user(user, trained_fism, history)
        batched.update_users(users, trained_fism, histories)
        np.testing.assert_array_equal(sequential._user_embeddings, batched._user_embeddings)
        np.testing.assert_array_equal(
            sequential.index._normalized, batched.index._normalized
        )
        for user in users:
            assert sequential.recent_items(user) == batched.recent_items(user)

    def test_update_users_validates(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=3).fit(trained_fism, tiny_dataset)
        with pytest.raises(ValueError):
            component.update_users([0, 1], trained_fism, [[0]])  # history count mismatch
        with pytest.raises(ValueError):
            component.update_users([component.num_users], trained_fism, [[0]])

    def test_add_users_rejects_fitted_range_ids(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=3).fit(trained_fism, tiny_dataset)
        with pytest.raises(ValueError):
            component.add_users([0], trained_fism, [[0, 1]])

    def test_add_users_grows_pool(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(num_neighbors=3).fit(trained_fism, tiny_dataset)
        base = component.num_users
        embeddings = component.add_users([base, base + 2], trained_fism, [[0, 1], [2, 3]])
        assert component.num_users == base + 3
        assert component.index.size == base + 3
        assert embeddings.shape == (2, trained_fism.embedding_dim)
        np.testing.assert_allclose(
            component.user_embedding(base), trained_fism.infer_user_embedding([0, 1])
        )
        assert component.recent_items(base + 2) == [2, 3]
        # the gap user exists but has a zero embedding
        assert not component.user_embedding(base + 1).any()


class TestAlternativeIndex:
    def test_ivf_index_supported(self, tiny_dataset, trained_fism):
        component = UserNeighborhoodComponent(
            num_neighbors=5, index=IVFIndex(num_cells=4, n_probe=4)
        ).fit(trained_fism, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        ids, _ = component.neighbors(component.user_embedding(user), exclude_user=user)
        assert len(ids) > 0
