"""Tests for the SCCF integrating component (eq. 15-17)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.merger import IntegratingMLP, normalize_scores


class TestNormalizeScores:
    def test_zero_mean_unit_std(self, rng):
        scores = rng.normal(3.0, 2.0, size=50)
        normalized = normalize_scores(scores)
        assert abs(normalized.mean()) < 1e-10
        assert abs(normalized.std() - 1.0) < 1e-10

    def test_constant_vector_maps_to_zeros(self):
        np.testing.assert_allclose(normalize_scores(np.full(10, 4.2)), np.zeros(10))

    def test_order_preserved(self, rng):
        scores = rng.normal(size=20)
        np.testing.assert_array_equal(np.argsort(scores), np.argsort(normalize_scores(scores)))


def build_synthetic_examples(num_users, num_candidates, dim, rng, informative=True):
    """Candidate sets where the positive has the highest UI+UU score."""

    merger = IntegratingMLP(embedding_dim=dim, num_epochs=1, seed=0)
    examples = []
    for user in range(num_users):
        candidates = np.arange(num_candidates)
        ui_scores = rng.normal(size=num_candidates)
        uu_scores = rng.normal(size=num_candidates)
        target = int(rng.integers(0, num_candidates))
        if informative:
            ui_scores[target] = ui_scores.max() + 1.0
            uu_scores[target] = uu_scores.max() + 1.0
        features = merger.build_features(
            user_id=user,
            user_embedding=rng.normal(size=dim),
            item_embeddings=rng.normal(size=(num_candidates, dim)),
            candidate_items=candidates,
            ui_scores=ui_scores,
            uu_scores=uu_scores,
        )
        examples.append((features, target))
    return examples


class TestBuildFeatures:
    def test_feature_layout(self, rng):
        merger = IntegratingMLP(embedding_dim=4, num_epochs=1)
        candidates = np.array([2, 5, 7])
        item_embeddings = rng.normal(size=(10, 4))
        user_embedding = rng.normal(size=4)
        ui_scores = rng.normal(size=10)
        uu_scores = rng.normal(size=10)
        features = merger.build_features(0, user_embedding, item_embeddings, candidates, ui_scores, uu_scores)
        assert features.features.shape == (3, 2 * 4 + 2)
        np.testing.assert_allclose(features.features[:, :4], np.tile(user_embedding, (3, 1)))
        np.testing.assert_allclose(features.features[:, 4:8], item_embeddings[candidates])
        np.testing.assert_allclose(features.features[:, 8], normalize_scores(ui_scores[candidates]))
        np.testing.assert_allclose(features.ui_scores, ui_scores[candidates])

    def test_empty_candidates_rejected(self, rng):
        merger = IntegratingMLP(embedding_dim=4, num_epochs=1)
        with pytest.raises(ValueError):
            merger.build_features(0, np.zeros(4), np.zeros((5, 4)), np.array([]), np.zeros(5), np.zeros(5))

    def test_invalid_constructor_params(self):
        with pytest.raises(ValueError):
            IntegratingMLP(embedding_dim=0)
        with pytest.raises(ValueError):
            IntegratingMLP(embedding_dim=4, negatives_per_positive=0)
        with pytest.raises(ValueError):
            IntegratingMLP(embedding_dim=4, validation_fraction=1.5)


class TestTraining:
    def test_learns_to_rank_informative_positives(self, rng):
        examples = build_synthetic_examples(60, 30, 8, rng)
        merger = IntegratingMLP(embedding_dim=8, num_epochs=20, negatives_per_positive=10, patience=20, seed=0)
        merger.fit(examples)
        # After training, the positive should be ranked first for most users.
        top1 = 0
        for features, target in examples:
            predictions = merger.predict(features)
            if int(features.candidate_items[np.argmax(predictions)]) == target:
                top1 += 1
        assert top1 / len(examples) > 0.6

    def test_examples_without_target_are_skipped(self, rng):
        examples = build_synthetic_examples(5, 10, 4, rng)
        # Point every target outside the candidate set.
        examples = [(features, 10_000) for features, _ in examples]
        merger = IntegratingMLP(embedding_dim=4, num_epochs=3, seed=0)
        merger.fit(examples)  # should not raise and should leave history empty
        assert merger.loss_history == []

    def test_validation_history_recorded(self, rng):
        examples = build_synthetic_examples(40, 20, 4, rng)
        merger = IntegratingMLP(embedding_dim=4, num_epochs=5, patience=50, seed=0)
        merger.fit(examples)
        assert len(merger.validation_history) >= 1
        assert len(merger.loss_history) >= 1

    def test_skip_initialization_matches_interpolation(self, rng):
        """With a zeroed MLP head the initial prediction equals the skip interpolation."""

        merger = IntegratingMLP(embedding_dim=4, num_epochs=1, score_skip=True, seed=0)
        examples = build_synthetic_examples(3, 15, 4, rng)
        features = examples[0][0]
        expected = (
            features.features[:, -2] * merger.skip_weights.data[0]
            + features.features[:, -1] * merger.skip_weights.data[1]
        )
        np.testing.assert_allclose(merger.predict(features), expected, rtol=1e-10)

    def test_score_skip_disabled(self, rng):
        merger = IntegratingMLP(embedding_dim=4, num_epochs=2, score_skip=False, seed=0)
        examples = build_synthetic_examples(20, 10, 4, rng)
        merger.fit(examples)
        predictions = merger.predict(examples[0][0])
        assert predictions.shape == (10,)

    def test_predict_shape_and_determinism(self, rng):
        examples = build_synthetic_examples(10, 12, 4, rng)
        merger = IntegratingMLP(embedding_dim=4, num_epochs=2, seed=0)
        merger.fit(examples)
        first = merger.predict(examples[0][0])
        second = merger.predict(examples[0][0])
        np.testing.assert_allclose(first, second)
