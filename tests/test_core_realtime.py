"""Tests for the real-time serving engine (streaming updates, Table III path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SCCF, RealTimeServer, SCCFConfig
from repro.core.realtime import LatencyBreakdown


class TestConstruction:
    def test_requires_fitted_sccf(self, tiny_dataset, trained_fism):
        unfitted = SCCF(trained_fism, SCCFConfig(num_neighbors=5))
        with pytest.raises(ValueError):
            RealTimeServer(unfitted, tiny_dataset)

    def test_initial_histories_copied_from_training(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        assert server.history(user) == tiny_dataset.train.user_sequence(user)


class TestObserve:
    def test_observe_appends_and_times(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        before = server.history(user)
        breakdown = server.observe(user, 3)
        assert isinstance(breakdown, LatencyBreakdown)
        assert breakdown.inferring_ms >= 0.0 and breakdown.identifying_ms >= 0.0
        assert breakdown.total_ms == pytest.approx(breakdown.inferring_ms + breakdown.identifying_ms)
        assert server.history(user) == before + [3]

    def test_observe_updates_neighborhood_embedding(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        before = fitted_sccf.neighborhood.user_embedding(user).copy()
        server.observe(user, 5)
        after = fitted_sccf.neighborhood.user_embedding(user)
        assert not np.allclose(before, after)

    def test_observe_invalid_item(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        with pytest.raises(ValueError):
            server.observe(0, tiny_dataset.num_items + 10)

    def test_observe_unknown_user_creates_state(self, tiny_dataset, trained_fism):
        # Own SCCF instance: cold-start growth would otherwise permanently
        # inflate the session-scoped fitted_sccf fixture shared by other tests.
        sccf = SCCF(
            trained_fism,
            SCCFConfig(num_neighbors=10, candidate_list_size=30, merger_epochs=3, seed=3),
        ).fit(tiny_dataset, fit_ui_model=False)
        server = RealTimeServer(sccf, tiny_dataset)
        new_user = tiny_dataset.num_users + 100
        server.observe(new_user, 1)
        assert server.history(new_user) == [1]
        # cold-start growth: the new user joined the neighborhood pool
        assert sccf.neighborhood.num_users == new_user + 1
        assert sccf.neighborhood.recent_items(new_user) == [1]

    def test_observe_negative_user(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        with pytest.raises(ValueError):
            server.observe(-5, 0)

    def test_average_latency(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        assert server.average_latency() is None
        for user in tiny_dataset.evaluation_users()[:3]:
            server.observe(user, 0)
        average = server.average_latency()
        assert average is not None
        assert average.total_ms > 0


class TestRecommend:
    def test_recommendations_respect_streamed_history(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        server.observe(user, 2)
        recommendations = server.recommend(user, k=5)
        assert len(recommendations) <= 5
        assert 2 not in recommendations  # just-clicked item is excluded

    def test_recommend_without_exclusion(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        recommendations = server.recommend(user, k=5, exclude_seen=False)
        assert len(recommendations) <= 5

    def test_new_interactions_change_recommendations(self, fitted_sccf, tiny_dataset):
        server = RealTimeServer(fitted_sccf, tiny_dataset)
        user = tiny_dataset.evaluation_users()[0]
        before = server.recommend(user, k=10)
        # Stream several new interactions with items the user never touched.
        unseen = [i for i in range(tiny_dataset.num_items) if i not in set(server.history(user))][:4]
        for item in unseen:
            server.observe(user, item)
        after = server.recommend(user, k=10)
        assert before != after
