"""Tests for ranking metrics, the leave-one-out evaluator and timing helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionLog, RecDataset
from repro.eval import (
    Evaluator,
    RankingMetrics,
    Stopwatch,
    aggregate_ranks,
    hit_ratio_at_k,
    ndcg_at_k,
    rank_of_target,
    time_callable,
)
from repro.models import Popularity


class TestRankOfTarget:
    def test_best_item_ranked_first(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of_target(scores, 1) == 1

    def test_worst_item_ranked_last(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of_target(scores, 0) == 3

    def test_excluded_items_removed_from_ranking(self):
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert rank_of_target(scores, 3) == 4
        assert rank_of_target(scores, 3, exclude=[0, 1]) == 2

    def test_target_never_excluded(self):
        scores = np.array([0.9, 0.1])
        assert rank_of_target(scores, 1, exclude=[1]) == 2

    def test_ties_counted_pessimistically(self):
        scores = np.ones(5)
        assert rank_of_target(scores, 2) == 5

    def test_out_of_range_target(self):
        with pytest.raises(IndexError):
            rank_of_target(np.ones(3), 7)

    @given(st.integers(2, 50), st.integers(0, 49))
    @settings(max_examples=30, deadline=None)
    def test_rank_bounds(self, n, target_seed):
        rng = np.random.default_rng(n)
        scores = rng.normal(size=n)
        target = target_seed % n
        rank = rank_of_target(scores, target)
        assert 1 <= rank <= n


class TestMetrics:
    def test_hit_ratio(self):
        assert hit_ratio_at_k([1, 5, 30], 10) == pytest.approx(2 / 3)
        assert hit_ratio_at_k([], 10) == 0.0

    def test_ndcg_position_aware(self):
        # A hit at rank 1 is worth more than a hit at rank 10.
        assert ndcg_at_k([1], 10) > ndcg_at_k([10], 10)
        assert ndcg_at_k([1], 10) == pytest.approx(1.0)

    def test_ndcg_miss_contributes_zero(self):
        assert ndcg_at_k([50], 10) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k([1], 0)
        with pytest.raises(ValueError):
            ndcg_at_k([1], -1)

    def test_ranking_metrics_aggregation(self):
        metrics = RankingMetrics(cutoffs=(5, 10))
        metrics.extend([1, 3, 7, 20])
        results = metrics.compute()
        assert results["HR@5"] == pytest.approx(0.5)
        assert results["HR@10"] == pytest.approx(0.75)
        assert metrics.num_users == 4

    def test_ranking_metrics_invalid_rank(self):
        with pytest.raises(ValueError):
            RankingMetrics().add(0)

    def test_ranking_metrics_invalid_cutoffs(self):
        with pytest.raises(ValueError):
            RankingMetrics(cutoffs=())

    def test_aggregate_ranks_helper(self):
        results = aggregate_ranks([1, 100], cutoffs=(20,))
        assert results["HR@20"] == pytest.approx(0.5)

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_hr_monotone_in_k(self, ranks):
        assert hit_ratio_at_k(ranks, 10) <= hit_ratio_at_k(ranks, 50) <= hit_ratio_at_k(ranks, 200)

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_ndcg_bounded_by_hr(self, ranks):
        # each hit contributes at most 1 to NDCG and exactly 1 to HR
        assert ndcg_at_k(ranks, 50) <= hit_ratio_at_k(ranks, 50) + 1e-12


class TestEvaluator:
    def test_perfect_model_scores_one(self):
        # A model that always puts the target on top.
        train = InteractionLog([0, 0, 1, 1], [0, 1, 0, 2], [0, 1, 2, 3])
        dataset = RecDataset(
            name="unit", train=train, test_items={0: 3, 1: 4}, num_users=2, num_items=5
        )

        class Oracle(Popularity):
            def score_items(self, user_id, history=None):
                scores = np.zeros(5)
                scores[dataset.test_items[user_id]] = 1.0
                return scores

        oracle = Oracle().fit(dataset)
        result = Evaluator(cutoffs=(1, 5)).evaluate(oracle, dataset)
        assert result.metrics["HR@1"] == pytest.approx(1.0)
        assert result.metrics["NDCG@1"] == pytest.approx(1.0)

    def test_max_users_subsampling(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        full = Evaluator(cutoffs=(20,)).evaluate(model, tiny_dataset)
        sampled = Evaluator(cutoffs=(20,), max_users=10).evaluate(model, tiny_dataset)
        assert sampled.num_users == 10
        assert full.num_users == len(tiny_dataset.test_items)

    def test_validation_split_uses_train_history(self, tiny_dataset, trained_fism):
        result = Evaluator(cutoffs=(20,)).evaluate(trained_fism, tiny_dataset, split="validation")
        assert result.split == "validation"
        assert result.num_users > 0

    def test_invalid_split(self, tiny_dataset, trained_fism):
        with pytest.raises(ValueError):
            Evaluator().evaluate(trained_fism, tiny_dataset, split="train")

    def test_evaluate_many(self, tiny_dataset):
        models = {"pop-a": Popularity().fit(tiny_dataset), "pop-b": Popularity().fit(tiny_dataset)}
        results = Evaluator(cutoffs=(10,)).evaluate_many(models, tiny_dataset)
        assert [r.model_name for r in results] == ["pop-a", "pop-b"]
        assert results[0].metrics == results[1].metrics

    def test_result_row(self, tiny_dataset):
        model = Popularity().fit(tiny_dataset)
        result = Evaluator(cutoffs=(10,)).evaluate(model, tiny_dataset)
        row = result.as_row()
        assert row["model"] == "Popularity"
        assert "HR@10" in row


class TestTiming:
    def test_time_callable_statistics(self):
        result = time_callable(lambda: sum(range(1000)), repetitions=5, warmup=1, label="sum")
        assert result.label == "sum"
        assert len(result.samples_ms) == 5
        assert result.mean_ms >= 0
        assert result.p95_ms >= result.median_ms or result.p95_ms >= 0
        assert result.as_row()["samples"] == 5

    def test_time_callable_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repetitions=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        watch.record("a", 1.0)
        watch.record("a", 3.0)
        value = watch.time("b", lambda: 42)
        assert value == 42
        assert watch.result("a").mean_ms == pytest.approx(2.0)
        assert set(watch.labels()) == {"a", "b"}
        assert "b" in watch.summary()

    def test_stopwatch_negative_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().record("a", -1.0)
