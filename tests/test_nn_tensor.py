"""Unit tests for the autograd engine (repro.nn.tensor).

Most tests check analytic gradients against finite differences — the one
property an autodiff engine must not get wrong.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, no_grad
from repro.nn.tensor import _unbroadcast


def numeric_gradient(func, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued function."""

    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = func(value)
        flat[i] = original - eps
        low = func(value)
        flat[i] = original
        grad_flat[i] = (high - low) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad is True
        assert Tensor(np.ones(3)).requires_grad is False

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_from_scalar(self):
        assert as_tensor(3.0).item() == pytest.approx(3.0)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert b.requires_grad is False
        assert b._prev == ()

    def test_item_on_scalar(self):
        assert Tensor(np.array(5.0)).item() == pytest.approx(5.0)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12

    def test_backward_requires_scalar_or_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_context(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            b = a * 2
        assert b.requires_grad is False

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum()).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sum_leading_axis(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 4 * np.ones((2, 3)))

    def test_sum_size_one_axis(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        np.testing.assert_allclose(out, 3 * np.ones((2, 1)))


class TestArithmeticGradients:
    def test_add_gradient(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([4.0, 5.0, 6.0]), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_add_broadcast_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, 2 * np.ones(3))

    def test_mul_gradient(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor(np.array([5.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rsub(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (5.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_div_gradient(self):
        a = Tensor(np.array([6.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (4.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_pow_gradient(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_non_scalar_exponent_raises(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            a ** np.array([1.0, 2.0])

    def test_matmul_gradient_against_finite_differences(self, rng):
        a_value = rng.normal(size=(3, 4))
        b_value = rng.normal(size=(4, 2))

        a = Tensor(a_value.copy(), requires_grad=True)
        b = Tensor(b_value.copy(), requires_grad=True)
        (a.matmul(b)).sum().backward()

        numeric_a = numeric_gradient(lambda v: float((v @ b_value).sum()), a_value.copy())
        numeric_b = numeric_gradient(lambda v: float((a_value @ v).sum()), b_value.copy())
        np.testing.assert_allclose(a.grad, numeric_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, numeric_b, atol=1e-5)

    def test_batched_matmul_gradient(self, rng):
        a_value = rng.normal(size=(2, 3, 4))
        b_value = rng.normal(size=(2, 4, 5))
        a = Tensor(a_value.copy(), requires_grad=True)
        b = Tensor(b_value.copy(), requires_grad=True)
        (a.matmul(b)).sum().backward()
        numeric_a = numeric_gradient(lambda v: float(np.matmul(v, b_value).sum()), a_value.copy())
        np.testing.assert_allclose(a.grad, numeric_a, atol=1e-5)

    def test_gradient_accumulates_over_multiple_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        ((a * 3) + (a * 4)).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])


class TestReductionsAndShaping:
    def test_sum_axis_gradient(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.sum(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_max_gradient_flows_to_maximum(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis_gradient(self):
        a = Tensor(np.array([[1.0, 2.0], [4.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad.sum(), 1.0)

    def test_reshape_gradient(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a.transpose().sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_transpose_with_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.swapaxes(1, 2)
        assert out.shape == (2, 4, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_T_property(self):
        a = Tensor(np.zeros((2, 5)))
        assert a.T.shape == (5, 2)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op,derivative",
        [
            ("exp", lambda x: np.exp(x)),
            ("log", lambda x: 1.0 / x),
            ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
            ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ],
    )
    def test_elementwise_gradients(self, op, derivative):
        value = np.array([0.5, 1.5, 2.5])
        a = Tensor(value.copy(), requires_grad=True)
        getattr(a, op)().sum().backward()
        np.testing.assert_allclose(a.grad, derivative(value), rtol=1e-6)

    def test_relu_gradient(self):
        a = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0])

    def test_sqrt(self):
        a = Tensor(np.array([4.0]), requires_grad=True)
        a.sqrt().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_sigmoid_saturation_is_finite(self):
        a = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        out = a.sigmoid()
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(a.grad))


class TestGraphTraversal:
    def test_diamond_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(50):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_grad_does_not_flow_to_constants(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([2.0]))
        (a * b).sum().backward()
        assert b.grad is None


class TestGradientProperties:
    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        a = Tensor(np.array(values), requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(len(values)))

    @given(
        st.lists(st.floats(min_value=0.1, max_value=5), min_size=2, max_size=8),
        st.lists(st.floats(min_value=0.1, max_value=5), min_size=2, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_product_rule(self, xs, ys):
        size = min(len(xs), len(ys))
        x = np.array(xs[:size])
        y = np.array(ys[:size])
        a = Tensor(x.copy(), requires_grad=True)
        b = Tensor(y.copy(), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, y, rtol=1e-10)
        np.testing.assert_allclose(b.grad, x, rtol=1e-10)
